"""Quickstart: build a dual store, run a complex query, tune, run it again.

This walks through the paper's core loop end to end on a small synthetic
YAGO-like knowledge graph:

1. generate a knowledge graph and load it into the dual-store structure
   (relational master copy, empty graph store),
2. run the paper's motivating complex query — it is routed to the relational
   store and is comparatively slow,
3. let DOTIL observe the query and tune the physical design (it transfers the
   needed triple partitions into the graph store),
4. run the query again — it is now routed to the graph store and is much
   faster,
5. front the store with a :class:`repro.QueryService` — repeated serving of
   the same query is answered from the result cache (see
   ``examples/serving.py`` for the full serving tour).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Dotil, DotilConfig, DualStore, QueryService, generate_yago, parse_query


ADVISOR_QUERY = """
SELECT ?p WHERE {
  ?p y:wasBornIn ?city .
  ?p y:hasAcademicAdvisor ?a .
  ?a y:wasBornIn ?city .
}
"""


def main() -> None:
    print("== 1. Generate a YAGO-like knowledge graph and load the dual store ==")
    dataset = generate_yago(target_triples=6000, seed=7)
    dual = DualStore().load(dataset.triples)
    print(f"   knowledge graph: {len(dataset.triples)} triples, "
          f"{len(dataset.triples.predicates)} predicates")
    print(f"   graph-store budget (r_BG = {dual.config.r_bg:.0%}): {dual.storage_budget} triples")

    query = parse_query(ADVISOR_QUERY)
    complex_subquery = dual.identify(query)
    assert complex_subquery is not None
    print("\n== 2. Run the complex query against the untuned store ==")
    cold = dual.run_query(query)
    print(f"   route: {cold.route}, results: {cold.record.result_count}, "
          f"modelled latency: {cold.seconds * 1000:.1f} ms")

    print("\n== 3. Tune the physical design with DOTIL ==")
    # prob=1.0 makes the cold-start exploration deterministic for the demo:
    # a partition whose Q-values are still zero is always worth trying once.
    tuner = Dotil(dual, DotilConfig(prob=1.0, gamma=0.7, lam=4.5))
    report = tuner.tune([complex_subquery])
    transferred = ", ".join(p.local_name() for p in report.transferred) or "(nothing)"
    print(f"   transferred partitions: {transferred}")
    print(f"   graph store now holds {dual.graph.used_capacity()} / {dual.storage_budget} triples")
    print(f"   offline import time: {report.import_seconds * 1000:.1f} ms (not charged to queries)")

    print("\n== 4. Run the same query against the tuned store ==")
    warm = dual.run_query(query)
    print(f"   route: {warm.route}, results: {warm.record.result_count}, "
          f"modelled latency: {warm.seconds * 1000:.1f} ms")

    speedup = cold.seconds / warm.seconds if warm.seconds > 0 else float("inf")
    print(f"\n   speedup from the dual-store structure: {speedup:.1f}x")
    assert warm.seconds < cold.seconds, "the tuned store should be faster on the complex query"

    print("\n== 5. Serve the query through the caching QueryService ==")
    with QueryService(dual) as service:
        service.run_query(query)          # executes and fills the result cache
        served = service.run_query(query)  # answered from the cache
        print(f"   second serve from cache: {served.record.from_cache}, "
              f"result hit rate: {service.metrics.counters.result_cache_hit_rate:.0%}")
        assert served.record.from_cache


if __name__ == "__main__":
    main()
