"""Relational store vs graph store on a growing knowledge graph (paper Table 1).

The paper motivates the dual-store structure with a simple measurement: the
same three-pattern complex query is answered by MySQL and Neo4j while the
knowledge graph grows from 500k to 5M triples; MySQL's latency grows roughly
linearly while Neo4j's stays nearly flat.

This example regenerates that comparison with the library's two engines (the
work-accounted relational store and the adjacency-list graph store) on
synthetic YAGO slices, prints the Table 1-style rows, and reports where the
gap between the two engines ends up.

Run with::

    python examples/store_comparison.py
"""

from __future__ import annotations

from repro.experiments import format_table1, run_table1


def main() -> None:
    print("Reproducing Table 1 (scaled to laptop-size synthetic data)\n")
    rows = run_table1(base_triples=1000, steps=8, seed=7)
    print(format_table1(rows))

    first, last = rows[0], rows[-1]
    relational_growth = last.relational_seconds / first.relational_seconds
    graph_growth = last.graph_seconds / first.graph_seconds
    print("\nObservations (compare with the paper's Table 1):")
    print(f"  * data grew {last.triples / first.triples:.1f}x")
    print(f"  * relational latency grew {relational_growth:.1f}x (MySQL: ~9x over its sweep)")
    print(f"  * graph latency grew {graph_growth:.1f}x (Neo4j: stays within a few seconds)")
    print(f"  * at the largest size the graph store answers the query "
          f"{last.speedup:.1f}x faster than the relational store")


if __name__ == "__main__":
    main()
