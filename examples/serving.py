"""Serving a workload through the QueryService: caches, dedup, invalidation.

This walks the serving layer end to end:

1. load a dual store and front it with a :class:`repro.QueryService`,
2. serve a workload batch cold (every query executes) and warm (every query
   is a result-cache hit, byte-identical, ~100x cheaper in wall-clock),
3. tune the physical design with DOTIL — the transfer invalidates the result
   cache, so the next pass re-executes with the new (faster) routing,
4. insert new knowledge — again invalidating, so no stale answer survives,
5. print the service metrics: hit rates, p50/p95 latency, queue depth.

Run with::

    python examples/serving.py
"""

from __future__ import annotations

import time

from repro import Dotil, DotilConfig, DualStore, QueryService, generate_yago, yago_workload


def timed(label: str, fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    wall = (time.perf_counter() - start) * 1000
    print(f"   {label}: {wall:.2f} ms wall-clock")
    return value


def main() -> None:
    print("== 1. Load the dual store and start a query service ==")
    dataset = generate_yago(target_triples=6000, seed=7)
    dual = DualStore().load(dataset.triples)
    workload = yago_workload(dataset)
    batch = workload.batches("random")[0]
    print(f"   {len(dataset.triples)} triples, batch of {len(batch)} queries")

    with QueryService(dual) as service:
        print("\n== 2. Serve the batch cold, then warm ==")
        cold = timed("cold pass (all executions)", service.run_batch, batch)
        warm = timed("warm pass (all cache hits)", service.run_batch, batch)
        assert warm.cache_hits == len(batch)
        assert [r.result.rows() for r in warm] == [r.result.rows() for r in cold]
        print(f"   warm hits: {warm.cache_hits}/{len(batch)}, "
              f"modelled TTI unchanged: {warm.tti == cold.tti}")

        print("\n== 3. Tune with DOTIL — transfers invalidate the result cache ==")
        complex_subqueries = [c for c in (dual.identify(q) for q in batch) if c is not None]
        tuner = Dotil(dual, DotilConfig(prob=1.0, gamma=0.7, lam=4.5))
        tuner.tune(complex_subqueries)
        print(f"   graph store now holds {dual.graph.used_capacity()}/{dual.storage_budget} triples")
        print(f"   result cache entries after tuning: {len(service.result_cache)}")
        retuned = timed("post-tuning pass (re-executed)", service.run_batch, batch)
        routes = retuned.batch_result().route_counts()
        print(f"   routes after tuning: {routes}")

        print("\n== 4. Insert new knowledge — cached answers can never go stale ==")
        service.insert([])
        assert len(service.result_cache) == 0
        print("   result cache emptied by the insert hook")

        print("\n== 5. Service metrics ==")
        snapshot = service.metrics.snapshot()
        counters = snapshot["counters"]
        print(f"   queries served: {counters['queries_served']}, "
              f"executions: {counters['executions']}, "
              f"result hit rate: {snapshot['result_cache_hit_rate']:.0%}, "
              f"plan hit rate: {snapshot['plan_cache_hit_rate']:.0%}")
        wall = snapshot["wall_latency"]
        print(f"   execution wall latency: p50 {wall['p50'] * 1000:.2f} ms, "
              f"p95 {wall['p95'] * 1000:.2f} ms")
        print(f"   peak queue depth: {snapshot['queue']['peak']}")


if __name__ == "__main__":
    main()
