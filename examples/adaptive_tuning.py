"""Adaptive physical design under a shifting workload (DOTIL vs baselines).

The property the paper emphasises is *adaptivity*: the workload changes over
time, so a static physical design (one-off) or a frequency heuristic (LRU)
leaves performance on the table, while DOTIL keeps re-learning which triple
partitions deserve the limited graph-store budget.

This example builds a workload whose focus shifts half-way through — the
first batches ask YAGO "academic lineage" questions, the later batches ask
"family" questions — and compares the per-batch time-to-insight of the
dual-store structure under four tuning policies.

Run with::

    python examples/adaptive_tuning.py
"""

from __future__ import annotations

from typing import List

from repro import (
    Dotil,
    DotilConfig,
    IdealTuner,
    LRUTuner,
    OneOffTuner,
    RDBGDB,
    RDBOnly,
    generate_yago,
    run_workload,
    yago_workload,
)
from repro.sparql import SelectQuery


def shifting_batches(dataset) -> List[List[SelectQuery]]:
    """Six batches: the first three academic-themed, the last three family-themed."""
    workload = yago_workload(dataset, seed=11)
    academic = [e.query for e in workload.queries if "advisor" in e.template or "example1" in e.template]
    family = [e.query for e in workload.queries if "couple" in e.template or "parent" in e.template]

    def chunks(queries, size):
        return [queries[i : i + size] for i in range(0, len(queries), size)]

    return chunks(academic, max(1, len(academic) // 3)) + chunks(family, max(1, len(family) // 3))


def main() -> None:
    dataset = generate_yago(target_triples=8000, seed=7)
    batches = shifting_batches(dataset)
    print(f"knowledge graph: {len(dataset.triples)} triples; "
          f"{len(batches)} batches, workload focus shifts after batch {len(batches) // 2}\n")

    # A tight graph-store budget (16% of the knowledge graph) cannot hold the
    # partitions of both workload phases at once, so a static design has to
    # pick a side — that is where adaptivity pays off.
    config = DotilConfig(r_bg=0.16, prob=1.0, gamma=0.7, lam=4.5)
    policies = {
        "RDB-only (no graph store)": RDBOnly(),
        "dual store + DOTIL": RDBGDB(config=config),
        "dual store + one-off": RDBGDB(config=config, tuner_factory=lambda dual: OneOffTuner(dual)),
        "dual store + LRU": RDBGDB(config=config, tuner_factory=lambda dual: LRUTuner(dual)),
        "dual store + ideal": RDBGDB(config=config, tuner_factory=lambda dual: IdealTuner(dual)),
    }

    print(f"{'policy':<28} " + " ".join(f"batch{i + 1:>2}" for i in range(len(batches))) + "    total")
    results = {}
    for name, variant in policies.items():
        variant.load(dataset.triples)
        result = run_workload(variant, batches, label=name)
        results[name] = result
        series = " ".join(f"{batch.tti:7.3f}" for batch in result.batches)
        print(f"{name:<28} {series}  {result.total_tti:7.3f}")

    dotil_total = results["dual store + DOTIL"].total_tti
    only_total = results["RDB-only (no graph store)"].total_tti
    print(f"\nDOTIL improves total time-to-insight by "
          f"{(only_total - dotil_total) / only_total * 100:.1f}% over the relational-only store")
    print("The static one-off heuristic cannot cover the shifting hot set within the tight "
          "budget, and LRU reacts a batch late; DOTIL re-learns the valuable partitions after "
          "the shift and tracks the clairvoyant ideal mode.")


if __name__ == "__main__":
    main()
