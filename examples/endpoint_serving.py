"""Serving SPARQL over HTTP: the endpoint, admission control, worker fleet.

This walks the network-facing layer end to end:

1. front a :class:`repro.QueryService` with a :class:`repro.SparqlEndpoint` —
   a stdlib HTTP server speaking the SPARQL 1.1 protocol on ``/sparql``,
2. query it over the wire (GET and both POST forms) and confirm the response
   bytes equal the direct in-process answer,
3. probe ``/healthz`` and ``/metrics``, and watch a request get *shed* with
   ``503`` + ``Retry-After`` when the bounded admission queue is full,
4. publish the store as a durable snapshot and serve it from a multi-process
   worker fleet (one OS process per worker — real parallelism under the GIL),
5. commit a new generation from the leader and watch the workers hot-reload
   it, with generation-stamped responses throughout.

Run with::

    python examples/endpoint_serving.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro import (
    DualStore,
    EndpointConfig,
    EndpointPool,
    QueryService,
    SparqlEndpoint,
    WorkerSupervisor,
    generate_yago,
    sparql_request,
    yago_workload,
)
from repro.endpoint import encode_results, fetch_json
from repro.rdf import Literal, Triple, YAGO


def main() -> None:
    print("== 1. A SPARQL endpoint over a query service ==")
    dataset = generate_yago(target_triples=4000, seed=7)
    dual = DualStore().load(dataset.triples)
    workload = yago_workload(dataset)
    query = workload.queries[0].query.to_sparql()
    service = QueryService(dual)

    with SparqlEndpoint(service, EndpointConfig(max_inflight=4, queue_depth=4)) as endpoint:
        print(f"   serving on {endpoint.url}/sparql")

        print("\n== 2. The wire answer is the direct answer, byte for byte ==")
        direct = encode_results(service.run_query(query).result)
        via_get = sparql_request(endpoint.url, query)
        via_post = sparql_request(endpoint.url, query, method="POST")
        via_raw = sparql_request(endpoint.url, query, method="POST", post_form=False)
        print(f"   GET {via_get.status}, POST(form) {via_post.status}, "
              f"POST(sparql-query) {via_raw.status}")
        assert via_get.body == via_post.body == via_raw.body == direct
        rows = len(via_get.json()["results"]["bindings"])
        print(f"   {rows} bindings, generation stamp {via_get.generation}, "
              "all three forms byte-identical to the in-process result")

        print("\n== 3. Control plane and admission control ==")
        health = fetch_json(endpoint.url, "/healthz")
        print(f"   /healthz: {health}")
        # Saturate the gate: hold the execution slots, then one more request.
        release = threading.Event()
        endpoint.before_execute = lambda _q: release.wait(timeout=10)
        holders = [
            threading.Thread(target=sparql_request, args=(endpoint.url, query))
            for _ in range(8)  # fills max_inflight=4 executing + queue_depth=4
        ]
        for thread in holders:
            thread.start()
        while endpoint.gate.occupancy < 8:
            pass
        shed = sparql_request(endpoint.url, query)
        release.set()
        for thread in holders:
            thread.join()
        endpoint.before_execute = None
        print(f"   9th concurrent request: {shed.status} "
              f"(Retry-After: {shed.retry_after:.0f}s, "
              f"error code {shed.json()['error']['code']!r})")
        metrics = fetch_json(endpoint.url, "/metrics")
        print(f"   /metrics admission: {metrics['endpoint']}")

    print("\n== 4. Publish a snapshot, serve it from a worker fleet ==")
    with tempfile.TemporaryDirectory(prefix="repro-endpoint-example-") as tmp:
        root = Path(tmp) / "snapshots"
        service.checkpoint(path=root)
        with WorkerSupervisor(root, workers=2, poll_interval=0.2) as fleet:
            fleet.wait_ready()
            print(f"   2 worker processes up: {fleet.urls}")
            pool = EndpointPool(fleet.urls)
            response = pool.query(query)
            assert response.body == direct
            print(f"   pooled answer: {response.status}, byte-identical, "
                  f"generation {response.generation}")

            print("\n== 5. Leader commits a new generation; workers hot-reload ==")
            service.insert(
                [Triple(YAGO.term("Zaphod"), YAGO.term("hasGivenName"), Literal("Zaphod"))]
            )
            generation = dual.generation
            service.checkpoint(path=root)
            fleet.wait_generation(generation, timeout=30)
            reloaded = pool.query(query)
            print(f"   workers now at generation {reloaded.generation} "
                  f"(reloads announced: "
                  f"{[fleet.announce(i)['reloads'] for i in range(2)]})")
            assert reloaded.generation == generation
    service.close()


if __name__ == "__main__":
    main()
