"""Online adaptive tuning in the serving layer: surviving a workload drift.

`examples/adaptive_tuning.py` shows DOTIL re-tuning between *offline*
experiment batches.  This example shows the same adaptivity **inside the
live serving loop**: a `QueryService` with `ServiceConfig(adaptive=...)`
harvests the complex subqueries it serves into a sliding window, and its
`TuningDaemon` re-places partitions epoch by epoch — each epoch's transfers
and evictions applied under one generation bump, so the result cache is
emptied once per epoch instead of once per move.

The traffic is a WatDiv-style template mix that flips mid-stream from
linear/star shapes to snowflake/complex shapes.  A second service with a
frozen placement serves the same stream for comparison: after the drift its
modelled time-to-insight stays degraded while the adaptive service recovers.

Run with::

    python examples/online_adaptive_serving.py
"""

from __future__ import annotations

from repro import (
    AdaptiveConfig,
    Dotil,
    DotilConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    generate_watdiv,
    watdiv_workload,
)

EPOCHS = 8
CONFIG = DotilConfig(r_bg=0.15, prob=1.0, gamma=0.7, lam=4.5)


def family_mix(dataset, *families):
    queries = []
    for family in families:
        queries.extend(watdiv_workload(dataset, family=family, seed=19).ordered())
    return queries


def main() -> None:
    dataset = generate_watdiv(target_triples=6000, seed=7)
    phase_a = family_mix(dataset, "linear", "star")
    phase_b = family_mix(dataset, "snowflake", "complex")
    drift = EPOCHS // 2
    print(
        f"knowledge graph: {len(dataset.triples)} triples; "
        f"{EPOCHS} traffic epochs, mix drifts linear+star -> snowflake+complex "
        f"after epoch {drift - 1}\n"
    )

    adaptive_dual = DualStore(CONFIG).load(dataset.triples)
    static_dual = DualStore(CONFIG).load(dataset.triples)

    service_config = ServiceConfig(
        adaptive=AdaptiveConfig(
            window_size=max(len(phase_a), len(phase_b)),
            epoch_queries=0,  # we drive epochs explicitly, one per traffic epoch
            tuner_factory=lambda dual: Dotil(dual, CONFIG),
        )
    )

    print(f"{'epoch':>5} {'mix':>16} {'adaptive TTI':>13} {'static TTI':>11} {'moves':>6}")
    with QueryService(adaptive_dual, service_config) as adaptive, QueryService(
        static_dual
    ) as static:
        for epoch in range(EPOCHS):
            mix = "linear+star" if epoch < drift else "snowflake+complex"
            batch = phase_a if epoch < drift else phase_b
            adaptive_tti = adaptive.run_batch(batch).tti
            static_tti = static.run_batch(batch).tti
            report = adaptive.tune_now()
            marker = "  <- drift" if epoch == drift else ""
            print(
                f"{epoch:>5} {mix:>16} {adaptive_tti:>13.3f} {static_tti:>11.3f} "
                f"{report.moves:>6}{marker}"
            )

        metrics = adaptive.adaptive_metrics()
        events = adaptive.metrics.counters.invalidation_events
        print(
            f"\nadaptive service: {metrics['epochs']:.0f} tuning epochs applied "
            f"{metrics['moves_applied']:.0f} partition moves but invalidated the result "
            f"cache only {events} times ({metrics['invalidations_avoided']:.0f} "
            f"invalidations avoided by batching)."
        )
        improvement = (static_tti - adaptive_tti) / static_tti * 100.0
        print(
            f"final drifted epoch: adaptive {adaptive_tti:.3f}s vs static {static_tti:.3f}s "
            f"modelled TTI ({improvement:.1f}% better) — the frozen placement never "
            f"recovers, the daemon re-learns the hot partitions."
        )


if __name__ == "__main__":
    main()
