"""Domain example: accelerating biomedical knowledge-graph queries (Bio2RDF-like).

Bio2RDF-style workloads join gene–protein–drug–disease relations that are
scattered over many predicates; the bulk of the knowledge graph is literature
metadata that the complex queries never touch.  That is exactly the situation
the dual-store structure targets: keep everything in the relational master
store, replicate just the hot relation partitions into the graph store.

The example runs the 25-query Bio2RDF-like workload through the three store
variants of the paper's Section 6.2 (RDB-only, RDB-views, RDB-GDB) and prints
their per-batch time-to-insight plus the partitions DOTIL ended up holding.

Run with::

    python examples/biomedical_queries.py
"""

from __future__ import annotations

from repro import (
    RDBGDB,
    RDBOnly,
    RDBViews,
    bio2rdf_workload,
    generate_bio2rdf,
    improvement_percent,
    run_workload_repeated,
)


def main() -> None:
    dataset = generate_bio2rdf(target_triples=9000, seed=23)
    workload = bio2rdf_workload(dataset, seed=29)
    batches = workload.batches("ordered")
    print(f"Bio2RDF-like knowledge graph: {len(dataset.triples)} triples, "
          f"{len(dataset.triples.predicates)} predicates")
    print(f"workload: {len(workload)} queries in {len(batches)} batches "
          "(drug–target–disease, protein interaction, literature joins)\n")

    variants = {
        "RDB-only": RDBOnly(),
        "RDB-views": RDBViews(),
        "RDB-GDB": RDBGDB(),
    }
    results = {}
    for name, variant in variants.items():
        variant.load(dataset.triples)
        results[name] = run_workload_repeated(variant, batches, repetitions=3, discard=1, label=name)

    print(f"{'variant':<10} " + " ".join(f"batch{i + 1:>2}" for i in range(len(batches))) + "    total")
    for name, result in results.items():
        series = " ".join(f"{batch.tti:7.3f}" for batch in result.batches)
        print(f"{name:<10} {series}  {result.total_tti:7.3f}")

    gdb = results["RDB-GDB"]
    print(f"\nRDB-GDB improvement: "
          f"{improvement_percent(results['RDB-only'].total_tti, gdb.total_tti):.1f}% vs RDB-only, "
          f"{improvement_percent(results['RDB-views'].total_tti, gdb.total_tti):.1f}% vs RDB-views")

    gdb_variant = variants["RDB-GDB"]
    resident = sorted(p.local_name() for p in gdb_variant.dual.graph.loaded_predicates)
    print(f"partitions DOTIL keeps in the graph store ({gdb_variant.dual.graph.used_capacity()} "
          f"of {gdb_variant.dual.storage_budget} budgeted triples):")
    print("  " + ", ".join(resident))


if __name__ == "__main__":
    main()
