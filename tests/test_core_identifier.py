"""Unit tests for the complex subquery identifier (Section 3.1)."""

import pytest

from repro.core import ComplexSubqueryIdentifier, identify_complex_subquery
from repro.rdf import YAGO
from repro.sparql import parse_query


IDENTIFIER = ComplexSubqueryIdentifier()


class TestExample1:
    """The identifier must reproduce the paper's Example 1 exactly."""

    def test_example1_complex_patterns(self, example1_query):
        complex_subquery = IDENTIFIER.identify(example1_query)
        assert complex_subquery is not None
        predicates = {p.local_name() for p in complex_subquery.predicates}
        assert predicates == {"wasBornIn", "hasAcademicAdvisor", "isMarriedTo"}
        assert len(complex_subquery.patterns) == 5

    def test_example1_remainder_is_the_name_patterns(self, example1_query):
        complex_subquery = IDENTIFIER.identify(example1_query)
        remainder_predicates = {p.predicate.local_name() for p in complex_subquery.remainder}
        assert remainder_predicates == {"hasGivenName", "hasFamilyName"}

    def test_example1_output_variable_is_p(self, example1_query):
        complex_subquery = IDENTIFIER.identify(example1_query)
        assert complex_subquery.output_variables == ("p",)
        assert complex_subquery.query.projected_names() == ("p",)

    def test_example1_is_not_whole_query(self, example1_query):
        assert not IDENTIFIER.identify(example1_query).is_whole_query


class TestIdentificationRules:
    def test_query_without_repeated_variables_has_no_complex_subquery(self):
        query = parse_query("SELECT ?n WHERE { ?p y:hasGivenName ?n . }")
        assert IDENTIFIER.identify(query) is None

    def test_star_query_with_single_repeated_variable_only(self):
        # only ?p repeats; each pattern's other variable occurs once
        query = parse_query(
            "SELECT ?p WHERE { ?p y:hasGivenName ?n . ?p y:hasFamilyName ?f . ?p y:wasBornIn ?c . }"
        )
        assert IDENTIFIER.identify(query) is None

    def test_constant_positions_do_not_disqualify_a_pattern(self):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn <%s> . ?p y:diedIn <%s> . ?p y:hasGivenName ?n . }"
            % (YAGO.term("Berlin").value, YAGO.term("Rome").value)
        )
        complex_subquery = IDENTIFIER.identify(query)
        assert complex_subquery is not None
        assert {p.local_name() for p in complex_subquery.predicates} == {"wasBornIn", "diedIn"}

    def test_minimum_patterns_threshold(self):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn <%s> . ?p y:hasGivenName ?n . }" % YAGO.term("Berlin").value
        )
        assert ComplexSubqueryIdentifier(minimum_patterns=2).identify(query) is None
        assert ComplexSubqueryIdentifier(minimum_patterns=1).identify(query) is not None

    def test_fully_complex_query(self, advisor_query):
        complex_subquery = IDENTIFIER.identify(advisor_query)
        assert complex_subquery is not None
        assert complex_subquery.is_whole_query
        assert complex_subquery.remainder == ()
        # output defaults to the projected variable bound by the complex part
        assert complex_subquery.output_variables == ("p",)

    def test_output_variables_include_projection_only_bound_by_complex_part(self):
        query = parse_query(
            "SELECT ?city WHERE { ?p y:wasBornIn ?city . ?p y:hasAcademicAdvisor ?a . "
            "?a y:wasBornIn ?city . ?p y:hasGivenName ?n . }"
        )
        complex_subquery = IDENTIFIER.identify(query)
        assert "city" in complex_subquery.output_variables
        assert "p" in complex_subquery.output_variables  # join variable with the remainder

    def test_filters_restricted_to_complex_variables_are_carried_over(self):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . "
            "?p y:hasGivenName ?n . FILTER(?n != \"Eve\") }"
        )
        complex_subquery = IDENTIFIER.identify(query)
        # the filter references ?n which is not part of the complex patterns
        assert complex_subquery.query.filters == ()

    def test_callable_and_module_level_helper_agree(self, example1_query):
        assert IDENTIFIER(example1_query).predicates == identify_complex_subquery(example1_query).predicates

    def test_identifier_is_linear_in_patterns(self, example1_query):
        """A smoke check of the O(n) claim: identifying a query with many
        duplicated patterns is still instantaneous and returns all of them."""
        text = "SELECT ?p WHERE { " + " ".join(
            f"?p y:wasBornIn ?c{i % 3} . ?x{i % 3} y:livesIn ?c{i % 3} ." for i in range(30)
        ) + " }"
        complex_subquery = IDENTIFIER.identify(parse_query(text))
        assert complex_subquery is not None
        assert len(complex_subquery.patterns) >= 30
