"""Unit tests for the SQL compiler and the SQLite persistence backend."""

import pytest

from repro.errors import QueryExecutionError
from repro.rdf import Literal, Triple, YAGO
from repro.relstore import RelationalStore, SQLiteBackend, compile_select
from repro.sparql import parse_query


class TestSQLCompiler:
    def test_single_pattern_compiles_to_single_alias(self):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }")
        compiled = compile_select(query)
        assert "FROM triples AS t0" in compiled.sql
        assert compiled.columns == ("p",)
        assert compiled.parameters == (YAGO.wasBornIn.value,)

    def test_multi_pattern_compiles_to_self_join(self, advisor_query):
        compiled = compile_select(advisor_query)
        assert "t0" in compiled.sql and "t1" in compiled.sql and "t2" in compiled.sql
        # shared variables become equality predicates between aliases
        assert compiled.sql.count("=") >= 5

    def test_distinct_and_limit_are_rendered(self):
        query = parse_query("SELECT DISTINCT ?p WHERE { ?p y:wasBornIn ?c . } LIMIT 3")
        compiled = compile_select(query)
        assert "SELECT DISTINCT" in compiled.sql
        assert compiled.sql.endswith("LIMIT 3")

    def test_literal_constants_become_parameters(self):
        query = parse_query('SELECT ?p WHERE { ?p y:hasGivenName "Eve" . }')
        compiled = compile_select(query)
        assert '"Eve"' in compiled.parameters[1]

    def test_filters_are_compiled_through_the_shared_comparison(self):
        # Raw SQL text comparison over stored surface forms would be
        # lexicographic; filters must route through the repro_filter function
        # so typed literals compare by value (see test_differential_sql.py).
        query = parse_query("SELECT ?p WHERE { ?p y:age ?a . FILTER(?a != 3) }")
        compiled = compile_select(query)
        assert "repro_filter(?, t0.o, ?) = 1" in compiled.sql
        assert compiled.parameters[-2:] == ("!=", '"3"^^<http://www.w3.org/2001/XMLSchema#integer>')

    def test_filter_with_unbound_variable_raises(self):
        query = parse_query("SELECT ?p WHERE { ?p y:age ?a . FILTER(?b > 3) }")
        with pytest.raises(QueryExecutionError):
            compile_select(query)


class TestSQLiteBackend:
    def test_insert_count_and_dedup(self, mini_kg):
        with SQLiteBackend() as backend:
            backend.insert_triples(mini_kg)
            backend.insert_triples(mini_kg)  # duplicates ignored
            assert backend.count() == len(mini_kg)

    def test_delete_triple(self, mini_kg):
        with SQLiteBackend() as backend:
            backend.insert_triples(mini_kg)
            triple = next(iter(mini_kg))
            assert backend.delete_triple(triple) == 1
            assert backend.count() == len(mini_kg) - 1

    def test_select_returns_decoded_terms(self, mini_kg):
        with SQLiteBackend() as backend:
            backend.insert_triples(mini_kg)
            query = parse_query('SELECT ?p WHERE { ?p y:hasGivenName "Eve" . }')
            columns, rows = backend.execute_select(query)
            assert columns == ("p",)
            assert rows == [(YAGO.term("Eve"),)]

    def test_sql_engine_agrees_with_python_executor(self, mini_kg, advisor_query, example1_query):
        """Cross-check: the SQLite self-join plan and the work-accounted executor
        must return the same answers for the paper's queries."""
        store = RelationalStore()
        store.load(mini_kg)
        with SQLiteBackend() as backend:
            backend.insert_triples(mini_kg)
            for query in (advisor_query, example1_query):
                _, sql_rows = backend.execute_select(query)
                python_rows = store.execute(query).rows()
                assert sorted(map(repr, sql_rows)) == sorted(map(repr, python_rows))

    def test_persistence_to_disk(self, tmp_path, mini_kg):
        path = tmp_path / "kg.sqlite"
        with SQLiteBackend(path) as backend:
            backend.insert_triples(mini_kg)
        with SQLiteBackend(path) as reopened:
            assert reopened.count() == len(mini_kg)

    def test_literal_round_trip(self):
        triple = Triple(YAGO.Alice, YAGO.term("age"), Literal("30"))
        with SQLiteBackend() as backend:
            backend.insert_triples([triple])
            query = parse_query("SELECT ?o WHERE { <%s> y:age ?o . }" % YAGO.Alice.value)
            _, rows = backend.execute_select(query)
            assert rows == [(Literal("30"),)]
