"""Tests for the online adaptive tuning subsystem (repro.serve.adaptive) and
the batched-mutation machinery underneath it, plus regressions for the
serve-metrics fixes that landed with it."""

from __future__ import annotations

import threading

import pytest

from repro import (
    AdaptiveConfig,
    Dotil,
    DotilConfig,
    DualStore,
    LRUTuner,
    QueryService,
    ServiceConfig,
    generate_watdiv,
    parse_query,
    watdiv_workload,
)
from repro.errors import TuningError
from repro.rdf.namespace import WATDIV
from repro.serve.adaptive import ReadWriteLock, WorkloadWindow
from repro.serve.metrics import LatencyDigest, ServiceCounters

TUNER_CONFIG = DotilConfig(r_bg=0.15, prob=1.0, gamma=0.7, lam=4.5)


@pytest.fixture(scope="module")
def dataset():
    return generate_watdiv(target_triples=2500, seed=7)


@pytest.fixture(scope="module")
def family_mixes(dataset):
    def mix(*families):
        queries = []
        for family in families:
            queries.extend(watdiv_workload(dataset, family=family, seed=19).ordered())
        return queries

    return {"a": mix("linear", "star"), "b": mix("snowflake", "complex")}


@pytest.fixture()
def dual(dataset):
    return DualStore(TUNER_CONFIG).load(dataset.triples)


def adaptive_config(**overrides):
    defaults = dict(
        window_size=128,
        epoch_queries=0,
        tuner_factory=lambda dual: Dotil(dual, TUNER_CONFIG),
    )
    defaults.update(overrides)
    return AdaptiveConfig(**defaults)


# ---------------------------------------------------------------------- #
# Batched mutations on the dual store
# ---------------------------------------------------------------------- #
def _smallest_partitions(dual, count):
    """The `count` smallest partitions (they always fit the r_bg budget)."""
    sizes = dual.partition_sizes()
    return sorted(sizes, key=lambda p: (sizes[p], p.value))[:count]


class TestBatchedMutations:
    def test_apply_moves_bumps_generation_once(self, dual, dataset):
        predicates = _smallest_partitions(dual, 4)
        before = dual.generation
        receipt = dual.apply_moves(transfers=predicates)
        assert dual.generation == before + 1
        assert receipt.transferred == predicates
        assert receipt.moves == len(predicates)
        assert receipt.import_seconds > 0.0 and receipt.evict_seconds == 0.0

        before = dual.generation
        receipt = dual.apply_moves(evictions=predicates[:2], transfers=[])
        assert dual.generation == before + 1
        assert receipt.evicted == predicates[:2]
        assert receipt.evict_seconds > 0.0

    def test_apply_moves_fires_hooks_once(self, dual):
        fired = []
        dual.add_invalidation_hook(fired.append)
        predicates = _smallest_partitions(dual, 3)
        dual.apply_moves(transfers=predicates)
        assert fired == [dual.generation]

    def test_apply_moves_evicts_before_transferring(self, dual):
        sizes = dual.partition_sizes()
        resident = _smallest_partitions(dual, 3)
        incoming = resident.pop()
        dual.apply_moves(transfers=resident)
        # Clamp the budget so the incoming partition only fits if the batch
        # frees room first: evictions must precede transfers.
        dual.graph.storage_budget = dual.graph.used_capacity() + sizes[incoming] - 1
        receipt = dual.apply_moves(transfers=[incoming], evictions=[resident[0]])
        assert receipt.evicted == [resident[0]]
        assert receipt.transferred == [incoming]

    def test_batch_mutations_without_mutation_does_not_bump(self, dual):
        before = dual.generation
        with dual.batch_mutations():
            pass
        assert dual.generation == before

    def test_batch_mutations_nests(self, dual):
        predicates = _smallest_partitions(dual, 2)
        before = dual.generation
        with dual.batch_mutations():
            with dual.batch_mutations():
                dual.transfer_partition(predicates[0])
            # The inner exit must not fire: still inside the outer batch.
            assert dual.generation == before
            dual.transfer_partition(predicates[1])
        assert dual.generation == before + 1

    def test_evict_returns_modelled_seconds_symmetric_with_transfer(self, dual):
        predicate = _smallest_partitions(dual, 1)[0]
        size = dual.partition_sizes()[predicate]
        import_seconds = dual.transfer_partition(predicate)
        evict_seconds = dual.evict_partition(predicate)
        assert isinstance(evict_seconds, float)
        assert import_seconds == dual.cost_model.graph_import_seconds(size)
        assert evict_seconds == dual.cost_model.graph_evict_seconds(size)
        assert 0.0 < evict_seconds < import_seconds

    def test_service_delegations_return_modelled_seconds(self, dual):
        predicate = _smallest_partitions(dual, 1)[0]
        with QueryService(dual) as service:
            imported = service.transfer_partition(predicate)
            evicted = service.evict_partition(predicate)
        assert isinstance(imported, float) and isinstance(evicted, float)
        assert evicted == dual.cost_model.graph_evict_seconds(dual.partition_sizes()[predicate])


# ---------------------------------------------------------------------- #
# The workload window
# ---------------------------------------------------------------------- #
class TestWorkloadWindow:
    @staticmethod
    def _entry(dual, text):
        query = parse_query(text)
        return "key:" + text, query, dual.identify(query)

    def test_slides_at_capacity(self, dual):
        window = WorkloadWindow(capacity=3)
        for index in range(5):
            key, query, subquery = self._entry(
                dual, f"SELECT ?u WHERE {{ ?u wsdbm:likes ?p{index} . ?p{index} wsdbm:hasGenre ?g . }}"
            )
            window.record(key, query, subquery)
        assert len(window) == 3
        assert window.harvested == 5
        assert [e.key for e in window.snapshot()] == [
            "key:" + f"SELECT ?u WHERE {{ ?u wsdbm:likes ?p{i} . ?p{i} wsdbm:hasGenre ?g . }}"
            for i in (2, 3, 4)
        ]

    def test_mark_epoch_resets_pending_but_keeps_entries(self, dual):
        window = WorkloadWindow(capacity=8)
        key, query, subquery = self._entry(
            dual, "SELECT ?u WHERE { ?u wsdbm:likes ?p . ?p wsdbm:hasGenre ?g . }"
        )
        window.record(key, query, subquery)
        window.record(key, query, subquery)
        assert window.pending == 2
        entries = window.mark_epoch()
        assert len(entries) == 2
        assert window.pending == 0
        assert len(window) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WorkloadWindow(capacity=0)


# ---------------------------------------------------------------------- #
# The tuning daemon through the service
# ---------------------------------------------------------------------- #
class TestAdaptiveService:
    def test_plain_service_has_no_adaptive_subsystem(self, dual):
        with QueryService(dual) as service:
            assert service.adaptive is None
            assert service.adaptive_metrics() is None
            with pytest.raises(RuntimeError):
                service.tune_now()

    def test_serves_harvest_into_the_window_hits_included(self, dual, family_mixes):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            batch = family_mixes["a"][:10]
            service.run_batch(batch)
            harvested = service.adaptive.window.harvested
            assert harvested > 0
            service.run_batch(batch)  # all result-cache hits
            assert service.adaptive.window.harvested == 2 * harvested

    def test_epoch_applies_moves_with_one_invalidation(self, dual, family_mixes):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            service.run_batch(family_mixes["a"])
            assert len(service.result_cache) > 0
            generation = dual.generation
            epoch = service.tune_now()
            assert epoch.moves > 1
            assert epoch.invalidations == 1
            assert dual.generation == generation + 1
            assert len(service.result_cache) == 0
            assert service.metrics.counters.invalidation_events == 1
            metrics = service.adaptive_metrics()
            assert metrics["epochs"] == 1.0
            assert metrics["invalidations_avoided"] == epoch.moves - 1

    def test_epoch_on_empty_window_is_a_noop(self, dual):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            epoch = service.tune_now()
            assert epoch.window_size == 0
            assert epoch.moves == 0
            assert epoch.invalidations == 0
            assert dual.generation == 1  # only the load bump

    def test_epoch_without_moves_does_not_invalidate(self, dual, family_mixes):
        # The LRU tuner converges on a stable desired set under a repeating
        # mix: the second epoch applies no moves, so the generation (and the
        # result cache) must be left alone.
        config = adaptive_config(tuner_factory=LRUTuner)
        with QueryService(dual, ServiceConfig(adaptive=config)) as service:
            service.run_batch(family_mixes["a"])
            first = service.tune_now()
            assert first.moves > 0
            service.run_batch(family_mixes["a"])
            cached = len(service.result_cache)
            assert cached > 0
            second = service.tune_now()
            assert second.moves == 0
            assert second.invalidations == 0
            assert len(service.result_cache) == cached

    def test_served_answers_track_the_new_placement(self, dual, family_mixes, fingerprint):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            batch = family_mixes["a"]
            cold = service.run_batch(batch)
            service.tune_now()
            warm = service.run_batch(batch)
            # Fresh executions (the epoch invalidated the cache), identical
            # answers, and routing that matches the uncached store.
            assert warm.cache_hits == 0
            for before, after, query in zip(cold, warm, batch):
                assert fingerprint(after.result) == fingerprint(before.result)
                assert after.record.route == dual.run_query(query).record.route

    def test_modelled_tti_delta_is_measured(self, dual, family_mixes):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            service.run_batch(family_mixes["a"])
            epoch = service.tune_now()
            assert epoch.tti_before is not None and epoch.tti_after is not None
            assert epoch.tti_delta == epoch.tti_before - epoch.tti_after
            metrics = service.adaptive_metrics()
            assert metrics["last_window_tti_before"] == epoch.tti_before
            assert metrics["last_window_tti_after"] == epoch.tti_after

    def test_tti_measurement_can_be_disabled(self, dual, family_mixes):
        config = adaptive_config(measure_tti=False)
        with QueryService(dual, ServiceConfig(adaptive=config)) as service:
            service.run_batch(family_mixes["a"])
            epoch = service.tune_now()
            assert epoch.tti_before is None and epoch.tti_after is None
            assert epoch.tti_delta is None

    def test_auto_epochs_trigger_on_harvest_threshold(self, dual, family_mixes):
        config = adaptive_config(epoch_queries=8)
        with QueryService(dual, ServiceConfig(adaptive=config)) as service:
            service.run_batch(family_mixes["a"][:30])
            metrics = service.adaptive_metrics()
            assert metrics["epochs"] >= 1.0
            assert service.adaptive.window.pending < 8

    def test_baseline_tuners_plug_in(self, dual, family_mixes):
        config = adaptive_config(tuner_factory=LRUTuner)
        with QueryService(dual, ServiceConfig(adaptive=config)) as service:
            service.run_batch(family_mixes["a"])
            epoch = service.tune_now()
            assert epoch.moves > 0
            assert epoch.invalidations == 1

    def test_background_daemon_runs_epochs(self, dual, family_mixes):
        import time

        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            service.run_batch(family_mixes["a"][:10])
            service.adaptive.start(interval_seconds=0.02)
            deadline = time.monotonic() + 30.0
            while service.adaptive.metrics.epochs == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            service.adaptive.stop()
            assert service.adaptive.metrics.epochs >= 1
            # An idle interval (nothing newly harvested) must not add epochs.
            assert service.adaptive.window.pending == 0

    def test_background_daemon_survives_a_failing_epoch(self, dual, family_mixes):
        import time

        class FlakyTuner(LRUTuner):
            calls = 0

            def tune(self, recent, upcoming=None):
                type(self).calls += 1
                if type(self).calls == 1:
                    raise RuntimeError("transient tuner failure")
                return super().tune(recent, upcoming)

        config = adaptive_config(tuner_factory=FlakyTuner)
        with QueryService(dual, ServiceConfig(adaptive=config)) as service:
            daemon = service.adaptive
            service.run_batch(family_mixes["a"][:10])
            daemon.start(interval_seconds=0.02)
            deadline = time.monotonic() + 30.0
            while daemon.metrics.epoch_failures == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            # The failure is recorded, the thread is still alive, and — once
            # fresh traffic re-arms the trigger — the next epoch succeeds.
            # (The failed epoch already counts in `epochs`, so the retry is
            # observed through `epochs_with_moves`: only a *successful* LRU
            # pass over fresh traffic applies moves.)
            assert daemon.metrics.epoch_failures == 1
            assert isinstance(daemon.last_error, RuntimeError)
            assert daemon.running
            assert daemon.metrics.epochs_with_moves == 0
            service.run_batch(family_mixes["a"][:10])
            deadline = time.monotonic() + 30.0
            while daemon.metrics.epochs_with_moves == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            daemon.stop()
            assert daemon.metrics.epochs_with_moves >= 1
            assert daemon.metrics.epoch_failures == 1

        # The explicit path still propagates tuner errors to the caller.
        FlakyTuner.calls = 0
        dual2 = DualStore(TUNER_CONFIG).load(generate_watdiv(500, seed=3).triples)
        with QueryService(dual2, ServiceConfig(adaptive=adaptive_config(
                tuner_factory=FlakyTuner))) as service:
            service.run_batch(family_mixes["a"][:4])
            with pytest.raises(RuntimeError):
                service.tune_now()

    def test_failed_epoch_still_accounts_applied_moves(self, dual, family_mixes):
        """A tuner that dies mid-epoch leaves its already-applied moves (and
        their single invalidation) on the books — the reconciliation
        invariants must survive the failure path."""

        class DiesAfterOneMove(LRUTuner):
            def tune(self, recent, upcoming=None):
                predicate = _smallest_partitions(self.dual, 1)[0]
                self.dual.transfer_partition(predicate)
                raise RuntimeError("died mid-epoch")

        config = adaptive_config(tuner_factory=DiesAfterOneMove)
        with QueryService(dual, ServiceConfig(adaptive=config)) as service:
            service.run_batch(family_mixes["a"][:6])
            generation = dual.generation
            with pytest.raises(RuntimeError):
                service.tune_now()
            # The batched context fired exactly one invalidation on unwind.
            assert dual.generation == generation + 1
            assert service.metrics.counters.invalidation_events == 1
            metrics = service.adaptive_metrics()
            assert metrics["moves_applied"] == 1.0
            assert metrics["epochs_with_moves"] == 1.0
            assert metrics["import_seconds"] > 0.0
            assert metrics["invalidations_avoided"] == 0.0

    def test_mutations_through_an_adaptive_service_take_the_write_gate(self, dual):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            predicate = _smallest_partitions(dual, 1)[0]
            assert service.transfer_partition(predicate) > 0.0
            assert service.evict_partition(predicate) > 0.0
            assert service.insert([]) >= 0.0
            # Three mutations, three invalidation-hook fires (no batching
            # outside an epoch).
            assert service.metrics.counters.invalidation_events == 3

    def test_close_stops_the_background_daemon(self, dual):
        service = QueryService(dual, ServiceConfig(adaptive=adaptive_config()))
        service.adaptive.start(interval_seconds=30.0)
        assert service.adaptive.running
        service.close()
        assert not service.adaptive.running

    def test_daemon_start_validates_and_refuses_double_start(self, dual):
        with QueryService(dual, ServiceConfig(adaptive=adaptive_config())) as service:
            with pytest.raises(ValueError):
                service.adaptive.start(interval_seconds=0.0)
            service.adaptive.start(interval_seconds=30.0)
            with pytest.raises(RuntimeError):
                service.adaptive.start(interval_seconds=30.0)
            service.adaptive.stop()

    def test_concurrent_serves_and_epochs_stay_consistent(self, dual, family_mixes, fingerprint):
        """Serving threads race tuning epochs; every answer must match the
        uncached truth of some placement — and the final pass exactly."""
        errors = []
        config = adaptive_config(window_size=64)
        with QueryService(dual, ServiceConfig(adaptive=config, max_workers=4)) as service:
            batch = family_mixes["a"][:12]
            truth = [fingerprint(dual.run_query(q).result) for q in batch]

            def serve():
                try:
                    for _ in range(8):
                        served = service.run_batch(batch)
                        for expected, entry in zip(truth, served):
                            if fingerprint(entry.result) != expected:
                                errors.append("served answer diverged")
                except Exception as exc:  # pragma: no cover - failure reporting
                    errors.append(repr(exc))

            def tune():
                try:
                    for _ in range(4):
                        service.tune_now()
                except Exception as exc:  # pragma: no cover - failure reporting
                    errors.append(repr(exc))

            threads = [threading.Thread(target=serve) for _ in range(3)]
            threads.append(threading.Thread(target=tune))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads), "adaptive stress deadlocked"
            assert not errors, errors[:5]
            # Every epoch bumped the generation at most once.
            metrics = service.adaptive_metrics()
            assert service.metrics.counters.invalidation_events <= metrics["epochs"]


# ---------------------------------------------------------------------- #
# The read/write gate
# ---------------------------------------------------------------------- #
class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        state = {"concurrent_readers": 0, "peak_readers": 0, "writer_saw_readers": False}
        state_lock = threading.Lock()
        barrier = threading.Barrier(3)

        def reader():
            barrier.wait(timeout=10)
            with lock.read_locked():
                with state_lock:
                    state["concurrent_readers"] += 1
                    state["peak_readers"] = max(state["peak_readers"], state["concurrent_readers"])
                threading.Event().wait(0.05)
                with state_lock:
                    state["concurrent_readers"] -= 1

        def writer():
            barrier.wait(timeout=10)
            with lock.write_locked():
                with state_lock:
                    if state["concurrent_readers"]:
                        state["writer_saw_readers"] = True

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert state["peak_readers"] == 2
        assert not state["writer_saw_readers"]


# ---------------------------------------------------------------------- #
# Serve-metrics regressions (the satellite bugfixes)
# ---------------------------------------------------------------------- #
class TestMirroredGaugeCounters:
    def test_merge_takes_max_of_mirrored_gauges(self):
        earlier = ServiceCounters(queries_served=5, stale_rejections=3)
        later = ServiceCounters(queries_served=9, stale_rejections=4)
        merged = earlier.merge(later)
        # Plain counters sum; the mirrored cumulative gauge must not.
        assert merged.queries_served == 14
        assert merged.stale_rejections == 4

    def test_add_is_gauge_aware_in_place(self):
        counters = ServiceCounters(stale_rejections=7)
        counters.add(ServiceCounters(stale_rejections=2, invalidations=1))
        assert counters.stale_rejections == 7
        assert counters.invalidations == 1

    def test_two_snapshots_of_one_service_do_not_double_count(self, dual):
        with QueryService(dual) as service:
            query = "SELECT ?u WHERE { ?u wsdbm:likes ?p . ?p wsdbm:hasGenre ?g . }"
            service.run_query(query)
            # Plant a stale entry so the lookup-time check rejects it.
            key = service.resolve(query).key
            entry = service.result_cache._entries[key]
            entry.generation -= 1
            service.run_query(query)
            first = service.metrics.counters.copy()
            second = service.metrics.counters.copy()
            assert first.stale_rejections == 1
            assert first.merge(second).stale_rejections == 1

    def test_copy_preserves_gauges(self):
        counters = ServiceCounters(stale_rejections=5)
        assert counters.copy().stale_rejections == 5


class TestBoundedLatencyDigest:
    def test_exact_percentiles_under_the_cap(self):
        digest = LatencyDigest(capacity=16)
        for value in [5.0, 1.0, 2.0, 4.0, 3.0]:
            digest.observe(value)
        assert digest.p50 == 3.0
        assert digest.p95 == 5.0
        assert digest.sample_size == 5

    def test_count_mean_total_stay_exact_past_the_cap(self):
        digest = LatencyDigest(capacity=32)
        observations = [float(i % 97) for i in range(10 * 32)]
        for value in observations:
            digest.observe(value)
        assert digest.count == len(observations)
        assert digest.total == pytest.approx(sum(observations))
        assert digest.mean == pytest.approx(sum(observations) / len(observations))
        # Memory is bounded and percentiles stay plausible estimates.
        assert digest.sample_size == 32
        assert 0.0 <= digest.p50 <= 96.0

    def test_identically_fed_digests_agree(self):
        a, b = LatencyDigest(capacity=8), LatencyDigest(capacity=8)
        for value in range(100):
            a.observe(float(value))
            b.observe(float(value))
        assert a.percentile(50.0) == b.percentile(50.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LatencyDigest(capacity=0)

    def test_service_digest_is_bounded(self, dual):
        with QueryService(dual) as service:
            digest = service.metrics.modelled_latency
            assert digest.capacity == LatencyDigest.DEFAULT_CAPACITY


class TestReadWriteLockReentrancy:
    """Regression: the writer thread re-entering ``acquire_read`` (e.g. a
    tuner epoch callback that tries to serve a query through the service)
    used to wait on its own writer flag forever — a silent deadlock.  It now
    raises a clear ``TuningError`` instead."""

    def test_writer_thread_reacquiring_read_raises(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with pytest.raises(TuningError, match="re-entrant read acquisition"):
                lock.acquire_read()
        # The write side was released cleanly: readers proceed afterwards.
        with lock.read_locked():
            pass

    def test_other_threads_still_block_not_raise(self):
        lock = ReadWriteLock()
        acquired = threading.Event()
        release = threading.Event()
        outcome = {}

        def writer():
            with lock.write_locked():
                acquired.set()
                release.wait(timeout=10)

        def reader():
            # A *different* thread must block (normal contention), not raise.
            lock.acquire_read()
            outcome["read"] = True
            lock.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert acquired.wait(timeout=10)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        reader_thread.join(timeout=0.2)
        assert reader_thread.is_alive()  # blocked on the held write lock
        release.set()
        writer_thread.join(timeout=10)
        reader_thread.join(timeout=10)
        assert outcome.get("read") is True

    def test_epoch_callback_serving_through_the_service_fails_loudly(self, dataset):
        """The end-to-end shape of the bug: a tuner that serves a query
        through the service mid-epoch must get a TuningError, not wedge."""

        class ServingTuner(Dotil):
            def __init__(self, dual, service_ref):
                super().__init__(dual, TUNER_CONFIG)
                self._service_ref = service_ref

            def tune(self, recent, upcoming=None):
                self._service_ref["service"].run_query(
                    "SELECT ?s WHERE { ?s wsdbm:follows ?o . ?o wsdbm:follows ?s . }"
                )
                return super().tune(recent, upcoming)

        service_ref = {}
        dual = DualStore(TUNER_CONFIG).load(dataset.triples)
        config = ServiceConfig(
            adaptive=AdaptiveConfig(
                epoch_queries=0,
                tuner_factory=lambda d: ServingTuner(d, service_ref),
            )
        )
        with QueryService(dual, config) as service:
            service_ref["service"] = service
            service.run_batch(watdiv_workload(dataset, family="star", seed=3).ordered()[:8])
            with pytest.raises(TuningError, match="re-entrant read acquisition"):
                service.tune_now()
