"""Columnar engine internals: kernel strategies, cached column blocks,
engine plumbing validation, and the planner's kernel-cost/skew hook.

The differential suite (``test_differential_engine.py``) proves the columnar
engine indistinguishable from the reference oracle end to end; this module
pins down the pieces that make that hold — kernel output *order*, block
invalidation on mutations, the numpy feature probe, and the skew-aware
planner regression the batch cost model exists to prevent.
"""

from __future__ import annotations

import pytest

from repro import DualStore, RelationalStore, ShardedRelationalStore
from repro.errors import QueryExecutionError
from repro.rdf import IRI, Triple
from repro.relstore import columnar
from repro.relstore.columnar import (
    ColumnarTripleTable,
    _NumpyKernels,
    _StdlibKernels,
    numpy_available,
    select_kernels,
)
from repro.relstore.executor import relational_work_units
from repro.relstore.planner import KernelCostModel, kernel_costs_for_engine, plan_query
from repro.serve import QueryService, ServiceConfig
from repro.sparql import parse_query

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not importable")


def ex(name: str) -> IRI:
    return IRI(f"http://example.org/{name}")


# --------------------------------------------------------------------------- #
# Kernel strategies: both backends must emit the same gather order
# --------------------------------------------------------------------------- #
@needs_numpy
def test_numpy_and_stdlib_hash_joins_emit_identical_gather_order():
    probe = [5, 3, 5, 9, 1, 3]
    build = [3, 5, 3, 7, 5, 3]
    left_s, right_s, total_s = _StdlibKernels.hash_join(probe, build)
    left_n, right_n, total_n = _NumpyKernels.hash_join(
        _NumpyKernels.from_ints(probe), _NumpyKernels.from_ints(build)
    )
    assert total_s == total_n
    assert list(left_n) == list(left_s)
    assert list(right_n) == list(right_s)
    # Probe rows in pipeline order; within a key, build rows in block order.
    assert list(left_s) == sorted(left_s)
    assert list(right_s[:2]) == [1, 4]  # probe[0]=5 matches build rows 1 then 4


@needs_numpy
def test_numpy_distinct_selection_keeps_first_occurrence_order():
    keys = [7, 2, 7, 5, 2, 7, 5]
    assert list(_NumpyKernels.distinct_selection([_NumpyKernels.from_ints(keys)], len(keys))) == [
        0,
        1,
        3,
    ]
    assert _StdlibKernels.distinct_selection([keys], len(keys)) == [0, 1, 3]
    # Multi-column keys: (1,1) repeats, (1,2) is new.
    a, b = [1, 1, 1], [1, 2, 1]
    pair = [_NumpyKernels.from_ints(a), _NumpyKernels.from_ints(b)]
    assert list(_NumpyKernels.distinct_selection(pair, 3)) == [0, 1]
    assert _StdlibKernels.distinct_selection([a, b], 3) == [0, 1]


@needs_numpy
def test_numpy_and_stdlib_cartesian_agree():
    assert list(map(list, _NumpyKernels.cartesian(2, 3)[:2])) == list(
        map(list, _StdlibKernels.cartesian(2, 3)[:2])
    )


def test_select_kernels_honours_the_stdlib_kill_switch(monkeypatch):
    monkeypatch.setenv(columnar.FORCE_STDLIB_ENV, "1")
    assert select_kernels() is _StdlibKernels
    assert not columnar.numpy_enabled()
    # An explicit True still overrides the probe (the bench uses this).
    if numpy_available():
        assert select_kernels(True) is _NumpyKernels


def test_select_kernels_fails_loudly_when_numpy_is_forced_but_absent(monkeypatch):
    monkeypatch.setattr(columnar, "_numpy", None)
    with pytest.raises(QueryExecutionError):
        select_kernels(True)
    assert select_kernels(None) is _StdlibKernels  # probe degrades silently


# --------------------------------------------------------------------------- #
# Cached column blocks follow the row table through mutations
# --------------------------------------------------------------------------- #
def _columnar_store() -> RelationalStore:
    store = RelationalStore(engine="columnar")
    store.load(
        [
            Triple(ex("a"), ex("p"), ex("x")),
            Triple(ex("b"), ex("p"), ex("y")),
            Triple(ex("c"), ex("q"), ex("z")),
        ]
    )
    return store

def test_insert_invalidates_only_the_touched_predicate_block():
    store = _columnar_store()
    table = store.table
    assert isinstance(table, ColumnarTripleTable)
    p_id = table.dictionary.lookup(ex("p"))
    q_id = table.dictionary.lookup(ex("q"))
    p_block = table.partition_columns(p_id)
    q_block = table.partition_columns(q_id)
    full = table.full_columns()
    assert p_block[2] == 2 and q_block[2] == 1 and full[3] == 3

    store.insert([Triple(ex("d"), ex("p"), ex("w"))])
    assert table._full_columns is None  # full scan covers every predicate
    assert q_id in table._partition_columns  # untouched predicate survives
    assert p_id not in table._partition_columns
    assert table.partition_columns(p_id)[2] == 3
    assert table.partition_columns(q_id) is q_block


def test_delete_and_compact_drop_every_block():
    store = _columnar_store()
    table = store.table
    p_id = table.dictionary.lookup(ex("p"))
    q_id = table.dictionary.lookup(ex("q"))
    table.partition_columns(p_id)
    table.partition_columns(q_id)
    store.delete(Triple(ex("a"), ex("p"), ex("x")))
    assert table._partition_columns == {} and table._full_columns is None
    assert table.partition_columns(p_id)[2] == 1
    # Tombstoned rows were already excluded; compaction must not resurrect.
    table.partition_columns(q_id)
    if table.compact():
        assert table._partition_columns == {}
    assert table.partition_columns(q_id)[2] == 1


def test_extract_predicate_drops_that_predicates_block():
    store = _columnar_store()
    table = store.table
    p_id = table.dictionary.lookup(ex("p"))
    q_id = table.dictionary.lookup(ex("q"))
    table.partition_columns(p_id)
    table.partition_columns(q_id)
    table.extract_predicate(q_id)
    assert q_id not in table._partition_columns
    assert table._full_columns is None
    assert table.partition_columns(q_id)[2] == 0


# --------------------------------------------------------------------------- #
# Engine plumbing fails fast on misconfiguration
# --------------------------------------------------------------------------- #
def test_unknown_engine_names_are_rejected_everywhere():
    with pytest.raises(ValueError):
        RelationalStore(engine="columnarr")
    with pytest.raises(ValueError):
        ShardedRelationalStore(shards=2, engine="reference")


def test_dualstore_rejects_an_engine_conflicting_with_an_explicit_store():
    with pytest.raises(ValueError):
        DualStore(relational_store=RelationalStore(engine="reference"), engine="columnar")
    dual = DualStore(engine="columnar")
    assert dual.relational.engine == "columnar"
    assert isinstance(dual.relational.table, ColumnarTripleTable)


def test_service_config_engine_mismatch_fails_at_construction():
    dual = DualStore(engine="columnar").load([Triple(ex("a"), ex("p"), ex("x"))])
    with pytest.raises(ValueError):
        QueryService(dual, ServiceConfig(engine="idspace"))
    service = QueryService(dual, ServiceConfig(engine="columnar"))
    result = service.run_query(parse_query("SELECT ?s WHERE { ?s <http://example.org/p> ?o . }"))
    assert len(result.result) == 1


def test_sharded_snapshot_round_trips_the_engine():
    store = ShardedRelationalStore(shards=2, engine="columnar")
    store.load([Triple(ex("a"), ex("p"), ex("x")), Triple(ex("b"), ex("p"), ex("y"))])
    restored = ShardedRelationalStore.restore_state(store.snapshot_state(), store.dictionary)
    assert restored.engine == "columnar"
    assert all(isinstance(table, ColumnarTripleTable) for table in restored._tables)
    legacy = store.snapshot_state()
    legacy.pop("engine")  # pre-columnar snapshots carry no engine entry
    assert ShardedRelationalStore.restore_state(legacy, store.dictionary).engine == "idspace"


# --------------------------------------------------------------------------- #
# The planner's kernel-cost hook and the skew guard
# --------------------------------------------------------------------------- #
def test_kernel_costs_for_engine_maps_every_bundled_engine():
    assert kernel_costs_for_engine("columnar").batch_setup > 0
    for engine in ("reference", "idspace", "sqlite", "made-up"):
        assert kernel_costs_for_engine(engine).batch_setup == 0
    # The skew parameters are shared: plans cannot depend on the engine.
    row, batch = kernel_costs_for_engine("idspace"), kernel_costs_for_engine("columnar")
    assert (row.skew_guard, row.skew_blend) == (batch.skew_guard, batch.skew_blend)


def _skewed_triples():
    """A hot-key predicate the average-based estimate wildly underprices.

    ``hasTag``: 60 subjects share the ``Popular`` tag (the hot key) while 60
    more carry singleton tags, so the average object lookup is ~2 rows but
    the one lookup queries actually issue touches 60.  ``hasRole`` is the
    honest competitor: 12 rows, all ``Admin``.  ``knows`` connects them with
    deliberately asymmetric selectivity: only half the Popular subjects know
    an Admin, plus ten unpopular subjects who do.
    """
    triples = []
    for i in range(60):
        triples.append(Triple(ex(f"a{i}"), ex("hasTag"), ex("Popular")))
        triples.append(Triple(ex(f"b{i}"), ex("hasTag"), ex(f"unique{i}")))
    for i in range(12):
        triples.append(Triple(ex(f"d{i}"), ex("hasRole"), ex("Admin")))
    for i in range(30):
        triples.append(Triple(ex(f"a{i}"), ex("knows"), ex(f"d{i % 12}")))
    for i in range(30, 60):
        triples.append(Triple(ex(f"a{i}"), ex("knows"), ex(f"e{i}")))
    for i in range(10):
        triples.append(Triple(ex(f"b{i}"), ex("knows"), ex("d0")))
    return triples


SKEW_QUERY = """
SELECT ?x ?y WHERE {
  ?x <http://example.org/hasTag> <http://example.org/Popular> .
  ?y <http://example.org/hasRole> <http://example.org/Admin> .
  ?x <http://example.org/knows> ?y .
}
"""


def test_skew_guard_demotes_the_hot_key_lookup():
    """With skew statistics the plan leads with the honest 12-row lookup;
    pricing lookups at the average (skew guard disabled) front-loads the
    hot-key lookup instead — the regression the guard exists to prevent."""
    store = RelationalStore(engine="columnar")
    store.load(_skewed_triples())
    query = parse_query(SKEW_QUERY)

    plan = store.plan(query)
    assert plan.steps[0].pattern.predicate == ex("hasRole")
    assert plan.steps[2].pattern.predicate == ex("hasTag")

    blind = KernelCostModel(name="no-skew-guard", skew_guard=1e18)
    old_plan = plan_query(query, store.statistics(), kernel_costs=blind)
    assert old_plan.steps[0].pattern.predicate == ex("hasTag")

    # Engine invariance: every bundled cost model picks the same join order.
    idspace = RelationalStore()
    idspace.load(_skewed_triples())
    assert [s.pattern for s in idspace.plan(query)] == [s.pattern for s in plan]

    # The reordering is not cosmetic: executing the old ordering joins
    # through the 60-row hot-key pipeline and does strictly more work.
    new_run = store.execute(query)
    old_run = store.execute(query, pattern_order=[s.pattern for s in old_plan])
    assert {tuple(sorted(b.items())) for b in new_run.bindings} == {
        tuple(sorted(b.items())) for b in old_run.bindings
    }
    assert new_run.counters.rows_joined < old_run.counters.rows_joined
    assert relational_work_units(new_run.counters) < relational_work_units(old_run.counters)

    # And both engines execute the skew-aware plan identically.
    cold = idspace.execute(query)
    assert cold.bindings == new_run.bindings
    assert cold.counters.as_dict() == new_run.counters.as_dict()


def test_skew_statistics_survive_the_payload_round_trip():
    store = RelationalStore(engine="columnar")
    store.load(_skewed_triples())
    stats = store.statistics()
    hot = stats.per_predicate[ex("hasTag")]
    assert hot.max_object_rows == 60
    assert hot.worst_object_rows == 60

    from repro.relstore.stats import TableStatistics

    restored = TableStatistics.from_payload(stats.to_payload())
    assert restored.per_predicate[ex("hasTag")].max_object_rows == 60

    # Pre-skew payloads (3-entry lists) fall back to the average estimate.
    legacy_payload = stats.to_payload()
    for entry in legacy_payload["per_predicate"].values():
        del entry[3:]
    legacy = TableStatistics.from_payload(legacy_payload)
    legacy_hot = legacy.per_predicate[ex("hasTag")]
    assert legacy_hot.max_object_rows == 0
    assert legacy_hot.worst_object_rows == legacy_hot.object_lookup_rows
