"""SPARQL-protocol conformance for the live HTTP endpoint.

Every test here talks to a real in-process :class:`SparqlEndpoint` over a
socket (the ``live_endpoint`` fixture), not to handler objects, so what is
pinned is the actual wire behaviour: request forms, status codes, headers,
and — the central invariant — that the response bytes for every workload
template family are **byte-identical** to encoding the direct
:class:`QueryService` answer with the one canonical encoder.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.endpoint import (
    ERROR_JSON,
    GENERATION_HEADER,
    RESULTS_JSON,
    encode_results,
    sparql_request,
)
from repro.rdf import IRI, Literal, Triple, TripleSet, XSD, YAGO
from repro.rdf.terms import BlankNode


def _raw(url: str, *, method: str = "GET", data: bytes | None = None, headers: dict | None = None):
    """One raw HTTP exchange; 4xx/5xx come back as data, not exceptions."""
    request = urllib.request.Request(url, data=data, method=method, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def _families(workload):
    """One representative query text per template family, deterministically."""
    chosen = {}
    for entry in workload.queries:
        chosen.setdefault(entry.family, entry.query.to_sparql())
    return dict(sorted(chosen.items()))


class TestRequestForms:
    def test_get_returns_results_json(self, live_endpoint, endpoint_workload):
        endpoint, _service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        response = sparql_request(endpoint.url, query)
        assert response.status == 200
        assert response.headers["content-type"] == RESULTS_JSON
        document = response.json()
        assert set(document) == {"head", "results"}
        assert isinstance(document["head"]["vars"], list)
        assert isinstance(document["results"]["bindings"], list)

    def test_post_forms_match_get_bytes(self, live_endpoint, endpoint_workload):
        """GET, form-encoded POST, and direct POST are the same query; the
        protocol requires they produce the same answer — here, the same bytes."""
        endpoint, _service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        via_get = sparql_request(endpoint.url, query)
        via_form = sparql_request(endpoint.url, query, method="POST")
        via_direct = sparql_request(endpoint.url, query, method="POST", post_form=False)
        assert via_get.status == via_form.status == via_direct.status == 200
        assert via_get.body == via_form.body == via_direct.body

    def test_every_family_byte_identical_to_direct_service(
        self, live_endpoint, endpoint_workload
    ):
        """The tentpole pin: for every template family the wire bytes equal
        ``encode_results`` over the backing service's own answer."""
        endpoint, service = live_endpoint
        families = _families(endpoint_workload)
        assert families, "workload produced no template families"
        for family, query in families.items():
            over_http = sparql_request(endpoint.url, query)
            direct = encode_results(service.run_query(query).result)
            assert over_http.status == 200, family
            assert over_http.body == direct, f"wire bytes diverge for family {family!r}"

    def test_generation_header_stamped(self, live_endpoint, endpoint_workload):
        endpoint, service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        response = sparql_request(endpoint.url, query)
        assert response.generation == service.dual.generation


class TestResultTerms:
    """Typed / language-tagged literals and bnodes on the wire."""

    @pytest.fixture
    def term_endpoint(self, endpoint_factory):
        given = YAGO.term("hasGivenName")
        motto = YAGO.term("hasMotto")
        age = YAGO.term("hasAge")
        located = YAGO.term("isLocatedIn")
        alice, berlin = YAGO.term("Alice"), YAGO.term("Berlin")
        triples = TripleSet(
            [
                Triple(alice, given, Literal("Alice")),
                Triple(alice, motto, Literal("sei ruhig", language="de")),
                Triple(alice, age, Literal("42", datatype=XSD.term("integer").value)),
                Triple(BlankNode("station7"), located, berlin),
            ]
        )
        return endpoint_factory(triples=triples)

    def _one_binding(self, endpoint, query):
        response = sparql_request(endpoint.url, query)
        assert response.status == 200
        bindings = response.json()["results"]["bindings"]
        assert len(bindings) == 1
        return bindings[0]

    def test_plain_literal_has_no_datatype(self, term_endpoint):
        endpoint, _service = term_endpoint
        binding = self._one_binding(
            endpoint, "SELECT ?name WHERE { ?p y:hasGivenName ?name . }"
        )
        assert binding["name"] == {"type": "literal", "value": "Alice"}

    def test_language_literal_carries_xml_lang(self, term_endpoint):
        endpoint, _service = term_endpoint
        binding = self._one_binding(
            endpoint, "SELECT ?m WHERE { ?p y:hasMotto ?m . }"
        )
        assert binding["m"] == {
            "type": "literal",
            "value": "sei ruhig",
            "xml:lang": "de",
        }

    def test_typed_literal_carries_datatype(self, term_endpoint):
        endpoint, _service = term_endpoint
        binding = self._one_binding(endpoint, "SELECT ?a WHERE { ?p y:hasAge ?a . }")
        assert binding["a"] == {
            "type": "literal",
            "value": "42",
            "datatype": XSD.term("integer").value,
        }

    def test_bnode_and_uri_terms(self, term_endpoint):
        endpoint, _service = term_endpoint
        binding = self._one_binding(
            endpoint, "SELECT ?s ?where WHERE { ?s y:isLocatedIn ?where . }"
        )
        assert binding["s"] == {"type": "bnode", "value": "station7"}
        assert binding["where"] == {
            "type": "uri",
            "value": YAGO.term("Berlin").value,
        }


class TestContentNegotiation:
    def test_explicit_results_json_accepted(self, live_endpoint, endpoint_workload):
        endpoint, _service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        response = sparql_request(endpoint.url, query, accept=RESULTS_JSON)
        assert response.status == 200

    def test_plain_json_and_wildcard_accepted(self, live_endpoint, endpoint_workload):
        endpoint, _service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        for accept in ("application/json", "*/*", "application/*", "text/html, */*;q=0.1"):
            response = sparql_request(endpoint.url, query, accept=accept)
            assert response.status == 200, accept
            assert response.headers["content-type"] == RESULTS_JSON

    def test_unproducible_accept_is_406(self, live_endpoint, endpoint_workload):
        endpoint, _service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        response = sparql_request(endpoint.url, query, accept="text/html")
        assert response.status == 406
        assert response.json()["error"]["code"] == "not-acceptable"


class TestClientErrors:
    def test_malformed_query_is_400_with_machine_readable_body(self, live_endpoint):
        endpoint, _service = live_endpoint
        response = sparql_request(endpoint.url, "SELECT ?x WHERE { ?x y:unclosed")
        assert response.status == 400
        assert response.headers["content-type"] == ERROR_JSON
        error = response.json()["error"]
        assert error["code"] == "parse-error"
        assert error["message"]

    def test_missing_query_parameter_is_400(self, live_endpoint):
        endpoint, _service = live_endpoint
        status, _headers, body = _raw(f"{endpoint.url}/sparql")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "missing-query"

    def test_duplicate_query_parameter_is_400(self, live_endpoint):
        endpoint, _service = live_endpoint
        status, _headers, body = _raw(
            f"{endpoint.url}/sparql?query=SELECT&query=SELECT"
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "duplicate-query"

    def test_unknown_path_is_404(self, live_endpoint):
        endpoint, _service = live_endpoint
        status, _headers, body = _raw(f"{endpoint.url}/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-found"

    def test_unsupported_method_is_405(self, live_endpoint):
        endpoint, _service = live_endpoint
        status, headers, body = _raw(f"{endpoint.url}/sparql", method="PUT", data=b"x")
        assert status == 405
        assert "GET" in headers["Allow"] and "POST" in headers["Allow"]
        assert json.loads(body)["error"]["code"] == "method-not-allowed"

    def test_post_to_control_path_is_405(self, live_endpoint):
        endpoint, _service = live_endpoint
        status, headers, _body = _raw(f"{endpoint.url}/healthz", method="POST", data=b"")
        assert status == 405
        assert headers["Allow"] == "GET"

    def test_unsupported_post_media_type_is_415(self, live_endpoint):
        endpoint, _service = live_endpoint
        status, _headers, body = _raw(
            f"{endpoint.url}/sparql",
            method="POST",
            data=b"SELECT ?s WHERE { ?s y:wasBornIn ?c . }",
            headers={"Content-Type": "text/plain"},
        )
        assert status == 415
        assert json.loads(body)["error"]["code"] == "unsupported-media-type"


class TestControlPlane:
    def test_healthz_reports_role_and_generation(self, live_endpoint):
        endpoint, service = live_endpoint
        status, _headers, body = _raw(f"{endpoint.url}/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["role"] == "standalone"
        assert payload["generation"] == service.dual.generation
        assert payload["reloads"] == 0

    def test_metrics_spans_endpoint_and_service(self, live_endpoint, endpoint_workload):
        endpoint, _service = live_endpoint
        query = endpoint_workload.queries[0].query.to_sparql()
        assert sparql_request(endpoint.url, query).status == 200
        status, headers, body = _raw(f"{endpoint.url}/metrics")
        assert status == 200
        payload = json.loads(body)
        assert payload["endpoint"]["admitted"] >= 1
        assert payload["endpoint"]["shed_load"] == 0
        counters = payload["service"]["counters"]
        # The gate's totals are mirrored into the service counters, so one
        # /metrics document accounts for the whole stack consistently.
        assert counters["endpoint_requests"] == payload["endpoint"]["admitted"]
        assert counters["shed_load"] == payload["endpoint"]["shed_load"]
        assert int(headers[GENERATION_HEADER]) == payload["generation"]


class TestPoolRetryBackoff:
    """The pool's retry discipline (no live sockets: the request function and
    the clock are stubbed, so these pin exactly what sleeps happen when)."""

    @staticmethod
    def _response(status: int, headers: dict | None = None, body: bytes = b""):
        from repro.endpoint.client import EndpointResponse

        return EndpointResponse(status, headers or {}, body)

    @staticmethod
    def _pool(monkeypatch, outcomes, **kwargs):
        """An EndpointPool whose requests replay ``outcomes`` (an exception
        instance to raise, or an EndpointResponse to return) and whose sleeps
        are recorded instead of slept."""
        from repro.endpoint import client as client_module
        from repro.endpoint.client import EndpointPool

        script = iter(outcomes)
        slept: list[float] = []

        def fake_request(url, query, **_kwargs):
            outcome = next(script)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        monkeypatch.setattr(client_module, "sparql_request", fake_request)
        monkeypatch.setattr(client_module.time, "sleep", slept.append)
        pool = EndpointPool(["http://a", "http://b"], **kwargs)
        return pool, slept

    def test_transport_errors_back_off_exponentially_with_a_cap(self, monkeypatch):
        pool, slept = self._pool(
            monkeypatch,
            [ConnectionError("down")] * 4 + [self._response(200, body=b"ok")],
            max_attempts=5,
            retry_backoff_seconds=0.05,
            retry_backoff_cap_seconds=0.15,
        )
        response = pool.query("SELECT * WHERE { ?s ?p ?o . }")
        assert response.status == 200
        assert pool.transport_retries == 4
        # 0.05, 0.10, then capped at 0.15 — never a zero-sleep hot loop.
        assert slept == [0.05, 0.10, 0.15, 0.15]

    def test_no_sleep_after_the_final_attempt(self, monkeypatch):
        pool, slept = self._pool(
            monkeypatch,
            [ConnectionError("down")] * 3,
            max_attempts=3,
            retry_backoff_seconds=0.05,
        )
        with pytest.raises(ConnectionError):
            pool.query("SELECT * WHERE { ?s ?p ?o . }")
        assert len(slept) == 2  # sleeps *between* attempts only

    def test_retry_after_hint_overrides_backoff_up_to_its_cap(self, monkeypatch):
        pool, slept = self._pool(
            monkeypatch,
            [
                self._response(503, {"retry-after": "0.3"}, b"shed"),
                self._response(503, {"retry-after": "60"}, b"shed"),
                self._response(503, {}, b"shed"),
                self._response(200, body=b"ok"),
            ],
            max_attempts=4,
            retry_backoff_seconds=0.05,
            retry_backoff_cap_seconds=1.0,
            retry_after_cap_seconds=2.0,
        )
        response = pool.query("SELECT * WHERE { ?s ?p ?o . }")
        assert response.status == 200
        assert pool.shed_retries == 3
        # Hint honored (0.3), adversarial hint clamped (60 -> 2.0), no hint
        # falls back to the exponential schedule for attempt index 2.
        assert slept == [0.3, 2.0, 0.2]

    def test_exhausted_sheds_return_the_last_503(self, monkeypatch):
        pool, _slept = self._pool(
            monkeypatch,
            [self._response(503, {"retry-after": "0"}, b"shed")] * 2,
            max_attempts=2,
        )
        response = pool.query("SELECT * WHERE { ?s ?p ?o . }")
        assert response.status == 503
        assert pool.shed_retries == 2
