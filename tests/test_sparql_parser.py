"""Unit tests for the SPARQL parser and the query AST."""

import pytest

from repro.errors import ParseError
from repro.rdf import IRI, Literal, Variable, YAGO
from repro.sparql import Filter, SelectQuery, TriplePattern, parse_query
from repro.rdf.terms import XSD_INTEGER


class TestParserBasics:
    def test_parses_single_pattern_query(self):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?city . }")
        assert query.projected_names() == ("p",)
        assert len(query.patterns) == 1
        assert query.patterns[0].predicate == YAGO.wasBornIn

    def test_parses_multi_pattern_query_preserving_order(self):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . }"
        )
        assert len(query.patterns) == 3
        assert query.patterns[1].predicate == YAGO.hasAcademicAdvisor

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s y:wasBornIn ?o . }")
        assert query.projection == ()
        assert set(query.projected_names()) == {"s", "o"}

    def test_distinct_and_limit(self):
        query = parse_query("SELECT DISTINCT ?s WHERE { ?s y:wasBornIn ?o } LIMIT 5")
        assert query.distinct
        assert query.limit == 5

    def test_prefix_declaration(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:knows ?o . }"
        )
        assert query.patterns[0].predicate == IRI("http://example.org/knows")

    def test_full_iri_terms(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://example.org/p> <http://example.org/o> . }"
        )
        assert query.patterns[0].object == IRI("http://example.org/o")

    def test_literal_objects(self):
        query = parse_query('SELECT ?s WHERE { ?s y:hasGivenName "Alice" . ?s y:age 30 . }')
        assert query.patterns[0].object == Literal("Alice")
        assert query.patterns[1].object == Literal("30", XSD_INTEGER)

    def test_a_keyword_expands_to_rdf_type(self):
        query = parse_query("SELECT ?s WHERE { ?s a y:Person . }")
        assert query.patterns[0].predicate.value.endswith("#type")

    def test_filter_parsing(self):
        query = parse_query("SELECT ?s WHERE { ?s y:age ?a . FILTER(?a >= 18) }")
        assert len(query.filters) == 1
        assert query.filters[0].operator == ">="

    def test_trailing_dot_is_optional_before_closing_brace(self):
        query = parse_query("SELECT ?s WHERE { ?s y:wasBornIn ?o }")
        assert len(query.patterns) == 1

    def test_example1_from_paper(self, example1_query):
        assert len(example1_query.patterns) == 7
        assert example1_query.projected_names() == ("GivenName", "FamilyName")
        counts = example1_query.variable_occurrences()
        assert counts["p"] == 5  # five triple patterns mention ?p
        assert counts["city"] == 3


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT WHERE { ?s y:wasBornIn ?o . }",
            "SELECT ?s { ?s y:wasBornIn ?o . }",
            "SELECT ?s WHERE { ?s y:wasBornIn ?o .",
            "SELECT ?s WHERE { }",
            "SELECT ?s WHERE { ?s y:wasBornIn ?o . } LIMIT ?x",
            "SELECT ?s WHERE { ?s y:wasBornIn ?o . } extra",
            "SELECT ?s WHERE { ?s y:wasBornIn ?o . FILTER(?o LIKE ?s) }",
        ],
    )
    def test_malformed_queries_raise_parse_error(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_empty_query_raises(self):
        with pytest.raises(ParseError):
            parse_query("")


class TestQueryAst:
    def test_predicates_returns_concrete_predicates_only(self):
        query = parse_query("SELECT ?s WHERE { ?s y:wasBornIn ?o . ?s ?p ?o2 . }")
        assert query.predicates() == frozenset({YAGO.wasBornIn})

    def test_variables_includes_filter_variables(self):
        query = parse_query("SELECT ?s WHERE { ?s y:age ?a . FILTER(?b > 1) }")
        assert "b" in query.variables()

    def test_with_patterns_keeps_only_applicable_filters(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s y:age ?a . ?s y:hasGivenName ?n . FILTER(?a > 1) }"
        )
        reduced = query.with_patterns([query.patterns[1]])
        assert len(reduced.patterns) == 1
        assert reduced.filters == ()

    def test_to_sparql_round_trips_through_parser(self, example1_query):
        text = example1_query.to_sparql()
        reparsed = parse_query(text)
        assert reparsed.patterns == example1_query.patterns
        assert reparsed.projected_names() == example1_query.projected_names()

    def test_query_requires_at_least_one_pattern(self):
        with pytest.raises(ParseError):
            SelectQuery(projection=(), patterns=())

    def test_filter_evaluation(self):
        flt = Filter(Variable("a"), ">=", Literal("18", XSD_INTEGER))
        assert flt.evaluate({"a": Literal("20", XSD_INTEGER)})
        assert not flt.evaluate({"a": Literal("10", XSD_INTEGER)})
        assert not flt.evaluate({})

    def test_filter_rejects_unknown_operator(self):
        with pytest.raises(ParseError):
            Filter(Variable("a"), "LIKE", Literal("x"))

    def test_pattern_variable_names(self):
        pattern = TriplePattern(Variable("s"), YAGO.wasBornIn, Variable("o"))
        assert pattern.variable_names() == frozenset({"s", "o"})
        assert pattern.has_concrete_predicate
