"""Full-system lock-order stress under the lockgraph detector.

Drives every concurrent subsystem at once over one live HTTP endpoint —
query serving (gate read side), tuning epochs (gate write side),
mutation-triggered *and* explicit checkpointing (snapshot I/O lock under
the write gate), and endpoint ``swap_service`` (service lock against
in-flight requests) — while ``lock_graph`` (conftest) records every
project lock acquisition.  The acceptance contract: the run completes
live (answers are served, mutations land, snapshots commit, swaps happen)
and the observed acquisition-order graph is **acyclic** — the fixture's
teardown assertion turns any AB/BA ordering anywhere in these paths into
a test failure with both witness stacks.
"""

from __future__ import annotations

import threading

from repro import (
    AdaptiveConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    SnapshotPolicy,
)
from repro.endpoint import EndpointConfig, SparqlEndpoint
from repro.endpoint.client import sparql_request
from repro.rdf.terms import IRI, Triple

CLIENT_THREADS = 3
REQUESTS_PER_CLIENT = 25
MUTATION_ROUNDS = 18
EXPLICIT_CHECKPOINTS = 4
SERVICE_SWAPS = 4

BASE = "http://stress.example/"


def _triples(count: int, offset: int = 0):
    predicate = IRI(BASE + "links")
    genre = IRI(BASE + "genre")
    rows = []
    for index in range(offset, offset + count):
        subject = IRI(f"{BASE}user{index}")
        target = IRI(f"{BASE}item{index % 7}")
        rows.append(Triple(subject, predicate, target))
        rows.append(Triple(target, genre, IRI(f"{BASE}g{index % 3}")))
    return rows


QUERY = f"SELECT ?u ?g WHERE {{ ?u <{BASE}links> ?p . ?p <{BASE}genre> ?g . }}"


def test_serving_tuning_checkpoint_and_swap_stress_is_lock_order_clean(
    lock_graph, tmp_path
):
    dual = DualStore().load(_triples(60))
    primary = QueryService(
        dual,
        ServiceConfig(
            max_workers=2,
            adaptive=AdaptiveConfig(epoch_queries=8, window_size=32),
            snapshot=SnapshotPolicy(path=tmp_path / "snaps", every_mutations=3),
        ),
    )
    endpoint = SparqlEndpoint(primary, EndpointConfig(max_inflight=4, queue_depth=8))
    endpoint.start()
    spares = []
    errors = []
    served = []
    stop_swapping = threading.Event()

    def client(index: int) -> None:
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                response = sparql_request(endpoint.url, QUERY, timeout=30.0)
                if response.status == 200:
                    served.append(len(response.json()["results"]["bindings"]))
                elif response.status != 503:
                    errors.append(f"client{index}: unexpected status {response.status}")
        except Exception as exc:  # pragma: no cover - failure reporting only
            errors.append(f"client{index}: {exc!r}")

    def mutator() -> None:
        try:
            for round_number in range(MUTATION_ROUNDS):
                batch = _triples(4, offset=1000 + 4 * round_number)
                primary.insert(batch)  # policy checkpoints every 3 mutations
                primary.delete(batch[:2])
        except Exception as exc:  # pragma: no cover
            errors.append(f"mutator: {exc!r}")

    def checkpointer() -> None:
        try:
            for _ in range(EXPLICIT_CHECKPOINTS):
                primary.checkpoint(tmp_path / "explicit")
        except Exception as exc:  # pragma: no cover
            errors.append(f"checkpointer: {exc!r}")

    def swapper() -> None:
        # Repeatedly swap a fresh gated standby in and the primary back,
        # racing the admission path and the counter fold against live
        # clients.  Old services are kept open until the very end —
        # in-flight requests may still be inside them.
        try:
            for swap_number in range(SERVICE_SWAPS):
                standby = QueryService(
                    DualStore().load(_triples(60)),
                    ServiceConfig(max_workers=2, gated=True),
                )
                spares.append(standby)
                endpoint.swap_service(standby)
                endpoint.swap_service(primary)
        except Exception as exc:  # pragma: no cover
            errors.append(f"swapper: {exc!r}")
        finally:
            stop_swapping.set()

    threads = [
        threading.Thread(target=client, args=(index,), name=f"stress-client-{index}", daemon=True)
        for index in range(CLIENT_THREADS)
    ]
    threads.append(threading.Thread(target=mutator, name="stress-mutator", daemon=True))
    threads.append(threading.Thread(target=checkpointer, name="stress-checkpoint", daemon=True))
    threads.append(threading.Thread(target=swapper, name="stress-swapper", daemon=True))
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
            assert not thread.is_alive(), f"{thread.name} wedged (possible deadlock)"
    finally:
        endpoint.stop()
        primary.close()
        for spare in spares:
            spare.close()

    assert errors == [], "\n".join(errors)
    assert served, "no query was ever answered during the stress run"
    assert endpoint.reloads == 2 * SERVICE_SWAPS
    assert primary.last_snapshot is not None, "no snapshot committed during the run"

    # The headline assertion (also re-checked by the fixture's teardown):
    # heavy cross-subsystem concurrency produced a rich acquisition-order
    # graph — and not a single cycle.
    assert lock_graph.edges, "instrumentation observed no nested acquisitions"
    lock_graph.assert_acyclic()
