"""Tests for the serving layer: caches, invalidation, batching, metrics."""

from __future__ import annotations

import pytest

from repro import DualStore, QueryService, ServiceConfig, generate_yago, parse_query, yago_workload
from repro.serve.lru import LRUCache
from repro.serve.metrics import LatencyDigest, ServiceCounters
from repro.serve.plan_cache import PlanCache, QueryPlan
from repro.serve.result_cache import CachedExecution, ResultCache
from repro.sparql.parser import canonical_query_text

ADVISOR_QUERY = """
SELECT ?p WHERE {
  ?p y:wasBornIn ?city .
  ?p y:hasAcademicAdvisor ?a .
  ?a y:wasBornIn ?city .
}
"""


@pytest.fixture(scope="module")
def dataset():
    return generate_yago(target_triples=2500, seed=7)


@pytest.fixture()
def dual(dataset):
    return DualStore().load(dataset.triples)


@pytest.fixture()
def service(dual):
    with QueryService(dual) as svc:
        yield svc


# ---------------------------------------------------------------------- #
# Canonicalization
# ---------------------------------------------------------------------- #
class TestCanonicalQueryText:
    def test_whitespace_and_comments_are_ignored(self):
        spaced = "SELECT ?x  WHERE {\n  ?x y:wasBornIn ?c . # a comment\n}"
        tight = "select ?x where { ?x y:wasBornIn ?c . }"
        assert canonical_query_text(spaced) == canonical_query_text(tight)

    def test_lexical_differences_are_preserved(self):
        a = canonical_query_text("SELECT ?x WHERE { ?x y:wasBornIn ?c . }")
        b = canonical_query_text("SELECT ?x WHERE { ?x y:diedIn ?c . }")
        assert a != b

    def test_iri_and_pname_cannot_collide(self):
        iri = canonical_query_text("SELECT ?x WHERE { ?x <y:p> ?c . }")
        pname = canonical_query_text("SELECT ?x WHERE { ?x y:p ?c . }")
        assert iri != pname


# ---------------------------------------------------------------------- #
# Plan cache
# ---------------------------------------------------------------------- #
class TestPlanCache:
    def test_resolve_hits_on_repeated_text(self, service):
        service.resolve(ADVISOR_QUERY)
        assert service.metrics.counters.plan_cache_misses == 1
        service.resolve("  " + ADVISOR_QUERY.replace("\n", " "))
        assert service.metrics.counters.plan_cache_hits == 1
        assert service.metrics.counters.plan_cache_misses == 1

    def test_resolve_identifies_complex_subquery_once(self, service):
        plan = service.resolve(ADVISOR_QUERY)
        assert plan.complex_subquery is not None
        again = service.resolve(ADVISOR_QUERY)
        assert again is plan  # the very same cached object

    def test_parsed_queries_use_deterministic_key(self, service):
        query = parse_query(ADVISOR_QUERY)
        service.resolve(query)
        assert service.resolve(parse_query(ADVISOR_QUERY)).key == canonical_query_text(query.to_sparql())
        assert service.metrics.counters.plan_cache_hits == 1

    def test_parsed_query_and_its_text_form_share_one_plan(self, service):
        query = parse_query(ADVISOR_QUERY)
        plan_from_ast = service.resolve(query)
        plan_from_text = service.resolve(query.to_sparql())
        assert plan_from_text is plan_from_ast
        assert service.metrics.counters.plan_cache_hits == 1

    def test_mixed_form_submissions_deduplicate_in_a_batch(self, service):
        query = parse_query(ADVISOR_QUERY)
        served = service.run_batch([query, query.to_sparql()])
        assert len(served.records) == 2
        assert service.metrics.counters.executions == 1
        assert served.coalesced == 1

    def test_lru_capacity_eviction(self):
        cache = PlanCache(capacity=2)
        q = parse_query("SELECT ?x WHERE { ?x y:wasBornIn ?c . }")
        for key in ("a", "b", "c"):
            cache.put(QueryPlan(key=key, query=q, complex_subquery=None))
        assert len(cache) == 2
        assert "a" not in cache and "c" in cache

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


# ---------------------------------------------------------------------- #
# Result cache + invalidation contract
# ---------------------------------------------------------------------- #
class TestResultCacheInvalidation:
    def test_second_serve_is_a_cache_hit_and_byte_identical(self, service, fingerprint):
        cold = service.run_query(ADVISOR_QUERY)
        warm = service.run_query(ADVISOR_QUERY)
        assert not cold.record.from_cache
        assert warm.record.from_cache
        assert fingerprint(warm.result) == fingerprint(cold.result)
        assert warm.record.seconds == cold.record.seconds
        assert warm.record.route == cold.record.route

    def test_insert_invalidates(self, service, dataset):
        service.run_query(ADVISOR_QUERY)
        assert len(service.result_cache) == 1
        service.insert([next(iter(dataset.triples))])
        assert len(service.result_cache) == 0
        assert service.metrics.counters.invalidations == 1
        after = service.run_query(ADVISOR_QUERY)
        assert not after.record.from_cache

    def test_transfer_partition_invalidates_and_reroutes(self, service, dual, fingerprint):
        cold = service.run_query(ADVISOR_QUERY)
        assert cold.record.route == "relational"
        for predicate in parse_query(ADVISOR_QUERY).predicates():
            service.transfer_partition(predicate)
        assert len(service.result_cache) == 0
        warm = service.run_query(ADVISOR_QUERY)
        assert not warm.record.from_cache
        assert warm.record.route == "graph"
        assert fingerprint(warm.result) == fingerprint(cold.result)

    def test_evict_partition_invalidates(self, service, dual):
        predicates = sorted(parse_query(ADVISOR_QUERY).predicates(), key=lambda p: p.value)
        for predicate in predicates:
            service.transfer_partition(predicate)
        graph_served = service.run_query(ADVISOR_QUERY)
        assert graph_served.record.route == "graph"
        service.evict_partition(predicates[0])
        assert len(service.result_cache) == 0
        back = service.run_query(ADVISOR_QUERY)
        assert not back.record.from_cache
        assert back.record.route == "relational"

    def test_generation_check_rejects_stale_entries_without_hook(self, service, dual):
        # Plant an entry tagged with an outdated generation directly, modelling
        # a hook-less cache: the lookup-time generation check must reject it.
        cold = service.run_query(ADVISOR_QUERY)
        key = service.resolve(ADVISOR_QUERY).key
        service.result_cache.put(
            CachedExecution(
                key=key,
                result=cold.result,
                record=cold.record,
                generation=dual.generation - 1,
            )
        )
        assert service.result_cache.get(key, dual.generation) is None
        assert service.result_cache.stale_rejections == 1

    def test_load_bumps_generation(self, dataset):
        dual = DualStore()
        assert dual.generation == 0
        dual.load(dataset.triples)
        assert dual.generation == 1

    def test_close_detaches_hook(self, dual):
        service = QueryService(dual)
        service.close()
        dual.insert([])  # must not call into a closed service
        assert service.metrics.counters.invalidations == 0

    def test_closed_service_refuses_to_serve(self, dual):
        service = QueryService(dual)
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError):
            service.run_query(ADVISOR_QUERY)

    def test_consumer_mutation_cannot_corrupt_the_cache(self, service, fingerprint):
        cold = service.run_query(ADVISOR_QUERY)
        pristine = fingerprint(cold.result)
        cold.result.bindings.clear()  # a consumer post-processing in place
        warm = service.run_query(ADVISOR_QUERY)
        assert warm.record.from_cache
        assert fingerprint(warm.result) == pristine
        warm.result.bindings.clear()  # mutating a hit must not corrupt either
        again = service.run_query(ADVISOR_QUERY)
        assert fingerprint(again.result) == pristine

    def test_cache_results_disabled(self, dual):
        with QueryService(dual, ServiceConfig(cache_results=False)) as service:
            service.run_query(ADVISOR_QUERY)
            service.run_query(ADVISOR_QUERY)
            assert service.metrics.counters.result_cache_hits == 0
            assert service.metrics.counters.executions == 2
            assert len(service.result_cache) == 0

    def test_result_cache_lru_eviction(self):
        cache = ResultCache(capacity=1)
        record = object()
        cache.put(CachedExecution(key="a", result=None, record=record, generation=1))
        cache.put(CachedExecution(key="b", result=None, record=record, generation=1))
        assert len(cache) == 1 and "a" not in cache


# ---------------------------------------------------------------------- #
# Batched admission
# ---------------------------------------------------------------------- #
class TestRunBatch:
    def test_one_record_per_submission_with_duplicates(self, service, dataset, fingerprint):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        duplicated = list(batch) + list(batch)  # every query submitted twice
        served = service.run_batch(duplicated)
        assert len(served.records) == len(duplicated)
        assert service.metrics.counters.executions == len({q.to_sparql() for q in batch})
        assert served.coalesced >= len(batch)
        # Submissions sharing an execution still account the same modelled cost.
        for first, second in zip(served.executions, served.executions[len(batch):]):
            assert second.record.seconds == first.record.seconds
            assert fingerprint(second.result) == fingerprint(first.result)

    def test_batch_matches_uncached_loop_byte_for_byte(self, service, dual, dataset, fingerprint):
        workload = yago_workload(dataset)
        batch = workload.batches("random")[0]
        uncached = [dual.run_query(q) for q in batch]
        served = service.run_batch(batch)
        assert len(served) == len(batch)
        for cold, warm in zip(uncached, served):
            assert fingerprint(warm.result) == fingerprint(cold.result)
            assert warm.record.seconds == cold.record.seconds
            assert warm.record.route == cold.record.route
        # Modelled TTI is preserved: caching does not distort the experiments'
        # accounting currency.
        assert served.tti == pytest.approx(sum(r.record.seconds for r in uncached))

    def test_second_pass_is_all_hits(self, service, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        service.run_batch(batch)
        executions_before = service.metrics.counters.executions
        again = service.run_batch(batch)
        assert again.cache_hits == len(batch)
        assert service.metrics.counters.executions == executions_before

    def test_inline_execution_with_single_worker(self, dual, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        with QueryService(dual, ServiceConfig(max_workers=1)) as service:
            served = service.run_batch(batch)
            assert len(served) == len(batch)
            assert service._pool is None  # never spun up a pool

    def test_threaded_equals_inline(self, dual, dataset, fingerprint):
        workload = yago_workload(dataset)
        batch = workload.batches("random")[1]
        with QueryService(dual, ServiceConfig(max_workers=1)) as inline_service:
            inline = inline_service.run_batch(batch)
        with QueryService(dual, ServiceConfig(max_workers=8)) as threaded_service:
            threaded = threaded_service.run_batch(batch)
        for a, b in zip(inline, threaded):
            assert fingerprint(a.result) == fingerprint(b.result)
            assert a.record.seconds == b.record.seconds

    def test_batch_result_adapter(self, service, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        served = service.run_batch(batch)
        adapted = served.batch_result(index=3)
        assert adapted.index == 3
        assert len(adapted) == len(batch)
        assert adapted.tti == pytest.approx(served.tti)

    def test_unloaded_store_raises(self):
        from repro.errors import TuningError

        with QueryService(DualStore()) as service:
            with pytest.raises(TuningError):
                service.run_query(ADVISOR_QUERY)


# ---------------------------------------------------------------------- #
# Admission edge cases: empty batches and all-duplicate batches
# ---------------------------------------------------------------------- #
class TestRunBatchEdgeCases:
    def test_empty_batch_is_a_metrics_noop(self, service):
        served = service.run_batch([])
        assert len(served) == 0
        assert served.cache_hits == 0 and served.coalesced == 0
        assert served.tti == 0.0
        assert isinstance(served.tti, float)
        counters = service.metrics.counters
        # Nothing was admitted, so nothing may be counted — in particular no
        # batch, which would otherwise skew per-batch averages.
        assert counters.batches_served == 0
        assert counters.queries_served == 0
        assert counters.result_cache_hits == 0
        assert counters.result_cache_misses == 0
        assert counters.duplicates_coalesced == 0
        assert service.metrics.queue.current == 0
        assert service.metrics.queue.peak == 0
        assert service.metrics.modelled_latency.count == 0
        assert service._pool is None  # an empty batch must not spin the pool up

    def test_empty_batch_still_requires_a_loaded_store(self):
        from repro.errors import TuningError

        with QueryService(DualStore()) as service:
            with pytest.raises(TuningError):
                service.run_batch([])

    def test_empty_batch_adapts_to_an_empty_batch_result(self, service):
        adapted = service.run_batch([]).batch_result(index=5)
        assert adapted.index == 5
        assert len(adapted) == 0
        assert adapted.tti == 0.0

    def test_all_duplicate_batch_executes_once_and_coalesces_the_rest(self, service, fingerprint):
        served = service.run_batch([ADVISOR_QUERY] * 5)
        assert len(served.records) == 5
        assert served.cache_hits == 0
        assert served.coalesced == 4
        counters = service.metrics.counters
        assert counters.executions == 1
        assert counters.result_cache_misses == 1
        assert counters.duplicates_coalesced == 4
        assert counters.queries_served == 5
        # The single execution went through the queue gauge exactly once.
        assert service.metrics.queue.current == 0
        assert service.metrics.queue.peak == 1
        # Every submission carries the shared execution's accounting.
        baseline = served.executions[0]
        for duplicate in served.executions[1:]:
            assert duplicate.record.from_cache
            assert duplicate.record.seconds == baseline.record.seconds
            assert fingerprint(duplicate.result) == fingerprint(baseline.result)

    def test_all_duplicate_batch_served_again_is_all_cache_hits(self, service):
        service.run_batch([ADVISOR_QUERY] * 3)
        again = service.run_batch([ADVISOR_QUERY] * 3)
        assert again.cache_hits == 3
        assert again.coalesced == 0
        counters = service.metrics.counters
        assert counters.executions == 1  # still only the first execution
        assert counters.result_cache_hits == 3
        assert counters.queries_served == 6


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
class TestServiceMetrics:
    def test_latency_digest_percentiles(self):
        digest = LatencyDigest()
        for value in [5.0, 1.0, 2.0, 4.0, 3.0]:
            digest.observe(value)
        assert digest.count == 5
        assert digest.p50 == 3.0
        assert digest.p95 == 5.0
        assert digest.mean == pytest.approx(3.0)
        with pytest.raises(ValueError):
            digest.percentile(101.0)

    def test_latency_digest_nearest_rank_on_even_counts(self):
        digest = LatencyDigest()
        digest.observe(1.0)
        digest.observe(2.0)
        assert digest.p50 == 1.0  # nearest-rank: ceil(0.5 * 2) = rank 1
        for value in [3.0, 4.0, 5.0, 6.0]:
            digest.observe(value)
        assert digest.p50 == 3.0  # ceil(0.5 * 6) = rank 3
        assert digest.percentile(100.0) == 6.0
        assert digest.percentile(0.0) == 1.0

    def test_empty_digest(self):
        digest = LatencyDigest()
        assert digest.p50 == 0.0 and digest.p95 == 0.0 and digest.mean == 0.0

    def test_empty_digest_every_percentile_defined(self):
        """Regression: percentile() on count=0 must answer 0.0 at every q —
        including the p0/p100 edges — never raise or index off the reservoir."""
        digest = LatencyDigest()
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert digest.percentile(q) == 0.0
        assert digest.p99 == 0.0
        snapshot = digest.as_dict()
        assert snapshot["count"] == 0.0
        assert snapshot["p50"] == snapshot["p95"] == snapshot["p99"] == 0.0

    def test_single_observation_every_percentile_is_it(self):
        """Regression: count=1 answers the one observation for every q —
        p0 must not wrap to ``ordered[-1]`` and p100 must not index past
        the end (both are the same sample here, so pin the rank maths on a
        two-sample digest too)."""
        digest = LatencyDigest()
        digest.observe(7.5)
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert digest.percentile(q) == 7.5
        assert digest.count == 1
        assert digest.as_dict()["p99"] == 7.5

    def test_p0_and_p100_clamp_to_extremes(self):
        digest = LatencyDigest()
        for value in (4.0, 1.0, 3.0, 2.0):
            digest.observe(value)
        assert digest.percentile(0.0) == 1.0  # min, not a wrapped rank 0
        assert digest.percentile(100.0) == 4.0  # max, not one past the end
        with pytest.raises(ValueError):
            digest.percentile(-0.5)
        with pytest.raises(ValueError):
            digest.percentile(100.5)

    def test_p99_property_and_dict_agree(self):
        digest = LatencyDigest()
        for value in range(1, 101):
            digest.observe(float(value))
        assert digest.p99 == 99.0  # nearest rank: ceil(0.99 * 100) = 99
        assert digest.as_dict()["p99"] == digest.p99

    def test_counters_merge_and_rates(self):
        a = ServiceCounters(result_cache_hits=3, result_cache_misses=1)
        b = ServiceCounters(result_cache_hits=1, plan_cache_misses=2)
        merged = a.merge(b)
        assert merged.result_cache_hits == 4
        assert merged.result_cache_misses == 1
        assert merged.result_cache_hit_rate == pytest.approx(0.8)
        assert ServiceCounters().result_cache_hit_rate == 0.0

    def test_endpoint_gauges_merge_as_max_not_sum(self):
        """endpoint_requests/shed_load are mirrored by assignment from the
        admission gate, so two snapshots of one endpoint both carry the full
        total — merging must take the max, like stale_rejections."""
        before = ServiceCounters(endpoint_requests=10, shed_load=2, executions=4)
        after = ServiceCounters(endpoint_requests=25, shed_load=3, executions=6)
        merged = before.merge(after)
        assert merged.endpoint_requests == 25
        assert merged.shed_load == 3
        assert merged.executions == 10  # ordinary counters still sum
        assert {"endpoint_requests", "shed_load"} <= ServiceCounters.MIRRORED_GAUGES

    def test_service_snapshot_after_traffic(self, service, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        service.run_batch(batch)
        service.run_batch(batch)
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["batches_served"] == 2
        assert snapshot["result_cache_hit_rate"] > 0.0
        assert snapshot["modelled_latency"]["count"] == 2 * len(batch)
        assert snapshot["queue"]["current"] == 0
        assert snapshot["queue"]["peak"] >= 1
        assert snapshot["wall_latency"]["p95"] >= snapshot["wall_latency"]["p50"]


# ---------------------------------------------------------------------- #
# Workload serving trace
# ---------------------------------------------------------------------- #
class TestWorkloadStream:
    def test_stream_repeats_the_workload(self, dataset):
        workload = yago_workload(dataset)
        trace = workload.stream(order="ordered", repeats=3)
        assert len(trace) == 3 * len(workload)
        assert trace[: len(workload)] == workload.ordered()

    def test_stream_rejects_bad_repeats(self, dataset):
        from repro.errors import WorkloadError

        workload = yago_workload(dataset)
        with pytest.raises(WorkloadError):
            workload.stream(repeats=0)

    def test_stream_rejects_unknown_order(self, dataset):
        from repro.errors import WorkloadError

        workload = yago_workload(dataset)
        with pytest.raises(WorkloadError):
            workload.stream(order="orderd")


# ---------------------------------------------------------------------- #
# Serving a sharded relational backend
# ---------------------------------------------------------------------- #
class TestShardedServing:
    @pytest.fixture()
    def sharded_dual(self, dataset):
        from repro import ShardingConfig

        return DualStore(
            shards=4, sharding=ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=16)
        ).load(dataset.triples)

    def test_shard_metrics_absent_on_unsharded_backend(self, service):
        assert service.shard_metrics() is None

    def test_shard_metrics_exposed_per_shard(self, sharded_dual, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        with QueryService(sharded_dual) as service:
            service.run_batch(batch)
            snapshot = service.shard_metrics()
            assert snapshot is not None and len(snapshot) == 4
            assert sum(entry["probes"] for entry in snapshot) > 0
            assert all(entry["queue_depth"] == 0.0 for entry in snapshot)
            for entry in snapshot:
                assert {"busy_seconds", "mean_probe_seconds", "max_probe_seconds", "peak_queue_depth"} <= set(entry)

    def test_sharded_batch_matches_unsharded_loop(self, sharded_dual, dual, dataset, fingerprint):
        workload = yago_workload(dataset)
        batch = workload.batches("random")[0]
        uncached = [dual.run_query(q) for q in batch]
        with QueryService(sharded_dual) as service:
            served = service.run_batch(batch)
        for cold, warm in zip(uncached, served):
            assert fingerprint(warm.result) == fingerprint(cold.result)
            assert warm.record.route == cold.record.route
            assert warm.result.counters.as_dict() == cold.result.counters.as_dict()

    def test_scatter_pool_lifecycle_follows_the_service(self, sharded_dual, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        service = QueryService(sharded_dual)
        service.run_batch(batch)  # spins up both pools
        backend = sharded_dual.relational
        assert service._scatter_pool is not None
        assert backend._scatter_pool is service._scatter_pool
        service.close()
        assert service._scatter_pool is None
        assert backend._scatter_pool is None

    def test_run_query_alone_attaches_the_scatter_pool(self, sharded_dual):
        with QueryService(sharded_dual) as service:
            service.run_query(ADVISOR_QUERY)  # no batch, still scatters
            assert service._scatter_pool is not None
            assert sharded_dual.relational._scatter_pool is service._scatter_pool
            assert service._pool is None  # the batch pool stays down

    def test_cached_results_keep_their_scatter_breakdown(self, sharded_dual):
        with QueryService(sharded_dual) as service:
            cold = service.run_query(ADVISOR_QUERY)
            warm = service.run_query(ADVISOR_QUERY)
            assert warm.record.from_cache
            assert cold.result.scatter is not None
            assert warm.result.scatter == cold.result.scatter

    def test_second_service_does_not_clobber_the_first_services_scatter_pool(
        self, sharded_dual, dataset
    ):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        backend = sharded_dual.relational
        with QueryService(sharded_dual) as first:
            first.run_batch(batch)
            owner_pool = backend._scatter_pool
            assert owner_pool is first._scatter_pool is not None
            with QueryService(sharded_dual) as second:
                second.run_batch(batch)
                # The first attachment wins; the second serves without one.
                assert backend._scatter_pool is owner_pool
                assert second._scatter_pool is None
            # Closing the second service must leave the first's pool working.
            assert backend._scatter_pool is owner_pool
            again = first.run_batch(batch)
            assert len(again) == len(batch)
        assert backend._scatter_pool is None  # released by its owner

    def test_single_worker_service_never_attaches_a_scatter_pool(self, sharded_dual, dataset):
        workload = yago_workload(dataset)
        batch = workload.batches("ordered")[0]
        with QueryService(sharded_dual, ServiceConfig(max_workers=1)) as service:
            service.run_batch(batch)
            assert service._scatter_pool is None
            assert sharded_dual.relational._scatter_pool is None


# ---------------------------------------------------------------------- #
# LRU cache: falsy values are real entries
# ---------------------------------------------------------------------- #
class TestLRUCacheFalsyValues:
    """Regression: ``LRUCache.get`` used an ``is not None`` check on the
    cached value, so a legitimately-falsy entry (0, "", empty list) was
    reported as a miss *and* never got its recency bumped — a hot falsy
    entry aged out of the cache under capacity pressure."""

    def test_falsy_values_are_hits(self):
        cache = LRUCache(capacity=4)
        for key, value in (("zero", 0), ("empty", ""), ("nothing", []), ("false", False)):
            cache.put(key, value)
            assert cache.get(key) == value
            assert key in cache

    def test_missing_key_is_still_a_miss(self):
        cache = LRUCache(capacity=4)
        assert cache.get("absent") is None

    def test_falsy_entry_survives_capacity_pressure_after_a_hit(self):
        cache = LRUCache(capacity=2)
        cache.put("falsy", 0)
        cache.put("other", 1)
        # The hit must move "falsy" to the recent end ...
        assert cache.get("falsy") == 0
        # ... so the next insert evicts "other", not the falsy entry.
        cache.put("newcomer", 2)
        assert cache.get("falsy") == 0
        assert cache.get("other") is None
        assert len(cache) == 2
