"""End-to-end integration tests across the whole stack.

These tests exercise the full pipeline — synthetic dataset → workload →
dual-store structure → DOTIL tuning → query answers — and assert the two
properties that make the reproduction trustworthy:

1. *Correctness*: every routing decision (relational, graph, split) returns
   exactly the same answers as the relational-only baseline.
2. *Benefit*: once tuned, the dual-store structure spends less (modelled)
   time than the relational-only baseline on complex-query workloads.
"""

import pytest

from repro.core import (
    Dotil,
    DotilConfig,
    DualStore,
    RDBGDB,
    RDBOnly,
    run_workload,
)
from repro.graphstore import GraphStore
from repro.relstore import RelationalStore, SQLiteBackend
from repro.workload import generate_watdiv, watdiv_workload


class TestCrossEngineAgreement:
    """The three query engines (python relational, SQLite SQL, graph traversal)
    must agree on every workload query."""

    @pytest.fixture(scope="class")
    def engines(self, yago_dataset):
        relational = RelationalStore()
        relational.load(yago_dataset.triples)
        graph = GraphStore(storage_budget=None)
        for predicate in yago_dataset.triples.predicates:
            graph.load_partition(predicate, relational.partition(predicate))
        sqlite = SQLiteBackend()
        sqlite.insert_triples(yago_dataset.triples)
        return relational, graph, sqlite

    def test_all_yago_queries_agree(self, engines, yago_queries):
        relational, graph, sqlite = engines
        for entry in yago_queries.queries:
            query = entry.query
            relational_rows = relational.execute(query).distinct_rows()
            graph_rows = graph.execute(query).distinct_rows()
            _, sql_rows = sqlite.execute_select(query)
            assert graph_rows == relational_rows, entry.template
            assert set(map(repr, sql_rows)) == set(map(repr, relational_rows)), entry.template


class TestDualStoreLifecycle:
    def test_full_lifecycle_on_watdiv(self):
        dataset = generate_watdiv(2500, seed=21)
        workload = watdiv_workload(dataset, family="complex", seed=3)
        batches = workload.batches("ordered")

        dual = DualStore(config=DotilConfig(prob=1.0))
        dual.load(dataset.triples)
        tuner = Dotil(dual)

        baseline = RelationalStore()
        baseline.load(dataset.triples)

        total_dual = 0.0
        total_baseline = 0.0
        for batch in batches:
            complex_subqueries = []
            for query in batch:
                processed = dual.run_query(query)
                expected = baseline.execute(query).distinct_rows()
                assert processed.result.distinct_rows() == expected
                total_dual += processed.seconds
                total_baseline += baseline.execute(query).seconds
                identified = dual.identify(query)
                if identified is not None:
                    complex_subqueries.append(identified)
            tuner.tune(complex_subqueries)

        # After the cold first batch the tuner has filled the graph store, so the
        # dual-store total must come in below the relational-only total.
        assert dual.graph.used_capacity() > 0
        assert dual.graph.used_capacity() <= dual.storage_budget
        assert total_dual < total_baseline

    def test_inserts_are_visible_to_queries_without_retuning(self, yago_dataset):
        from repro.rdf import Triple, YAGO
        from repro.sparql import parse_query

        dual = DualStore().load(yago_dataset.triples)
        new_person = YAGO.term("integration_test_person")
        city = yago_dataset.entities["city"][0]
        dual.insert([Triple(new_person, YAGO.term("wasBornIn"), city)])
        query = parse_query("SELECT ?c WHERE { <%s> y:wasBornIn ?c . }" % new_person.value)
        assert len(dual.run_query(query).result) == 1


class TestVariantConsistency:
    def test_gdb_and_only_answer_counts_match_per_query(self, yago_dataset, yago_queries):
        batches = yago_queries.batches("random", seed=5)
        only = RDBOnly().load(yago_dataset.triples)
        gdb = RDBGDB(config=DotilConfig(prob=1.0)).load(yago_dataset.triples)
        only_result = run_workload(only, batches)
        gdb_result = run_workload(gdb, batches)
        only_counts = [r.result_count for b in only_result.batches for r in b.records]
        gdb_counts = [r.result_count for b in gdb_result.batches for r in b.records]
        assert only_counts == gdb_counts
