"""Unit tests for namespaces and prefix maps."""

import pytest

from repro.errors import TermError
from repro.rdf import DEFAULT_PREFIXES, IRI, Namespace, PrefixMap, YAGO


class TestNamespace:
    def test_attribute_and_item_access_mint_iris(self):
        ns = Namespace("http://example.org/ns/")
        assert ns.thing == IRI("http://example.org/ns/thing")
        assert ns["other thing".replace(" ", "_")] == IRI("http://example.org/ns/other_thing")

    def test_term_rejects_empty_local_name(self):
        with pytest.raises(TermError):
            Namespace("http://example.org/").term("")

    def test_contains_and_local_name(self):
        ns = Namespace("http://example.org/")
        iri = ns.widget
        assert iri in ns
        assert ns.local_name(iri) == "widget"
        assert "http://other.org/x" not in ns

    def test_local_name_outside_namespace_raises(self):
        with pytest.raises(TermError):
            Namespace("http://example.org/").local_name("http://other.org/x")

    def test_empty_base_rejected(self):
        with pytest.raises(TermError):
            Namespace("")

    def test_equality_and_hash(self):
        assert Namespace("http://x.org/") == Namespace("http://x.org/")
        assert hash(Namespace("http://x.org/")) == hash(Namespace("http://x.org/"))


class TestPrefixMap:
    def test_expand_known_prefix(self):
        assert DEFAULT_PREFIXES.expand("y:wasBornIn") == YAGO.wasBornIn

    def test_expand_unknown_prefix_raises(self):
        with pytest.raises(TermError):
            PrefixMap().expand("nope:thing")

    def test_expand_requires_colon(self):
        with pytest.raises(TermError):
            DEFAULT_PREFIXES.expand("wasBornIn")

    def test_compact_prefers_longest_matching_base(self):
        prefixes = PrefixMap({"ex": "http://example.org/", "exd": "http://example.org/deep/"})
        assert prefixes.compact("http://example.org/deep/a") == "exd:a"
        assert prefixes.compact("http://example.org/a") == "ex:a"

    def test_compact_falls_back_to_full_iri(self):
        assert PrefixMap().compact("http://nowhere.org/x") == "http://nowhere.org/x"

    def test_bind_accepts_strings_and_namespaces(self):
        prefixes = PrefixMap()
        prefixes.bind("a", "http://a.org/")
        prefixes.bind("b", Namespace("http://b.org/"))
        assert "a" in prefixes and "b" in prefixes
        assert len(prefixes) == 2

    def test_copy_is_independent(self):
        original = PrefixMap({"ex": "http://example.org/"})
        clone = original.copy()
        clone.bind("new", "http://new.org/")
        assert "new" not in original
        assert "new" in clone

    def test_default_prefixes_cover_datasets(self):
        for prefix in ("y", "rdf", "rdfs", "xsd", "wsdbm", "bio"):
            assert prefix in DEFAULT_PREFIXES
