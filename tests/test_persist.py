"""Tests for the durable snapshot & warm-restart subsystem (repro.persist).

Two properties carry the whole feature:

1. **Round-trip fidelity** — a restored ``DualStore`` (and a restored
   ``QueryService``) is execution-equivalent to the live one: byte-identical
   bindings, bit-identical :class:`~repro.cost.counters.WorkCounters`,
   identical modelled seconds, routes, generation, placement, and
   statistics — across every template family of all three datasets,
   unsharded and sharded.
2. **Crash consistency** — a snapshot interrupted at *any* write step leaves
   either the previous complete snapshot or a loud
   :class:`~repro.errors.SnapshotError`; a restore never half-loads.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import (
    AdaptiveConfig,
    Dotil,
    DotilConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    SnapshotPolicy,
    bio2rdf_workload,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    load_snapshot,
    read_manifest,
    watdiv_workload,
    yago_workload,
)
from repro.errors import SnapshotError, SnapshotIntegrityError
from repro.persist import FORMAT_VERSION, dataset_fingerprint, list_snapshots
from repro.persist import snapshot as snapshot_module
from repro.relstore.sharded import ShardingConfig

TUNER_CONFIG = DotilConfig(r_bg=0.2, prob=1.0, gamma=0.7, lam=4.5)

#: Aggressive skew settings so the sharded round trip covers subject-sharded
#: (promoted mega-predicate) placement as well.
AGGRESSIVE = ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=16)


def assert_identical(live, restored, context: str) -> None:
    """Byte-identical bindings (content *and* order) plus bit-identical work."""
    assert restored.variables == live.variables, f"{context}: projected variables diverged"
    assert restored.bindings == live.bindings, f"{context}: bindings diverged"
    assert restored.counters.as_dict() == live.counters.as_dict(), f"{context}: work diverged"
    assert restored.seconds == live.seconds, f"{context}: modelled seconds diverged"


# --------------------------------------------------------------------------- #
# Workloads covering every template family of all three datasets
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def family_workloads():
    rng = random.Random(77)
    watdiv = generate_watdiv(target_triples=2200, seed=23)
    cases = []
    for family in ("linear", "star", "snowflake", "complex"):
        workload = watdiv_workload(watdiv, family=family, seed=rng.randrange(10_000))
        cases.append((f"watdiv-{family}", watdiv.triples, workload.randomized(seed=rng.randrange(10_000))))
    yago = generate_yago(target_triples=1800, seed=11)
    cases.append(("yago-complex", yago.triples, yago_workload(yago, seed=5).randomized()))
    bio = generate_bio2rdf(target_triples=1800, seed=13)
    cases.append(("bio2rdf-mixed", bio.triples, bio2rdf_workload(bio, seed=9).randomized()))
    return cases


def _tuned_dual(triples, queries, **dual_kwargs) -> DualStore:
    """A loaded dual store with some partitions transferred (non-trivial
    placement, non-zero generation — the state worth snapshotting)."""
    dual = DualStore(TUNER_CONFIG, **dual_kwargs).load(triples)
    transferable = sorted({p for q in queries for p in q.predicates()}, key=lambda p: p.value)
    for predicate in transferable:
        size = dual.relational.partition_size(predicate)
        if size and dual.graph.fits(size):
            dual.transfer_partition(predicate)
    return dual


# --------------------------------------------------------------------------- #
# Round-trip fidelity: DualStore, unsharded and sharded
# --------------------------------------------------------------------------- #
def test_restored_dualstore_is_execution_equivalent_for_every_family(family_workloads, tmp_path):
    for label, triples, queries in family_workloads:
        dual = _tuned_dual(triples, queries)
        live = [dual.run_query(q) for q in queries]
        root = tmp_path / label
        manifest = dual.snapshot(root)
        restored = DualStore.restore(root)

        assert restored.generation == dual.generation
        assert restored.design.in_graph_store == dual.design.in_graph_store
        assert restored.design.partition_sizes == dual.design.partition_sizes
        assert restored.design.storage_budget == dual.design.storage_budget
        assert restored.graph.partition_sizes() == dual.graph.partition_sizes()
        assert restored.graph.storage_budget == dual.graph.storage_budget
        assert restored.transfer_log == dual.transfer_log
        assert restored.config == dual.config
        assert (
            restored.relational.statistics().to_payload()
            == dual.relational.statistics().to_payload()
        )
        assert manifest.format_version == FORMAT_VERSION
        assert manifest.triple_count == len(dual.relational)

        for index, query in enumerate(queries):
            warm = restored.run_query(query)
            assert warm.record.route == live[index].record.route, f"{label}[{index}]"
            assert_identical(live[index].result, warm.result, f"{label}[{index}]")
            assert warm.record.seconds == live[index].record.seconds


@pytest.mark.parametrize("shards", (1, 4))
def test_restored_sharded_dualstore_preserves_placement_and_answers(
    shards, family_workloads, tmp_path
):
    for label, triples, queries in family_workloads:
        dual = _tuned_dual(triples, queries, shards=shards, sharding=AGGRESSIVE)
        live = [dual.run_query(q) for q in queries]
        root = tmp_path / f"{label}-n{shards}"
        dual.snapshot(root)
        restored = DualStore.restore(root)

        backend, warm_backend = dual.relational, restored.relational
        assert warm_backend.shard_count == backend.shard_count
        assert warm_backend._placement == backend._placement
        assert warm_backend.subject_sharded_predicates() == backend.subject_sharded_predicates()
        assert [len(t) for t in warm_backend._tables] == [len(t) for t in backend._tables]

        for index, query in enumerate(queries):
            warm = restored.run_query(query)
            assert warm.record.route == live[index].record.route, f"{label}[{index}] N={shards}"
            assert_identical(live[index].result, warm.result, f"{label}[{index}] N={shards}")


def test_dataset_fingerprint_is_layout_invariant(family_workloads, tmp_path):
    """Same logical dataset → same manifest fingerprint, unsharded or N=4."""
    _, triples, queries = family_workloads[0]
    flat = DualStore(TUNER_CONFIG).load(triples)
    sharded = DualStore(TUNER_CONFIG, shards=4, sharding=AGGRESSIVE).load(triples)
    assert dataset_fingerprint(flat.relational) == dataset_fingerprint(sharded.relational)
    flat.snapshot(tmp_path / "flat")
    sharded.snapshot(tmp_path / "sharded")
    assert (
        read_manifest(tmp_path / "flat").dataset_fingerprint
        == read_manifest(tmp_path / "sharded").dataset_fingerprint
    )


# --------------------------------------------------------------------------- #
# Round-trip fidelity: the serving layer (caches, adaptive state)
# --------------------------------------------------------------------------- #
def test_restored_service_serves_identically_with_adaptive_state(tmp_path):
    dataset = generate_watdiv(target_triples=2500, seed=7)
    batch = watdiv_workload(dataset, family="snowflake", seed=19).ordered()
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    root = tmp_path / "serve"
    config = ServiceConfig(
        adaptive=AdaptiveConfig(
            epoch_queries=0, tuner_factory=lambda d: Dotil(d, TUNER_CONFIG)
        ),
        snapshot=SnapshotPolicy(path=root, every_mutations=1),
    )
    with QueryService(dual, config) as live:
        live.run_batch(batch)
        epoch = live.tune_now()
        assert epoch.moves > 0
        # The epoch's single generation bump crossed every_mutations=1, so
        # the post-epoch checkpoint fired on its own.
        assert live.metrics.counters.snapshots_taken == 1
        assert live.last_snapshot is not None
        live.checkpoint()  # explicit checkpoint after the post-epoch serves
        live_batch = live.run_batch(batch)
        live_metrics = live.adaptive_metrics()
        live_qtable = live.adaptive.tuner.qtable.to_payload()
        live_rng = live.adaptive.tuner._rng.getstate()
        live_window = live.adaptive.window.snapshot_state()

        restored = QueryService.restore(root, config)
        try:
            warm_batch = restored.run_batch(batch)
            assert warm_batch.tti == live_batch.tti
            for live_exec, warm_exec in zip(live_batch, warm_batch):
                assert warm_exec.result.bindings == live_exec.result.bindings
                assert (
                    warm_exec.result.counters.as_dict() == live_exec.result.counters.as_dict()
                )
                assert warm_exec.record.route == live_exec.record.route
            # Adaptive state came back: window, epoch metrics, Q-state, RNG.
            warm_metrics = restored.adaptive_metrics()
            for key in ("epochs", "moves_applied", "import_seconds", "evict_seconds"):
                assert warm_metrics[key] == live_metrics[key]
            assert restored.adaptive.tuner.qtable.to_payload() == live_qtable
            assert restored.adaptive.tuner._rng.getstate() == live_rng
            warm_window = restored.adaptive.window.snapshot_state()
            assert warm_window["entries"] == live_window["entries"]
            assert warm_window["harvested"] == live_window["harvested"]
        finally:
            restored.close()


def test_restore_without_adaptive_config_ignores_adaptive_extras(tmp_path):
    dataset = generate_yago(target_triples=1500, seed=3)
    batch = yago_workload(dataset, seed=5).ordered()[:6]
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    root = tmp_path / "plain"
    config = ServiceConfig(
        adaptive=AdaptiveConfig(epoch_queries=0, tuner_factory=lambda d: Dotil(d, TUNER_CONFIG))
    )
    with QueryService(dual, config) as live:
        live.run_batch(batch)
        live.tune_now()
        live.checkpoint(path=root)
        live_batch = live.run_batch(batch)
    restored = QueryService.restore(root)  # default config: no adaptive layer
    try:
        assert restored.adaptive is None
        warm_batch = restored.run_batch(batch)
        assert warm_batch.tti == live_batch.tti
    finally:
        restored.close()


def test_checkpoint_without_policy_or_path_is_an_error(tmp_path):
    dataset = generate_yago(target_triples=1200, seed=3)
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    with QueryService(dual) as service:
        with pytest.raises(RuntimeError, match="no snapshot path"):
            service.checkpoint()
        service.checkpoint(path=tmp_path / "explicit")  # explicit path works
        assert service.metrics.counters.snapshots_taken == 1


# --------------------------------------------------------------------------- #
# Crash consistency: kill the writer at every step
# --------------------------------------------------------------------------- #
@pytest.fixture()
def crashable_store(tmp_path):
    dataset = generate_yago(target_triples=1500, seed=3)
    queries = yago_workload(dataset, seed=5).ordered()[:6]
    dual = _tuned_dual(dataset.triples, queries)
    return dual, queries, tmp_path / "crash"


def _count_calls_until(monkeypatch, target_name, fail_after):
    """Make ``snapshot_module.<target_name>`` raise once ``fail_after`` calls
    have succeeded; returns the call counter (a one-element list)."""
    original = getattr(snapshot_module, target_name)
    calls = [0]

    def wrapper(*args, **kwargs):
        if calls[0] >= fail_after:
            raise OSError("injected crash: disk vanished")
        calls[0] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(snapshot_module, target_name, wrapper)
    return calls


#: One injection point per durable step: each data file write, the manifest
#: write, and the CURRENT flip (6 file writes: 4 data + manifest + pointer).
@pytest.mark.parametrize("fail_after_writes", [0, 1, 2, 3, 4, 5])
def test_crash_mid_write_preserves_previous_snapshot(
    crashable_store, monkeypatch, fail_after_writes
):
    """Property: whatever write the crash lands on, the committed snapshot
    stays the previous complete one — same generation, fully loadable."""
    dual, queries, root = crashable_store
    first = dual.snapshot(root)
    live = [dual.run_query(q) for q in queries]

    dual.insert([])  # bump the generation so the second snapshot differs
    _count_calls_until(monkeypatch, "_write_file", fail_after_writes)
    with pytest.raises(OSError, match="injected crash"):
        dual.snapshot(root)
    monkeypatch.undo()

    manifest = read_manifest(root)
    assert manifest.name == first.name
    assert manifest.generation == first.generation
    restored = DualStore.restore(root)
    assert restored.generation == first.generation
    for index, query in enumerate(queries):
        assert_identical(live[index].result, restored.run_query(query).result, f"crash[{index}]")
    # The aborted attempt left no committed snapshot directory behind.
    assert list_snapshots(root) == [first.name]


def test_crash_at_the_commit_point_preserves_previous_snapshot(crashable_store, monkeypatch):
    dual, queries, root = crashable_store
    first = dual.snapshot(root)
    dual.insert([])

    def failing_publish(*args, **kwargs):
        raise OSError("injected crash at commit")

    monkeypatch.setattr(snapshot_module, "_publish_current", failing_publish)
    with pytest.raises(OSError, match="injected crash at commit"):
        dual.snapshot(root)
    monkeypatch.undo()
    assert read_manifest(root).name == first.name
    assert DualStore.restore(root).generation == first.generation


def test_crash_before_any_commit_fails_loudly_not_half_loaded(crashable_store, monkeypatch):
    dual, _queries, root = crashable_store
    monkeypatch.setattr(
        snapshot_module,
        "_publish_current",
        lambda *a, **k: (_ for _ in ()).throw(OSError("injected crash at commit")),
    )
    with pytest.raises(OSError):
        dual.snapshot(root)
    monkeypatch.undo()
    with pytest.raises(SnapshotError, match="no committed snapshot"):
        DualStore.restore(root)


def test_corrupted_data_file_raises_integrity_error(crashable_store):
    dual, _queries, root = crashable_store
    manifest = dual.snapshot(root)
    target = root / manifest.name / "relational.json"
    payload = json.loads(target.read_text())
    payload["rows"] = payload["rows"][:-3]  # silently drop one row
    target.write_text(json.dumps(payload, separators=(",", ":")))
    with pytest.raises(SnapshotIntegrityError, match="corrupt"):
        DualStore.restore(root)


def test_unsupported_format_version_raises_integrity_error(crashable_store):
    dual, _queries, root = crashable_store
    manifest = dual.snapshot(root)
    target = root / manifest.name / "MANIFEST.json"
    payload = json.loads(target.read_text())
    payload["format_version"] = FORMAT_VERSION + 1
    target.write_text(json.dumps(payload))
    with pytest.raises(SnapshotIntegrityError, match="not supported"):
        DualStore.restore(root)


def test_missing_root_raises_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError, match="no snapshot root"):
        load_snapshot(tmp_path / "never-written")


def test_retention_prunes_old_snapshots_but_keeps_current(crashable_store):
    dual, _queries, root = crashable_store
    names = []
    for _ in range(4):
        dual.insert([])
        names.append(dual.snapshot(root, keep=2).name)
    remaining = list_snapshots(root)
    assert len(remaining) == 2
    assert names[-1] in remaining
    assert read_manifest(root).name == names[-1]
    DualStore.restore(root)  # the retained pair stays loadable


# --------------------------------------------------------------------------- #
# Review regressions
# --------------------------------------------------------------------------- #
def test_graph_replica_lagging_the_master_copy_restores_verbatim(tmp_path):
    """A resident graph partition is the partition *as transferred*; inserts
    land in the relational master only.  The snapshot must carry the replica
    itself — refeeding it from the restored master would silently grow it,
    change graph-routed answers, and break the budget accounting."""
    from repro import IRI, Triple

    dataset = generate_yago(target_triples=1500, seed=3)
    queries = yago_workload(dataset, seed=5).ordered()[:6]
    dual = _tuned_dual(dataset.triples, queries)
    resident = sorted(dual.graph.loaded_predicates, key=lambda p: p.value)
    assert resident, "need at least one transferred partition"
    predicate = resident[0]
    replica_size = dual.graph.partition_size(predicate)

    # Grow the master partition after the transfer: the replica must lag.
    fresh = [
        Triple(IRI(f"http://example.org/late/{i}"), predicate, IRI(f"http://example.org/o/{i}"))
        for i in range(7)
    ]
    dual.insert(fresh)
    assert dual.relational.partition_size(predicate) == replica_size + 7
    assert dual.graph.partition_size(predicate) == replica_size

    live = [dual.run_query(q) for q in queries]
    root = tmp_path / "lagging"
    dual.snapshot(root)
    restored = DualStore.restore(root)

    assert restored.graph.partition_size(predicate) == replica_size
    assert restored.graph.partition_sizes() == dual.graph.partition_sizes()
    assert restored.graph.used_capacity() == dual.graph.used_capacity()
    for index, query in enumerate(queries):
        warm = restored.run_query(query)
        assert warm.record.route == live[index].record.route, f"lagging[{index}]"
        assert_identical(live[index].result, warm.result, f"lagging[{index}]")


def test_writer_thread_reacquiring_write_raises_not_deadlocks():
    """Symmetric with the read-side re-entrancy fix: a tuner epoch callback
    that *mutates* through the service (insert/transfer/checkpoint) must get
    a TuningError, not a silent deadlock."""
    from repro.errors import TuningError
    from repro.serve.adaptive import ReadWriteLock

    lock = ReadWriteLock()
    with lock.write_locked():
        with pytest.raises(TuningError, match="re-entrant write acquisition"):
            lock.acquire_write()
    with lock.write_locked():  # released cleanly
        pass


def test_adhoc_checkpoint_does_not_quench_the_policy_trigger(tmp_path):
    """An explicit checkpoint(path=...) to a side path must not reset the
    configured policy's mutation counter — otherwise the policy path falls
    arbitrarily behind the state it is meant to protect."""
    dataset = generate_yago(target_triples=1200, seed=3)
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    policy_root = tmp_path / "policy"
    adhoc_root = tmp_path / "adhoc"
    config = ServiceConfig(snapshot=SnapshotPolicy(path=policy_root, every_mutations=2))
    with QueryService(dual, config) as service:
        service.insert([])  # 1 of 2 pending mutations
        service.checkpoint(path=adhoc_root)  # side backup: must not reset
        service.insert([])  # 2 of 2 → the policy trigger must fire now
        assert policy_root.exists(), "policy snapshot never fired after an ad-hoc checkpoint"
        assert read_manifest(policy_root).generation == dual.generation
        # A checkpoint *on* the policy path does reset the trigger.
        service.checkpoint()
        service.insert([])
        before = read_manifest(policy_root).generation
        assert before == dual.generation - 1  # one pending mutation, below threshold


def test_stale_tmp_artifacts_are_swept_on_the_next_write(crashable_store):
    """A hard crash can leak `.tmp-*` dirs and `CURRENT.tmp-*` pointer files
    that retention never matches; the next writer sweeps them."""
    dual, _queries, root = crashable_store
    dual.snapshot(root)
    orphan_dir = root / ".tmp-deadbeef"
    orphan_dir.mkdir()
    (orphan_dir / "relational.json").write_text("{}")
    orphan_pointer = root / "CURRENT.tmp-deadbeef"
    orphan_pointer.write_text("snapshot-99999999-g0\n")
    dual.insert([])
    dual.snapshot(root)
    assert not orphan_dir.exists()
    assert not orphan_pointer.exists()
    DualStore.restore(root)


def test_fingerprint_is_cached_until_the_content_changes(tmp_path):
    """Placement-only checkpoints must not re-render the whole dataset: the
    fingerprint recomputes only when the backend's content token moves."""
    from repro import Triple, IRI

    dataset = generate_yago(target_triples=1200, seed=3)
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    backend = dual.relational
    calls = {"n": 0}
    original = backend.predicates

    def counting_predicates():
        calls["n"] += 1
        return original()

    backend.predicates = counting_predicates
    try:
        first = dataset_fingerprint(backend)
        passes_after_first = calls["n"]
        assert dataset_fingerprint(backend) == first
        assert calls["n"] == passes_after_first, "unchanged content recomputed the fingerprint"
        # A data mutation moves the token and forces a recompute.
        dual.insert([Triple(IRI("http://example.org/s"), IRI("http://example.org/p"), IRI("http://example.org/o"))])
        second = dataset_fingerprint(backend)
        assert second != first
        assert calls["n"] > passes_after_first
    finally:
        backend.predicates = original


def test_failed_policy_checkpoint_does_not_poison_mutations(tmp_path, monkeypatch):
    """A policy-triggered commit that fails (full/unwritable disk) must be
    recorded, not raised out of the mutation that triggered it — the
    mutation already committed, and later mutations must keep working."""
    dataset = generate_yago(target_triples=1200, seed=3)
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    root = tmp_path / "fragile"
    config = ServiceConfig(snapshot=SnapshotPolicy(path=root, every_mutations=1))
    with QueryService(dual, config) as service:
        generation_before = dual.generation

        def failing_commit(*args, **kwargs):
            raise OSError("injected: disk full")

        monkeypatch.setattr("repro.serve.service.commit_snapshot", failing_commit)
        seconds = service.insert([])  # the mutation itself must succeed
        assert seconds >= 0.0
        assert dual.generation == generation_before + 1
        assert service.metrics.counters.snapshot_failures == 1
        assert isinstance(service.last_snapshot_error, OSError)
        # The trigger was consumed at capture time: the next mutation does
        # not re-attempt the doomed write on the spot...
        service.insert([])
        assert service.metrics.counters.snapshot_failures == 2  # every_mutations=1 re-arms
        monkeypatch.undo()
        # ...and once the disk recovers, the next window commits fine.
        service.insert([])
        assert service.metrics.counters.snapshots_taken == 1
        assert read_manifest(root).generation == dual.generation
        # The explicit path still propagates.
        monkeypatch.setattr("repro.serve.service.commit_snapshot", failing_commit)
        with pytest.raises(OSError, match="disk full"):
            service.checkpoint()


def test_snapshot_io_runs_outside_the_writer_gate(tmp_path, monkeypatch):
    """The consistent cut is captured under the writer gate; the disk write
    must happen after the gate is released so serving is not stalled for
    the fsync window."""
    from repro.persist import commit_snapshot as real_commit

    dataset = generate_yago(target_triples=1200, seed=3)
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    root = tmp_path / "gated"
    config = ServiceConfig(
        adaptive=AdaptiveConfig(epoch_queries=0, tuner_factory=lambda d: Dotil(d, TUNER_CONFIG)),
        snapshot=SnapshotPolicy(path=root, every_mutations=1),
    )
    with QueryService(dual, config) as service:
        gate_states = []

        def observing_commit(captured, path, keep=2):
            gate_states.append(service._gate._writer)
            return real_commit(captured, path, keep=keep)

        monkeypatch.setattr("repro.serve.service.commit_snapshot", observing_commit)
        service.insert([])  # mutation path
        service.run_batch(
            yago_workload(dataset, seed=5).ordered()[:4]
        )
        service.tune_now()  # post-epoch path
        service.checkpoint()  # explicit path
        assert gate_states, "no commit observed"
        assert not any(gate_states), "a snapshot commit ran while the writer gate was held"


def test_stale_capture_cannot_roll_back_a_newer_commit(crashable_store):
    """Two captures can race to the commit: if the younger one lands first,
    committing the older one afterwards must be a no-op — flipping CURRENT
    back would silently lose the newer mutations on restore."""
    from repro.persist import capture_snapshot, commit_snapshot

    dual, _queries, root = crashable_store
    stale = capture_snapshot(dual)  # captured at generation g
    dual.insert([])  # generation g+1
    newer = commit_snapshot(capture_snapshot(dual), root)
    assert newer.generation == dual.generation

    outcome = commit_snapshot(stale, root)  # the older capture commits last
    assert outcome.name == newer.name, "the stale capture must not be committed"
    assert read_manifest(root).generation == dual.generation
    assert list_snapshots(root) == [newer.name]
    assert DualStore.restore(root).generation == dual.generation


def test_capture_is_hash_free_and_commit_derives_the_same_fingerprint(crashable_store):
    """On a fingerprint-cache miss the capture half must not pay the
    full-dataset hashing pass under the caller's exclusivity — the commit
    half derives the identical fingerprint from the captured payloads."""
    from repro.persist import capture_snapshot, commit_snapshot

    dual, _queries, root = crashable_store
    backend = dual.relational
    dual.insert([])  # move the content token so the fingerprint cache misses

    calls = {"n": 0}
    original = backend.predicates

    def counting_predicates():
        calls["n"] += 1
        return original()

    backend.predicates = counting_predicates
    try:
        captured = capture_snapshot(dual)
        assert captured.dataset_fingerprint is None, "capture computed the fingerprint"
        assert calls["n"] == 0, "capture walked the dataset for hashing"
        manifest = commit_snapshot(captured, root)
    finally:
        backend.predicates = original
    assert manifest.dataset_fingerprint == dataset_fingerprint(backend)
    # The commit back-filled the cache, so the next capture embeds it.
    assert capture_snapshot(dual).dataset_fingerprint == manifest.dataset_fingerprint


def test_failed_policy_capture_does_not_poison_mutations(tmp_path):
    """Symmetric with the commit-failure guarantee: a capture that cannot
    run (unsupported backend — here a store with materialized views) must be
    recorded, not raised out of the mutation that triggered it."""
    from repro.relstore import RelationalStore

    dataset = generate_yago(target_triples=1200, seed=3)
    backend = RelationalStore(view_row_budget=64)  # snapshotting unsupported
    dual = DualStore(TUNER_CONFIG, relational_store=backend).load(dataset.triples)
    config = ServiceConfig(snapshot=SnapshotPolicy(path=tmp_path / "views", every_mutations=1))
    with QueryService(dual, config) as service:
        generation_before = dual.generation
        seconds = service.insert([])  # must succeed despite the doomed capture
        assert seconds >= 0.0
        assert dual.generation == generation_before + 1
        assert service.metrics.counters.snapshot_failures == 1
        assert isinstance(service.last_snapshot_error, SnapshotError)
        service.insert([])  # and later mutations keep working too
        # The explicit path still surfaces the problem loudly.
        with pytest.raises(SnapshotError, match="materialized views"):
            service.checkpoint()


def test_background_thread_epochs_hit_the_snapshot_policy(tmp_path):
    """Epochs driven by the daemon's background thread must evaluate the
    snapshot policy like tune_now()/auto epochs — a background-driven
    service with durability configured must actually checkpoint."""
    import time as time_module

    dataset = generate_watdiv(target_triples=2000, seed=7)
    batch = watdiv_workload(dataset, family="star", seed=19).ordered()
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    root = tmp_path / "background"
    config = ServiceConfig(
        adaptive=AdaptiveConfig(
            epoch_queries=0, tuner_factory=lambda d: Dotil(d, TUNER_CONFIG)
        ),
        snapshot=SnapshotPolicy(path=root, every_mutations=1),
    )
    with QueryService(dual, config) as service:
        service.run_batch(batch)  # harvest the window (no epoch yet)
        service.adaptive.start(interval_seconds=0.02)
        deadline = time_module.monotonic() + 10.0
        while time_module.monotonic() < deadline:
            if service.metrics.counters.snapshots_taken:
                break
            time_module.sleep(0.02)
        service.adaptive.stop()
        assert service.metrics.counters.snapshots_taken >= 1, (
            "background epochs never evaluated the snapshot policy"
        )
        assert service.adaptive.metrics.epochs >= 1
    restored = DualStore.restore(root)
    assert restored.design.in_graph_store == dual.design.in_graph_store


def test_sweep_handles_nested_tmp_directories(crashable_store):
    """Cleanup must be recursive: a leftover temp dir (or pruned snapshot)
    containing a subdirectory used to crash the sweep with IsADirectoryError
    — after the commit point, turning a successful snapshot into an error."""
    dual, _queries, root = crashable_store
    dual.snapshot(root)
    nested = root / ".tmp-deadbeef" / "sub" / "deeper"
    nested.mkdir(parents=True)
    (nested / "file.json").write_text("{}")
    dual.insert([])
    dual.snapshot(root)  # sweeps the nested orphan without raising
    assert not (root / ".tmp-deadbeef").exists()


def test_uncommitted_snapshot_dir_does_not_eat_a_retention_slot(crashable_store):
    """A hard kill between the directory rename and the CURRENT flip leaves
    an orphaned snapshot-* directory; it must be swept before the next
    commit, not counted by retention in place of a real snapshot."""
    import shutil as shutil_module

    dual, _queries, root = crashable_store
    first = dual.snapshot(root, keep=2)
    dual.insert([])
    second = dual.snapshot(root, keep=2)
    # Fake the crash artifact: a renamed-but-never-committed directory with
    # the next sequence number.
    orphan = root / "snapshot-00000099-g999"
    shutil_module.copytree(root / second.name, orphan)

    dual.insert([])
    third = dual.snapshot(root, keep=2)
    names = list_snapshots(root)
    assert orphan.name not in names, "the uncommitted orphan survived the sweep"
    assert third.name in names
    assert second.name in names, "retention dropped a committed snapshot for the orphan"
    assert first.name not in names  # normal keep=2 rotation
    assert read_manifest(root).name == third.name


def test_stale_capture_skip_is_not_counted_as_a_snapshot(tmp_path):
    """A stale capture that commit_snapshot refuses to write must not bump
    snapshots_taken — the counter reports durable checkpoints committed."""
    from repro.persist import capture_snapshot

    dataset = generate_yago(target_triples=1200, seed=3)
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    root = tmp_path / "stale-count"
    config = ServiceConfig(snapshot=SnapshotPolicy(path=root, every_mutations=0))
    with QueryService(dual, config) as service:
        stale = capture_snapshot(dual)
        service.insert([])
        service.checkpoint()  # commits the newer generation
        assert service.metrics.counters.snapshots_taken == 1
        # Force-commit the stale capture through the service's commit path.
        manifest = service._commit_captured((stale, root, 2), propagate=True)
        assert manifest.generation == dual.generation  # the newer one came back
        assert service.metrics.counters.snapshots_taken == 1, "stale skip was counted"


def test_restore_seeds_the_fingerprint_cache(crashable_store, tmp_path):
    """The restored content is exactly what the manifest fingerprint hashes:
    the first capture after a warm restart must embed it from the cache
    instead of leaving the commit half to redo the full-dataset pass."""
    from repro.persist import capture_snapshot

    dual, _queries, root = crashable_store
    manifest = dual.snapshot(root)
    restored = DualStore.restore(root)
    captured = capture_snapshot(restored)
    assert captured.dataset_fingerprint == manifest.dataset_fingerprint
