"""Unit tests for the relational store: planning, execution, work accounting."""

import pytest

from repro.errors import WorkBudgetExceeded
from repro.execution import ResultTable
from repro.rdf import IRI, Literal, YAGO
from repro.relstore import RelationalStore, plan_query, relational_work_units
from repro.sparql import parse_query


@pytest.fixture()
def store(mini_kg):
    s = RelationalStore()
    s.load(mini_kg)
    return s


class TestLoadingAndUpdates:
    def test_load_counts_triples(self, store, mini_kg):
        assert len(store) == len(mini_kg)

    def test_load_returns_insert_latency(self, mini_kg):
        store = RelationalStore()
        seconds = store.load(mini_kg)
        assert seconds > 0
        assert store.total_insert_seconds == pytest.approx(seconds)

    def test_insert_and_delete(self, store):
        from repro.rdf import Triple

        new_triple = Triple(YAGO.Zoe, YAGO.term("wasBornIn"), YAGO.Berlin)
        store.insert([new_triple])
        assert store.partition_size(YAGO.term("wasBornIn")) == 8
        assert store.delete(new_triple)
        assert store.partition_size(YAGO.term("wasBornIn")) == 7

    def test_statistics_are_refreshed_after_mutation(self, store):
        before = store.statistics().total_rows
        from repro.rdf import Triple

        store.insert([Triple(YAGO.Zoe, YAGO.term("wasBornIn"), YAGO.Berlin)])
        assert store.statistics().total_rows == before + 1


class TestQueryCorrectness:
    def test_advisor_query_answers(self, store, advisor_query):
        result = store.execute(advisor_query)
        people = {binding["p"] for binding in result.bindings}
        # alice's advisor bob was born in the same city (berlin); carol's was not.
        assert YAGO.term("Alice") in people
        assert YAGO.term("Carol") not in people

    def test_single_pattern_query(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn <%s> . }" % YAGO.term("Rome").value)
        result = store.execute(query)
        assert {b["p"] for b in result.bindings} == {YAGO.term("Eve"), YAGO.term("Frank")}

    def test_query_with_literal_object(self, store):
        query = parse_query('SELECT ?p WHERE { ?p y:hasGivenName "Eve" . }')
        result = store.execute(query)
        assert [b["p"] for b in result.bindings] == [YAGO.term("Eve")]

    def test_distinct_removes_duplicates(self, store):
        query = parse_query("SELECT DISTINCT ?city WHERE { ?p y:wasBornIn ?city . }")
        result = store.execute(query)
        assert len(result) == 3

    def test_limit(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?city . } LIMIT 2")
        assert len(store.execute(query)) == 2

    def test_filter_is_applied(self, store):
        query = parse_query('SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . FILTER(?n = "Frank") }')
        result = store.execute(query)
        assert len(result) == 1
        assert result.bindings[0]["n"] == Literal("Frank")

    def test_empty_result_for_impossible_join(self, store):
        # People born in Rome whose advisor was also born in Rome: Eve is the
        # only Rome-born person with an advisor, and Grace was born in Paris.
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn <%s> . ?p y:hasAcademicAdvisor ?a . "
            "?a y:wasBornIn <%s> . }" % (YAGO.term("Rome").value, YAGO.term("Rome").value)
        )
        result = store.execute(query)
        assert len(result) == 0

    def test_variable_predicate_falls_back_to_table_scan(self, store):
        query = parse_query("SELECT ?p ?o WHERE { <%s> ?p ?o . }" % YAGO.term("Alice").value)
        result = store.execute(query)
        assert len(result) == 4  # born, advisor, given, family

    def test_unknown_predicate_yields_empty_result(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:neverSeen ?o . }")
        assert len(store.execute(query)) == 0

    def test_cartesian_product_when_patterns_disconnected(self, store):
        query = parse_query(
            "SELECT ?a ?b WHERE { ?a y:isMarriedTo ?x . ?b y:hasAcademicAdvisor ?y . }"
        )
        result = store.execute(query)
        assert len(result) == 2 * 3


class TestWorkAccounting:
    def test_partition_scan_charges_rows_scanned(self, store, advisor_query):
        result = store.execute(advisor_query)
        # wasBornIn is scanned twice (two patterns) and advisor once.
        born = store.partition_size(YAGO.term("wasBornIn"))
        advisor = store.partition_size(YAGO.term("hasAcademicAdvisor"))
        assert result.counters.rows_scanned == 2 * born + advisor

    def test_seconds_are_priced_by_the_cost_model(self, store, advisor_query):
        result = store.execute(advisor_query)
        assert result.seconds == pytest.approx(
            store.cost_model.relational_query_seconds(result.counters)
        )
        assert result.store == "relational"

    def test_larger_scans_cost_more(self, store, advisor_query):
        simple = parse_query("SELECT ?p WHERE { ?p y:isMarriedTo ?q . }")
        assert store.execute(advisor_query).seconds > store.execute(simple).seconds

    def test_constant_object_uses_index_lookup(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn <%s> . }" % YAGO.term("Rome").value)
        result = store.execute(query)
        assert result.counters.index_lookups == 1
        assert result.counters.rows_scanned == 2

    def test_work_budget_aborts_execution(self, store, advisor_query):
        with pytest.raises(WorkBudgetExceeded):
            store.execute(advisor_query, work_budget=1.0)

    def test_execute_capped_returns_partial_cost(self, store, advisor_query):
        result, seconds = store.execute_capped(advisor_query, work_budget=1.0)
        assert result is None
        assert seconds > 0

    def test_execute_capped_with_generous_budget_completes(self, store, advisor_query):
        result, seconds = store.execute_capped(advisor_query, work_budget=1e9)
        assert result is not None
        assert seconds == pytest.approx(result.seconds)

    def test_relational_work_units_combine_counters(self, store, advisor_query):
        counters = store.execute(advisor_query).counters
        assert relational_work_units(counters) >= counters.rows_scanned


class TestExtraTables:
    def test_extra_table_joins_with_base_patterns(self, store):
        table = ResultTable(name="tmp", variables=("p",), rows=[(YAGO.term("Alice"),)])
        query = parse_query("SELECT ?n WHERE { ?p y:hasGivenName ?n . }")
        result = store.execute(query, extra_tables=[table])
        assert [b["n"] for b in result.bindings] == [Literal("Alice")]

    def test_view_tables_charge_view_rows(self, store):
        table = ResultTable(name="view", variables=("p",), rows=[(YAGO.term("Alice"),)])
        query = parse_query("SELECT ?n WHERE { ?p y:hasGivenName ?n . }")
        result = store.execute(query, extra_tables=[table], tables_are_views=True)
        assert result.counters.view_rows_scanned == 1
        assert result.counters.rows_scanned > 0  # the base pattern still scans


class TestPlanner:
    def test_plan_orders_selective_pattern_first(self, store):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasGivenName \"Eve\" . }"
        )
        plan = plan_query(query, store.statistics())
        assert plan.steps[0].access_path in ("index_object", "index_subject")

    def test_plan_covers_every_pattern(self, store, example1_query):
        plan = store.plan(example1_query)
        assert len(plan) == len(example1_query.patterns)
        assert plan.estimated_work() > 0

    def test_explicit_pattern_order_is_respected(self, store, advisor_query):
        plan = store.plan(advisor_query, pattern_order=list(advisor_query.patterns))
        assert [step.pattern for step in plan] == list(advisor_query.patterns)
