"""Unit tests for the relational store: planning, execution, work accounting."""

import pytest

from repro.cost.counters import WorkCounters
from repro.errors import WorkBudgetExceeded
from repro.execution import ResultTable
from repro.rdf import IRI, Literal, Triple, YAGO
from repro.relstore import RelationalStore, plan_query, relational_work_units
from repro.relstore.executor import (
    QueryTermSpace,
    join_result_table,
)
from repro.sparql import parse_query


@pytest.fixture()
def store(mini_kg):
    s = RelationalStore()
    s.load(mini_kg)
    return s


class TestLoadingAndUpdates:
    def test_load_counts_triples(self, store, mini_kg):
        assert len(store) == len(mini_kg)

    def test_load_returns_insert_latency(self, mini_kg):
        store = RelationalStore()
        seconds = store.load(mini_kg)
        assert seconds > 0
        assert store.total_insert_seconds == pytest.approx(seconds)

    def test_insert_and_delete(self, store):
        from repro.rdf import Triple

        new_triple = Triple(YAGO.Zoe, YAGO.term("wasBornIn"), YAGO.Berlin)
        store.insert([new_triple])
        assert store.partition_size(YAGO.term("wasBornIn")) == 8
        assert store.delete(new_triple)
        assert store.partition_size(YAGO.term("wasBornIn")) == 7

    def test_statistics_are_refreshed_after_mutation(self, store):
        before = store.statistics().total_rows
        from repro.rdf import Triple

        store.insert([Triple(YAGO.Zoe, YAGO.term("wasBornIn"), YAGO.Berlin)])
        assert store.statistics().total_rows == before + 1


class TestQueryCorrectness:
    def test_advisor_query_answers(self, store, advisor_query):
        result = store.execute(advisor_query)
        people = {binding["p"] for binding in result.bindings}
        # alice's advisor bob was born in the same city (berlin); carol's was not.
        assert YAGO.term("Alice") in people
        assert YAGO.term("Carol") not in people

    def test_single_pattern_query(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn <%s> . }" % YAGO.term("Rome").value)
        result = store.execute(query)
        assert {b["p"] for b in result.bindings} == {YAGO.term("Eve"), YAGO.term("Frank")}

    def test_query_with_literal_object(self, store):
        query = parse_query('SELECT ?p WHERE { ?p y:hasGivenName "Eve" . }')
        result = store.execute(query)
        assert [b["p"] for b in result.bindings] == [YAGO.term("Eve")]

    def test_distinct_removes_duplicates(self, store):
        query = parse_query("SELECT DISTINCT ?city WHERE { ?p y:wasBornIn ?city . }")
        result = store.execute(query)
        assert len(result) == 3

    def test_limit(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?city . } LIMIT 2")
        assert len(store.execute(query)) == 2

    def test_filter_is_applied(self, store):
        query = parse_query('SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . FILTER(?n = "Frank") }')
        result = store.execute(query)
        assert len(result) == 1
        assert result.bindings[0]["n"] == Literal("Frank")

    def test_empty_result_for_impossible_join(self, store):
        # People born in Rome whose advisor was also born in Rome: Eve is the
        # only Rome-born person with an advisor, and Grace was born in Paris.
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn <%s> . ?p y:hasAcademicAdvisor ?a . "
            "?a y:wasBornIn <%s> . }" % (YAGO.term("Rome").value, YAGO.term("Rome").value)
        )
        result = store.execute(query)
        assert len(result) == 0

    def test_variable_predicate_falls_back_to_table_scan(self, store):
        query = parse_query("SELECT ?p ?o WHERE { <%s> ?p ?o . }" % YAGO.term("Alice").value)
        result = store.execute(query)
        assert len(result) == 4  # born, advisor, given, family

    def test_unknown_predicate_yields_empty_result(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:neverSeen ?o . }")
        assert len(store.execute(query)) == 0

    def test_cartesian_product_when_patterns_disconnected(self, store):
        query = parse_query(
            "SELECT ?a ?b WHERE { ?a y:isMarriedTo ?x . ?b y:hasAcademicAdvisor ?y . }"
        )
        result = store.execute(query)
        assert len(result) == 2 * 3


class TestWorkAccounting:
    def test_partition_scan_charges_rows_scanned(self, store, advisor_query):
        result = store.execute(advisor_query)
        # wasBornIn is scanned twice (two patterns) and advisor once.
        born = store.partition_size(YAGO.term("wasBornIn"))
        advisor = store.partition_size(YAGO.term("hasAcademicAdvisor"))
        assert result.counters.rows_scanned == 2 * born + advisor

    def test_seconds_are_priced_by_the_cost_model(self, store, advisor_query):
        result = store.execute(advisor_query)
        assert result.seconds == pytest.approx(
            store.cost_model.relational_query_seconds(result.counters)
        )
        assert result.store == "relational"

    def test_larger_scans_cost_more(self, store, advisor_query):
        simple = parse_query("SELECT ?p WHERE { ?p y:isMarriedTo ?q . }")
        assert store.execute(advisor_query).seconds > store.execute(simple).seconds

    def test_constant_object_uses_index_lookup(self, store):
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn <%s> . }" % YAGO.term("Rome").value)
        result = store.execute(query)
        assert result.counters.index_lookups == 1
        assert result.counters.rows_scanned == 2

    def test_work_budget_aborts_execution(self, store, advisor_query):
        with pytest.raises(WorkBudgetExceeded):
            store.execute(advisor_query, work_budget=1.0)

    def test_execute_capped_returns_partial_cost(self, store, advisor_query):
        result, seconds = store.execute_capped(advisor_query, work_budget=1.0)
        assert result is None
        assert seconds > 0

    def test_execute_capped_with_generous_budget_completes(self, store, advisor_query):
        result, seconds = store.execute_capped(advisor_query, work_budget=1e9)
        assert result is not None
        assert seconds == pytest.approx(result.seconds)

    def test_relational_work_units_combine_counters(self, store, advisor_query):
        counters = store.execute(advisor_query).counters
        assert relational_work_units(counters) >= counters.rows_scanned


class TestExtraTables:
    def test_extra_table_joins_with_base_patterns(self, store):
        table = ResultTable(name="tmp", variables=("p",), rows=[(YAGO.term("Alice"),)])
        query = parse_query("SELECT ?n WHERE { ?p y:hasGivenName ?n . }")
        result = store.execute(query, extra_tables=[table])
        assert [b["n"] for b in result.bindings] == [Literal("Alice")]

    def test_view_tables_charge_view_rows(self, store):
        table = ResultTable(name="view", variables=("p",), rows=[(YAGO.term("Alice"),)])
        query = parse_query("SELECT ?n WHERE { ?p y:hasGivenName ?n . }")
        result = store.execute(query, extra_tables=[table], tables_are_views=True)
        assert result.counters.view_rows_scanned == 1
        assert result.counters.rows_scanned > 0  # the base pattern still scans


class TestPlanner:
    def test_plan_orders_selective_pattern_first(self, store):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasGivenName \"Eve\" . }"
        )
        plan = plan_query(query, store.statistics())
        assert plan.steps[0].access_path in ("index_object", "index_subject")

    def test_plan_covers_every_pattern(self, store, example1_query):
        plan = store.plan(example1_query)
        assert len(plan) == len(example1_query.patterns)
        assert plan.estimated_work() > 0

    def test_explicit_pattern_order_is_respected(self, store, advisor_query):
        plan = store.plan(advisor_query, pattern_order=list(advisor_query.patterns))
        assert [step.pattern for step in plan] == list(advisor_query.patterns)

    def test_index_steps_are_estimated_as_point_lookups(self, store):
        """The old ``min(estimated, max(1, estimated))`` clamp was a no-op;
        index-path steps must now carry the distinct-count point-lookup
        estimate instead of anything near the partition cardinality."""
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn <%s> . }" % YAGO.term("Rome").value)
        plan = store.plan(query)
        step = plan.steps[0]
        assert step.access_path == "index_object"
        stats = store.statistics().per_predicate[YAGO.term("wasBornIn")]
        assert step.estimated_rows == stats.object_lookup_rows
        assert step.estimated_rows < stats.cardinality

    def test_greedy_ordering_prefers_cheap_point_lookups(self):
        """Two index-path patterns tie on bound positions; the point-lookup
        estimate (not the whole-partition cardinality) must break the tie.

        ``big`` is the larger partition but each object matches exactly one
        row (fan-in 1), while ``small`` funnels every row onto one object
        (fan-in 6): ordering by raw cardinality would run ``small`` first,
        ordering by the point-lookup estimate runs ``big`` first.
        """
        big, small = YAGO.term("big"), YAGO.term("small")
        hub = YAGO.term("hub")
        triples = [Triple(YAGO.term(f"s{i}"), big, YAGO.term(f"o{i}")) for i in range(30)]
        triples += [Triple(YAGO.term(f"t{i}"), small, hub) for i in range(6)]
        store = RelationalStore()
        store.load(triples)
        query = parse_query(
            "SELECT ?p ?q WHERE { ?p y:big <%s> . ?q y:small <%s> . }"
            % (YAGO.term("o3").value, hub.value)
        )
        plan = store.plan(query)
        assert [step.pattern.predicate for step in plan.steps] == [big, small]
        assert [step.estimated_rows for step in plan.steps] == [1, 6]


class TestBoundPlanMemo:
    def test_repeated_execution_binds_the_plan_once(self, store, advisor_query):
        store.execute(advisor_query)
        first = store._bound_plans.get(advisor_query, store._plan_generation)
        assert first is not None
        store.execute(advisor_query)
        again = store._bound_plans.get(advisor_query, store._plan_generation)
        # Same memo entry: the plan was not re-planned nor re-compiled.
        assert again[0] is first[0] and again[1] is first[1]

    def test_mutations_invalidate_bound_constants(self, store):
        """A constant unknown at first binding must be re-resolved after an
        insert introduces it — a stale compiled plan would keep answering
        from the 'unmatchable' fast path."""
        zoe = YAGO.term("Zoe")
        query = parse_query("SELECT ?c WHERE { <%s> y:wasBornIn ?c . }" % zoe.value)
        assert len(store.execute(query)) == 0
        store.insert([Triple(zoe, YAGO.term("wasBornIn"), YAGO.term("Berlin"))])
        result = store.execute(query)
        assert [b["c"] for b in result.bindings] == [YAGO.term("Berlin")]

    def test_reference_engine_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            RelationalStore(engine="no-such-engine")

    def test_memo_evicts_least_recently_bound_plan(self, store):
        from repro.relstore import BoundPlanCache

        cache = BoundPlanCache(capacity=2)
        plans = {}
        for name in ("a", "b", "c"):
            query = parse_query("SELECT ?p WHERE { ?p y:%s ?o . }" % name)
            plan = store.plan(query)
            plans[name] = (query, plan)
            cache.put(query, generation=1, plan=plan, compiled=None)
        assert len(cache) == 2
        assert cache.get(plans["a"][0], generation=1) is None  # evicted
        assert cache.get(plans["c"][0], generation=1) is not None
        # A stale generation misses even for a resident entry.
        assert cache.get(plans["c"][0], generation=2) is None


class TestQueryTermSpace:
    def test_unknown_terms_get_stable_local_ids(self, store):
        space = QueryTermSpace(store.table.dictionary)
        ghost = IRI("http://example.org/ghost")
        known = YAGO.term("Alice")
        assert space.encode(known) == store.table.dictionary.lookup(known)
        first = space.encode(ghost)
        assert first < 0
        assert space.encode(ghost) == first  # deduplicated per execution
        assert space.decode(first) == ghost
        mapping = space.decode_map([first, space.encode(known)])
        assert mapping[first] == ghost and mapping[space.encode(known)] == known


class TestJoinResultTableHashJoin:
    def test_shared_variable_join_filters_like_the_nested_loop(self):
        """The hash-indexed join must produce exactly what the cartesian
        merge-and-filter produced: matching rows only, same order, same
        ``rows_joined`` charge."""
        alice, bob = YAGO.term("Alice"), YAGO.term("Bob")
        bindings = [{"p": alice, "x": Literal("1")}, {"p": bob, "x": Literal("2")}]
        table = ResultTable(
            name="tmp",
            variables=("p", "tag"),
            rows=[(alice, Literal("a1")), (alice, Literal("a2")), (YAGO.term("Carol"), Literal("c"))],
        )
        counters = WorkCounters()
        joined = join_result_table(bindings, table, counters)
        assert joined == [
            {"p": alice, "x": Literal("1"), "tag": Literal("a1")},
            {"p": alice, "x": Literal("1"), "tag": Literal("a2")},
        ]
        assert counters.rows_scanned == 3  # the table's rows
        assert counters.rows_joined == 2  # produced tuples only

    def test_disjoint_table_still_produces_the_cartesian_product(self):
        bindings = [{"p": YAGO.term("Alice")}]
        table = ResultTable(name="tmp", variables=("y",), rows=[(Literal("1"),), (Literal("2"),)])
        counters = WorkCounters()
        joined = join_result_table(bindings, table, counters)
        assert len(joined) == 2
        assert counters.rows_joined == 2
