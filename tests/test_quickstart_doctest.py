"""The package-level quickstart must stay executable (ISSUE 1 satellite).

The ``repro/__init__.py`` docstring doubles as the README quickstart; running
it as a doctest keeps the documented API honest.
"""

import doctest

import repro


def test_quickstart_docstring_is_an_executable_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0, "the quickstart docstring lost its examples"
    assert results.failed == 0
