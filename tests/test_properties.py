"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import string
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ACTION_KEEP, ACTION_MOVE, QMatrix, STATE_GRAPH, STATE_RELATIONAL
from repro.graphstore import GraphStore, PropertyGraph
from repro.graphstore.matcher import GraphMatcher
from repro.rdf import (
    IRI,
    Literal,
    TermDictionary,
    Triple,
    TripleSet,
    Variable,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.terms import XSD_INTEGER
from repro.relstore import RelationalStore
from repro.sparql import SelectQuery, TriplePattern
from repro.sparql.ast import COMPARISON_OPERATORS, Filter
from repro.sparql.parser import canonical_query_text, parse_query

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
_local_names = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)

iris = st.builds(lambda name: IRI("http://example.org/" + name), _local_names)
predicates = st.builds(lambda name: IRI("http://example.org/p/" + name), st.sampled_from("abcdef"))
literals = st.builds(
    Literal,
    st.text(min_size=0, max_size=12),
    st.just("http://www.w3.org/2001/XMLSchema#string"),
)
subjects = iris
objects = st.one_of(iris, literals)
triples = st.builds(Triple, subjects, predicates, objects)
triple_lists = st.lists(triples, min_size=0, max_size=40)


# --------------------------------------------------------------------------- #
# RDF invariants
# --------------------------------------------------------------------------- #
@given(triple_lists)
def test_tripleset_length_equals_distinct_triples(batch):
    triple_set = TripleSet(batch)
    assert len(triple_set) == len(set(batch))


@given(triple_lists)
def test_tripleset_partitions_cover_exactly_the_set(batch):
    triple_set = TripleSet(batch)
    recovered = [t for p in triple_set.predicates for t in triple_set.partition(p)]
    assert sorted(t.n3() for t in recovered) == sorted(t.n3() for t in set(batch))


@given(triple_lists)
def test_tripleset_add_then_discard_restores_previous_state(batch):
    triple_set = TripleSet(batch)
    probe = Triple(IRI("http://example.org/probe"), IRI("http://example.org/p/probe"), Literal("x"))
    before = len(triple_set)
    triple_set.add(probe)
    triple_set.discard(probe)
    assert len(triple_set) == before
    assert probe not in triple_set


@given(triple_lists)
def test_ntriples_round_trip(batch):
    unique = list(set(batch))
    parsed = list(parse_ntriples(serialize_ntriples(unique)))
    assert sorted(t.n3() for t in parsed) == sorted(t.n3() for t in unique)


@given(st.lists(st.one_of(iris, literals), min_size=0, max_size=60))
def test_dictionary_encoding_is_a_bijection_over_seen_terms(terms):
    dictionary = TermDictionary()
    ids = [dictionary.encode(term) for term in terms]
    # encoding is stable and decoding inverts it
    assert ids == [dictionary.encode(term) for term in terms]
    assert [dictionary.decode(i) for i in ids] == list(terms)
    assert len(dictionary) == len(set(terms))


# --------------------------------------------------------------------------- #
# Store equivalence: the relational executor and the graph matcher must agree
# --------------------------------------------------------------------------- #
def _single_predicate_query(predicate: IRI) -> SelectQuery:
    return SelectQuery(
        projection=(Variable("s"), Variable("o")),
        patterns=(TriplePattern(Variable("s"), predicate, Variable("o")),),
    )


def _join_query(p1: IRI, p2: IRI) -> SelectQuery:
    return SelectQuery(
        projection=(Variable("a"), Variable("c")),
        patterns=(
            TriplePattern(Variable("a"), p1, Variable("b")),
            TriplePattern(Variable("b"), p2, Variable("c")),
        ),
    )


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(triple_lists)
def test_relational_and_graph_store_agree_on_scans_and_joins(batch):
    triple_set = TripleSet(batch)
    relational = RelationalStore()
    relational.load(triple_set)
    graph = GraphStore(storage_budget=None)
    for predicate in triple_set.predicates:
        graph.load_partition(predicate, triple_set.partition(predicate))

    for predicate in triple_set.predicates:
        query = _single_predicate_query(predicate)
        assert relational.execute(query).distinct_rows() == graph.execute(query).distinct_rows()

    predicates = triple_set.predicates
    if len(predicates) >= 2:
        query = _join_query(predicates[0], predicates[1])
        assert relational.execute(query).distinct_rows() == graph.execute(query).distinct_rows()


@settings(max_examples=25, deadline=None)
@given(triple_lists)
def test_graph_matcher_distinct_matches_tripleset_scan(batch):
    triple_set = TripleSet(batch)
    graph = PropertyGraph()
    graph.add_triples(triple_set)
    matcher = GraphMatcher(graph)
    for predicate in triple_set.predicates:
        result = matcher.execute(_single_predicate_query(predicate))
        expected = {(t.subject, t.object) for t in triple_set.partition(predicate)}
        assert result.distinct_rows() == expected


# --------------------------------------------------------------------------- #
# Graph store budget invariant
# --------------------------------------------------------------------------- #
@settings(max_examples=30, deadline=None)
@given(triple_lists, st.integers(min_value=0, max_value=30))
def test_graph_store_never_exceeds_its_budget(batch, budget):
    triple_set = TripleSet(batch)
    store = GraphStore(storage_budget=budget)
    for predicate in triple_set.predicates:
        partition = triple_set.partition(predicate)
        try:
            store.load_partition(predicate, partition)
        except Exception:
            # rejected partitions must leave the store untouched
            assert predicate not in store.loaded_predicates
        assert store.used_capacity() <= budget


# --------------------------------------------------------------------------- #
# Q-learning invariants
# --------------------------------------------------------------------------- #
@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([(STATE_RELATIONAL, ACTION_MOVE), (STATE_GRAPH, ACTION_KEEP)]),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=0,
        max_size=30,
    ),
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=0.0, max_value=0.95),
)
def test_qmatrix_stays_bounded_for_bounded_rewards(updates, alpha, gamma):
    """With rewards in [0, R], every Q value stays within [0, R / (1 - gamma)]."""
    matrix = QMatrix()
    bound = 100.0 / (1.0 - gamma) + 1e-6
    for (state, action), reward in updates:
        matrix.update(state, action, reward, alpha=alpha, gamma=gamma)
        assert all(0.0 <= value <= bound for row in matrix.values for value in row)
    # the pinned entries never move
    assert matrix.get(STATE_RELATIONAL, ACTION_KEEP) == 0.0
    assert matrix.get(STATE_GRAPH, ACTION_MOVE) == 0.0


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=-50.0, max_value=50.0), st.floats(min_value=0.1, max_value=1.0))
def test_qmatrix_single_update_matches_equation_4(reward, alpha):
    matrix = QMatrix()
    value = matrix.update(STATE_RELATIONAL, ACTION_MOVE, reward, alpha=alpha, gamma=0.5)
    assert value == pytest.approx(alpha * reward)


# --------------------------------------------------------------------------- #
# Random SPARQL queries: canonical-text round trips and plan-cache keys
# --------------------------------------------------------------------------- #
_query_variables = st.builds(Variable, st.sampled_from("abcdefg"))
# Lowercase-only, no spaces: the cosmetic-variant test below mangles the
# query *text* (whitespace, keyword case), which must never reach inside a
# quoted literal.
_safe_literals = st.builds(
    Literal,
    st.text(alphabet=string.ascii_lowercase + string.digits, min_size=0, max_size=10),
)
_int_literals = st.builds(Literal, st.integers(min_value=0, max_value=999).map(str), st.just(XSD_INTEGER))
_pattern_subjects = st.one_of(_query_variables, iris)
_pattern_predicates = st.one_of(_query_variables, predicates)
_pattern_objects = st.one_of(_query_variables, iris, _safe_literals, _int_literals)
_query_patterns = st.builds(TriplePattern, _pattern_subjects, _pattern_predicates, _pattern_objects)

#: A fresh IRI that the strategies above can never generate (different path).
_MUTANT_IRI = IRI("http://example.org/mutant/never-generated")


@st.composite
def select_queries(draw) -> SelectQuery:
    """Random SELECT queries over the parser's full supported surface."""
    patterns = tuple(draw(st.lists(_query_patterns, min_size=1, max_size=4)))
    names = sorted({v.name for p in patterns for v in p.variables()})
    projection: tuple = ()
    if names and draw(st.booleans()):
        chosen = draw(st.lists(st.sampled_from(names), min_size=1, max_size=len(names), unique=True))
        projection = tuple(Variable(name) for name in chosen)
    filters: tuple = ()
    if names and draw(st.booleans()):
        left = Variable(draw(st.sampled_from(names)))
        operator = draw(st.sampled_from(COMPARISON_OPERATORS))
        right = draw(st.one_of(_int_literals, _safe_literals))
        filters = (Filter(left, operator, right),)
    return SelectQuery(
        projection=projection,
        patterns=patterns,
        filters=filters,
        distinct=draw(st.booleans()),
        limit=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=50))),
    )


@settings(max_examples=100, deadline=None)
@given(select_queries())
def test_canonical_query_text_round_trips(query):
    """canonical(parse(text)) is a fixed point: canonicalizing, reparsing,
    and re-rendering must land on the same cache key (the ISSUE's
    ``c(p(t)) == c(p(c(p(t))))`` property)."""
    text = query.to_sparql()
    first = canonical_query_text(parse_query(text).to_sparql())
    again = canonical_query_text(parse_query(first).to_sparql())
    assert again == first
    # Canonicalization itself is idempotent at the token level too.
    assert canonical_query_text(first) == first


@settings(max_examples=100, deadline=None)
@given(select_queries())
def test_cosmetic_variants_share_one_plan_cache_key(query):
    """Whitespace, comments, and keyword case never split the plan cache."""
    text = query.to_sparql()
    key = canonical_query_text(text)
    spaced = text.replace(" ", "   ").replace("\n", "\n\n")
    commented = "\n".join(line + " # noise" for line in text.splitlines())
    lowered = (
        text.replace("SELECT", "select").replace("WHERE", "wHeRe").replace("FILTER", "filter").replace("LIMIT", "limit")
    )
    for variant in (spaced, commented, lowered):
        assert canonical_query_text(variant) == key


def _semantic_mutants(query: SelectQuery):
    """Queries adversarially close to ``query`` but semantically different.

    Each mutant differs by exactly one semantic ingredient: modifier flags,
    limit, one constant, one predicate, one pattern, or the join structure.
    None of them may collide with the original's plan-cache key — a collision
    would serve one query's cached answer for the other.
    """
    mutants = [replace(query, distinct=not query.distinct)]
    mutants.append(replace(query, limit=(query.limit or 0) + 9))
    first, rest = query.patterns[0], query.patterns[1:]
    mutants.append(replace(query, patterns=(replace(first, object=_MUTANT_IRI),) + rest))
    mutants.append(replace(query, patterns=(replace(first, predicate=_MUTANT_IRI),) + rest))
    mutants.append(
        replace(query, patterns=query.patterns + (TriplePattern(Variable("zz"), _MUTANT_IRI, Variable("zz")),))
    )
    if len(query.patterns) > 1:
        mutants.append(replace(query, patterns=query.patterns[1:]))
    # Breaking one occurrence of a join variable changes the join structure.
    occurrences = query.variable_occurrences()
    join_vars = sorted(name for name, count in occurrences.items() if count > 1)
    if join_vars:
        target = join_vars[0]
        for index, pattern in enumerate(query.patterns):
            if target in pattern.variable_names():
                renamed = TriplePattern(
                    *(
                        Variable("zz") if isinstance(term, Variable) and term.name == target else term
                        for term in (pattern.subject, pattern.predicate, pattern.object)
                    )
                )
                mutated = query.patterns[:index] + (renamed,) + query.patterns[index + 1 :]
                mutants.append(replace(query, patterns=mutated))
                break
    return mutants


@settings(max_examples=100, deadline=None)
@given(select_queries(), st.data())
def test_near_miss_queries_never_collide_in_the_plan_cache(query, data):
    """Adversarial near-misses: one changed constant/predicate/pattern/flag
    must always produce a distinct plan-cache key."""
    key = canonical_query_text(query.to_sparql())
    mutant = data.draw(st.sampled_from(_semantic_mutants(query)), label="mutant")
    assert canonical_query_text(mutant.to_sparql()) != key


@settings(max_examples=50, deadline=None)
@given(select_queries())
def test_equal_keys_imply_equal_parsed_queries(query):
    """The collision-freedom direction: two texts with one canonical key
    parse to the same AST, so a plan-cache hit can never mix semantics."""
    text = query.to_sparql()
    canonical = canonical_query_text(text)
    assert parse_query(canonical) == parse_query(text)
