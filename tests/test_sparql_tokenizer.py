"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sparql import tokenize


def token_types(text):
    return [token.type for token in tokenize(text)]


class TestTokenizer:
    def test_keywords_are_recognised_case_insensitively(self):
        tokens = tokenize("select Where FILTER limit")
        assert all(token.type == "KEYWORD" for token in tokens)

    def test_variables_strip_the_prefix(self):
        tokens = tokenize("?person $city")
        assert [(t.type, t.value) for t in tokens] == [("VAR", "person"), ("VAR", "city")]

    def test_iri_token_strips_angle_brackets(self):
        (token,) = tokenize("<http://x.org/a>")
        assert token.type == "IRI"
        assert token.value == "http://x.org/a"

    def test_prefixed_name(self):
        (token,) = tokenize("y:wasBornIn")
        assert token.type == "PNAME"

    def test_string_with_language_tag(self):
        types = token_types('"hello"@en')
        assert types == ["STRING", "LANGTAG"]

    def test_string_with_datatype(self):
        types = token_types('"5"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert types == ["STRING", "DOUBLE_CARET", "IRI"]

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_comparison_operators(self, op):
        tokens = tokenize(f"?x {op} 5")
        assert tokens[1].type == "OP"
        assert tokens[1].value == op

    def test_numbers(self):
        tokens = tokenize("42 3.14 -7")
        assert [t.type for t in tokens] == ["NUMBER", "NUMBER", "NUMBER"]

    def test_punctuation(self):
        assert token_types("{ } ( ) . , ; * :") == [
            "LBRACE",
            "RBRACE",
            "LPAREN",
            "RPAREN",
            "DOT",
            "COMMA",
            "SEMICOLON",
            "STAR",
            "COLON",
        ]

    def test_comments_and_whitespace_are_skipped(self):
        assert token_types("?x # trailing comment\n?y") == ["VAR", "VAR"]

    def test_positions_are_tracked(self):
        tokens = tokenize("SELECT ?x\nWHERE")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[2].line == 2 and tokens[2].column == 1

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("SELECT @@")
        assert excinfo.value.line == 1

    def test_is_keyword_helper(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("select")
        assert not token.is_keyword("where")
