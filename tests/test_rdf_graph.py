"""Unit tests for the in-memory TripleSet."""

import pytest

from repro.errors import TermError
from repro.rdf import IRI, Literal, Triple, TripleSet, YAGO

BORN = YAGO.term("wasBornIn")
NAME = YAGO.term("hasGivenName")
ALICE = YAGO.term("Alice")
BOB = YAGO.term("Bob")
BERLIN = YAGO.term("Berlin")
PARIS = YAGO.term("Paris")


@pytest.fixture()
def small_set() -> TripleSet:
    return TripleSet(
        [
            Triple(ALICE, BORN, BERLIN),
            Triple(BOB, BORN, PARIS),
            Triple(ALICE, NAME, Literal("Alice")),
        ]
    )


class TestMutation:
    def test_add_returns_true_only_for_new_triples(self, small_set):
        assert not small_set.add(Triple(ALICE, BORN, BERLIN))
        assert small_set.add(Triple(BOB, NAME, Literal("Bob")))
        assert len(small_set) == 4

    def test_add_rejects_non_triples(self, small_set):
        with pytest.raises(TermError):
            small_set.add(("s", "p", "o"))  # type: ignore[arg-type]

    def test_add_all_counts_new_triples(self):
        triples = TripleSet()
        added = triples.add_all([Triple(ALICE, BORN, BERLIN), Triple(ALICE, BORN, BERLIN)])
        assert added == 1

    def test_discard_removes_and_updates_indexes(self, small_set):
        assert small_set.discard(Triple(ALICE, BORN, BERLIN))
        assert not small_set.discard(Triple(ALICE, BORN, BERLIN))
        assert Triple(ALICE, BORN, BERLIN) not in small_set
        assert small_set.predicate_count(BORN) == 1
        assert list(small_set.match(subject=ALICE, predicate=BORN)) == []


class TestInspection:
    def test_len_and_contains(self, small_set):
        assert len(small_set) == 3
        assert Triple(ALICE, BORN, BERLIN) in small_set

    def test_predicates_sorted(self, small_set):
        assert small_set.predicates == sorted([BORN, NAME], key=lambda p: p.value)

    def test_partition_returns_only_that_predicate(self, small_set):
        partition = small_set.partition(BORN)
        assert len(partition) == 2
        assert all(t.predicate == BORN for t in partition)

    def test_partition_of_unknown_predicate_is_empty(self, small_set):
        assert small_set.partition(YAGO.term("unknown")) == []

    def test_entity_count_counts_subjects_and_objects(self, small_set):
        # alice, bob, berlin, paris, and the literal "Alice"
        assert small_set.entity_count() == 5

    def test_predicate_histogram(self, small_set):
        histogram = small_set.predicate_histogram()
        assert histogram[BORN] == 2
        assert histogram[NAME] == 1


class TestMatch:
    def test_match_by_subject(self, small_set):
        assert {t.predicate for t in small_set.match(subject=ALICE)} == {BORN, NAME}

    def test_match_by_predicate(self, small_set):
        assert len(list(small_set.match(predicate=BORN))) == 2

    def test_match_by_object(self, small_set):
        assert [t.subject for t in small_set.match(object=BERLIN)] == [ALICE]

    def test_match_with_all_positions(self, small_set):
        assert len(list(small_set.match(ALICE, BORN, BERLIN))) == 1
        assert list(small_set.match(ALICE, BORN, PARIS)) == []

    def test_match_unknown_subject_returns_nothing(self, small_set):
        assert list(small_set.match(subject=YAGO.term("Nobody"))) == []

    def test_match_without_constraints_returns_everything(self, small_set):
        assert len(list(small_set.match())) == 3


class TestSetOperations:
    def test_copy_is_independent(self, small_set):
        clone = small_set.copy()
        clone.add(Triple(BOB, NAME, Literal("Bob")))
        assert len(clone) == 4
        assert len(small_set) == 3

    def test_union(self, small_set):
        other = TripleSet([Triple(BOB, NAME, Literal("Bob"))])
        merged = small_set.union(other)
        assert len(merged) == 4

    def test_subset_for_predicates(self, small_set):
        subset = small_set.subset_for_predicates([BORN])
        assert len(subset) == 2
        assert subset.predicates == [BORN]

    def test_equality(self, small_set):
        assert small_set == small_set.copy()
        assert small_set != TripleSet()
