"""Unit tests for work counters, the cost model, clocks, and throttles."""

import pytest

from repro.cost import (
    CostModel,
    DEFAULT_COST_MODEL,
    ResourceThrottle,
    SimulatedClock,
    WallClock,
    WorkCounters,
)
from repro.errors import ConfigError


class TestWorkCounters:
    def test_merge_sums_every_field(self):
        a = WorkCounters(rows_scanned=10, rows_joined=5)
        b = WorkCounters(rows_scanned=1, edges_traversed=7)
        merged = a.merge(b)
        assert merged.rows_scanned == 11
        assert merged.rows_joined == 5
        assert merged.edges_traversed == 7
        # merge() leaves the inputs untouched
        assert a.rows_scanned == 10 and b.rows_scanned == 1

    def test_add_accumulates_in_place(self):
        a = WorkCounters(rows_scanned=3)
        a.add(WorkCounters(rows_scanned=4, index_lookups=2))
        assert a.rows_scanned == 7
        assert a.index_lookups == 2

    def test_total_units_and_dict(self):
        counters = WorkCounters(rows_scanned=2, nodes_expanded=3)
        assert counters.total_units() == 5
        assert counters.as_dict()["nodes_expanded"] == 3

    def test_copy_is_independent(self):
        counters = WorkCounters(rows_scanned=2)
        clone = counters.copy()
        clone.rows_scanned += 1
        assert counters.rows_scanned == 2


class TestCostModel:
    def test_relational_cost_grows_with_rows_scanned(self):
        small = DEFAULT_COST_MODEL.relational_query_seconds(WorkCounters(rows_scanned=100))
        large = DEFAULT_COST_MODEL.relational_query_seconds(WorkCounters(rows_scanned=10_000))
        assert large > small
        assert large - small == pytest.approx(9_900 * DEFAULT_COST_MODEL.relational_row_scan)

    def test_graph_cost_grows_with_traversal(self):
        small = DEFAULT_COST_MODEL.graph_query_seconds(WorkCounters(edges_traversed=10))
        large = DEFAULT_COST_MODEL.graph_query_seconds(WorkCounters(edges_traversed=10_000))
        assert large > small

    def test_graph_import_is_much_more_expensive_than_relational_insert(self):
        triples = 10_000
        assert DEFAULT_COST_MODEL.graph_import_seconds(triples) > (
            DEFAULT_COST_MODEL.relational_insert_seconds(triples) * 5
        )

    def test_graph_import_restart_penalty(self):
        assert DEFAULT_COST_MODEL.graph_import_seconds(10, restart=True) > (
            DEFAULT_COST_MODEL.graph_import_seconds(10) + 1.0
        )

    def test_migration_cost_zero_for_empty_result(self):
        assert DEFAULT_COST_MODEL.migration_seconds(0) == 0.0
        assert DEFAULT_COST_MODEL.migration_seconds(100) > 0.0

    def test_scaled_multiplies_all_latencies(self):
        doubled = DEFAULT_COST_MODEL.scaled(2.0)
        assert doubled.relational_row_scan == pytest.approx(
            2.0 * DEFAULT_COST_MODEL.relational_row_scan
        )
        assert doubled.graph_query_overhead == pytest.approx(
            2.0 * DEFAULT_COST_MODEL.graph_query_overhead
        )

    def test_complex_query_asymmetry_matches_table1_shape(self):
        """Scanning a large partition set costs far more than traversing it."""
        relational = DEFAULT_COST_MODEL.relational_query_seconds(
            WorkCounters(rows_scanned=50_000, rows_joined=10_000)
        )
        graph = DEFAULT_COST_MODEL.graph_query_seconds(
            WorkCounters(nodes_expanded=2_000, edges_traversed=6_000)
        )
        assert relational > graph * 10


class TestClocks:
    def test_simulated_clock_advances_only_when_charged(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.charge(1.5)
        assert clock.now() == 1.5

    def test_simulated_clock_rejects_negative_values(self):
        with pytest.raises(ConfigError):
            SimulatedClock(-1.0)
        with pytest.raises(ConfigError):
            SimulatedClock().charge(-0.1)

    def test_simulated_clock_stopwatch(self):
        clock = SimulatedClock()
        with clock.stopwatch() as watch:
            clock.charge(2.0)
        assert watch.elapsed == pytest.approx(2.0)

    def test_simulated_clock_reset(self):
        clock = SimulatedClock(5.0)
        clock.reset()
        assert clock.now() == 0.0

    def test_wall_clock_moves_forward(self):
        clock = WallClock()
        first = clock.now()
        clock.charge(100.0)  # no-op for a wall clock
        assert clock.now() >= first


class TestResourceThrottle:
    def test_no_contention_means_no_slowdown(self):
        throttle = ResourceThrottle()
        assert throttle.slowdown_factor() == pytest.approx(1.0)
        assert throttle.apply(2.0) == pytest.approx(2.0)

    def test_tighter_budgets_slow_down_more(self):
        loose = ResourceThrottle(spare_cpu=0.4)
        tight = ResourceThrottle(spare_cpu=0.2)
        assert tight.slowdown_percent() > loose.slowdown_percent()

    def test_io_limits_hurt_less_than_cpu_limits(self):
        io = ResourceThrottle(spare_io=0.2)
        cpu = ResourceThrottle(spare_cpu=0.2)
        assert io.slowdown_percent() < cpu.slowdown_percent()

    def test_table6_shape(self):
        """The defaults reproduce the order of magnitude of the paper's Table 6."""
        assert ResourceThrottle(spare_io=0.4).slowdown_percent() < 1.0
        assert ResourceThrottle(spare_io=0.2).slowdown_percent() < 2.0
        assert 2.0 < ResourceThrottle(spare_cpu=0.4).slowdown_percent() < 12.0
        assert 10.0 < ResourceThrottle(spare_cpu=0.2).slowdown_percent() < 30.0

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ConfigError):
            ResourceThrottle(spare_io=0.0)
        with pytest.raises(ConfigError):
            ResourceThrottle(spare_cpu=1.5)

    def test_report_lists_only_constrained_resources(self):
        throttle = ResourceThrottle(spare_io=0.4)
        report = throttle.report()
        assert len(report) == 1
        assert report[0].resource == "io"

    def test_record_activity_builds_a_sorted_timeline(self):
        throttle = ResourceThrottle(spare_io=0.4)
        throttle.record_activity(time=2.0, migrated_triples=100, graph_work_units=10)
        throttle.record_activity(time=1.0, migrated_triples=0, graph_work_units=10)
        timeline = throttle.timeline()
        assert [s.time for s in timeline] == [1.0, 2.0]
        assert all(0.0 <= s.io_percent <= 100.0 for s in timeline)
