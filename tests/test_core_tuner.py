"""Unit tests for DOTIL (Algorithms 1 and 2)."""

import pytest

from repro.core import (
    ACTION_KEEP,
    ACTION_MOVE,
    Dotil,
    DotilConfig,
    DualStore,
    STATE_GRAPH,
    STATE_RELATIONAL,
)
from repro.errors import TuningError
from repro.rdf import YAGO
from repro.sparql import parse_query

BORN = YAGO.term("wasBornIn")
ADVISOR = YAGO.term("hasAcademicAdvisor")
MARRIED = YAGO.term("isMarriedTo")
GIVEN = YAGO.term("hasGivenName")

ALWAYS_TRANSFER = DotilConfig(prob=1.0)
NEVER_TRANSFER = DotilConfig(prob=0.0)


def make_dual(mini_kg, budget=1000):
    dual = DualStore(storage_budget=budget)
    dual.load(mini_kg)
    return dual


def complex_of(dual, query):
    complex_subquery = dual.identify(query)
    assert complex_subquery is not None
    return complex_subquery


class TestColdStartDecision:
    def test_prob_one_always_transfers_cold_partitions(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        report = tuner.tune([complex_of(dual, advisor_query)])
        assert set(report.transferred) == {BORN, ADVISOR}
        assert dual.design.covers([BORN, ADVISOR])
        assert report.trained_subqueries == 1
        assert report.import_seconds > 0

    def test_prob_zero_never_transfers_cold_partitions(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, NEVER_TRANSFER)
        report = tuner.tune([complex_of(dual, advisor_query)])
        assert report.transferred == []
        assert dual.design.graph_partitions == frozenset()

    def test_transfer_decision_is_deterministic_for_a_seed(self, mini_kg, advisor_query):
        outcomes = []
        for _ in range(2):
            dual = make_dual(mini_kg)
            tuner = Dotil(dual, DotilConfig(prob=0.5, seed=123))
            report = tuner.tune([complex_of(dual, advisor_query)] * 3)
            outcomes.append(tuple(sorted(p.value for p in report.transferred)))
        assert outcomes[0] == outcomes[1]


class TestLearning:
    def test_transfer_updates_q01_with_positive_reward(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        tuner.tune([complex_of(dual, advisor_query)])
        for predicate in (BORN, ADVISOR):
            assert tuner.qtable.matrix(predicate).get(STATE_RELATIONAL, ACTION_MOVE) > 0

    def test_resident_partitions_accumulate_keep_reward(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        subquery = complex_of(dual, advisor_query)
        tuner.tune([subquery])
        first = tuner.qtable.matrix(BORN).get(STATE_GRAPH, ACTION_KEEP)
        tuner.tune([subquery])
        second = tuner.qtable.matrix(BORN).get(STATE_GRAPH, ACTION_KEEP)
        assert second > first >= 0

    def test_reward_is_amortised_by_predicate_proportion(self, mini_kg, example1_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        tuner.tune([complex_of(dual, example1_query)])
        # wasBornIn accounts for 3/5 of the complex subquery, the others 1/5 each,
        # so its learned Q(0,1) must be the largest.
        born_value = tuner.qtable.matrix(BORN).get(STATE_RELATIONAL, ACTION_MOVE)
        advisor_value = tuner.qtable.matrix(ADVISOR).get(STATE_RELATIONAL, ACTION_MOVE)
        married_value = tuner.qtable.matrix(MARRIED).get(STATE_RELATIONAL, ACTION_MOVE)
        assert born_value > advisor_value
        assert born_value > married_value
        assert advisor_value == pytest.approx(married_value, rel=0.2)

    def test_qmatrix_sum_reported(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        report = tuner.tune([complex_of(dual, advisor_query)])
        assert sum(report.qmatrix_sum) > 0
        assert report.qmatrix_sum == tuner.qtable.summed()

    def test_proportions_helper(self, mini_kg, example1_query):
        dual = make_dual(mini_kg)
        proportions = Dotil._predicate_proportions(complex_of(dual, example1_query).query)
        assert proportions[BORN] == pytest.approx(3 / 5)
        assert proportions[ADVISOR] == pytest.approx(1 / 5)
        assert sum(proportions.values()) == pytest.approx(1.0)


class TestBudgetAndEviction:
    def test_partition_set_larger_than_budget_is_never_transferred(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg, budget=5)  # wasBornIn alone has 7 triples
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        report = tuner.tune([complex_of(dual, advisor_query)])
        assert report.transferred == []
        assert dual.design.graph_partitions == frozenset()

    def test_eviction_makes_room_for_new_partitions(self, mini_kg):
        # Budget 11 fits wasBornIn+hasAcademicAdvisor (7+3) but adding
        # isMarriedTo (2) requires evicting something first.
        dual = make_dual(mini_kg, budget=11)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        advisor_subquery = complex_of(dual, parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . }"
        ))
        marriage_subquery = complex_of(dual, parse_query(
            "SELECT ?p WHERE { ?p y:isMarriedTo ?q . ?p y:wasBornIn ?c . ?q y:wasBornIn ?c . }"
        ))
        tuner.tune([advisor_subquery])
        assert dual.design.covers([BORN, ADVISOR])
        report = tuner.tune([marriage_subquery])
        # advisor had to give way (its keep-reward is lowest among non-needed residents)
        assert ADVISOR in report.evicted
        assert dual.design.covers([BORN, MARRIED])

    def test_eviction_never_removes_partitions_needed_by_the_subquery(self, mini_kg):
        dual = make_dual(mini_kg, budget=12)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        marriage_subquery = complex_of(dual, parse_query(
            "SELECT ?p WHERE { ?p y:isMarriedTo ?q . ?p y:wasBornIn ?c . ?q y:wasBornIn ?c . }"
        ))
        tuner.tune([marriage_subquery])
        report = tuner.tune([marriage_subquery])
        assert BORN not in report.evicted
        assert MARRIED not in report.evicted


class TestGuards:
    def test_tune_requires_loaded_dual_store(self):
        dual = DualStore()
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        with pytest.raises(TuningError):
            tuner.tune([])

    def test_empty_batch_is_a_no_op(self, mini_kg):
        dual = make_dual(mini_kg)
        report = Dotil(dual, ALWAYS_TRANSFER).tune([])
        assert report.transferred == [] and report.trained_subqueries == 0

    def test_warm_up_delegates_to_tune(self, mini_kg, advisor_query):
        dual = make_dual(mini_kg)
        tuner = Dotil(dual, ALWAYS_TRANSFER)
        report = tuner.warm_up([complex_of(dual, advisor_query)])
        assert set(report.transferred) == {BORN, ADVISOR}
