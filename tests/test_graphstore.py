"""Unit tests for the property graph, the traversal matcher, and the graph store."""

import pytest

from repro.errors import StorageBudgetExceeded, StorageError, UnknownPartitionError
from repro.graphstore import GraphStore, PropertyGraph
from repro.rdf import Literal, Triple, YAGO
from repro.relstore import RelationalStore
from repro.sparql import parse_query

BORN = YAGO.term("wasBornIn")
ADVISOR = YAGO.term("hasAcademicAdvisor")
MARRIED = YAGO.term("isMarriedTo")
GIVEN = YAGO.term("hasGivenName")
FAMILY = YAGO.term("hasFamilyName")


class TestPropertyGraph:
    def test_add_edge_deduplicates(self):
        graph = PropertyGraph()
        assert graph.add_edge(YAGO.Alice, BORN, YAGO.Berlin)
        assert not graph.add_edge(YAGO.Alice, BORN, YAGO.Berlin)
        assert graph.edge_count() == 1
        assert graph.vertex_count() == 2

    def test_adjacency_lists(self, mini_kg):
        graph = PropertyGraph()
        graph.add_triples(mini_kg)
        assert graph.out_neighbours(YAGO.term("Alice"), BORN) == [YAGO.term("Berlin")]
        assert set(graph.in_neighbours(YAGO.term("Berlin"), BORN)) == {
            YAGO.term("Alice"),
            YAGO.term("Bob"),
            YAGO.term("Dave"),
        }
        assert graph.out_neighbours(YAGO.term("Alice"), MARRIED) == []

    def test_edges_by_predicate(self, mini_kg):
        graph = PropertyGraph()
        graph.add_triples(mini_kg)
        assert len(list(graph.edges(BORN))) == 7
        assert graph.predicate_count(BORN) == 7

    def test_remove_predicate_cleans_up(self, mini_kg):
        graph = PropertyGraph()
        graph.add_triples(mini_kg)
        removed = graph.remove_predicate(MARRIED)
        assert removed == 2
        assert graph.predicate_count(MARRIED) == 0
        assert list(graph.edges(MARRIED)) == []
        assert MARRIED not in graph.predicates()

    def test_remove_predicate_drops_isolated_vertices(self):
        graph = PropertyGraph()
        graph.add_edge(YAGO.Alice, MARRIED, YAGO.Bob)
        graph.remove_predicate(MARRIED)
        assert graph.vertex_count() == 0

    def test_degree_and_contains(self):
        graph = PropertyGraph()
        graph.add_edge(YAGO.Alice, BORN, YAGO.Berlin)
        graph.add_edge(YAGO.Bob, MARRIED, YAGO.Alice)
        assert graph.degree(YAGO.Alice) == 2
        assert (YAGO.Alice, BORN, YAGO.Berlin) in graph
        assert graph.has_vertex(YAGO.Berlin)

    def test_triples_round_trip(self, mini_kg):
        graph = PropertyGraph()
        graph.add_triples(mini_kg)
        assert set(graph.triples()) == set(mini_kg)


class TestGraphStorePartitions:
    def _partition(self, mini_kg, predicate):
        return [t for t in mini_kg if t.predicate == predicate]

    def test_load_partition_and_coverage(self, mini_kg):
        store = GraphStore(storage_budget=100)
        seconds = store.load_partition(BORN, self._partition(mini_kg, BORN))
        assert seconds > 0
        assert store.covers({BORN})
        assert not store.covers({BORN, ADVISOR})
        assert store.used_capacity() == 7
        assert store.partition_size(BORN) == 7

    def test_budget_is_enforced(self, mini_kg):
        store = GraphStore(storage_budget=3)
        with pytest.raises(StorageBudgetExceeded):
            store.load_partition(BORN, self._partition(mini_kg, BORN))
        assert store.used_capacity() == 0

    def test_unbounded_store_accepts_everything(self, mini_kg):
        store = GraphStore(storage_budget=None)
        for predicate in mini_kg.predicates:
            store.load_partition(predicate, self._partition(mini_kg, predicate))
        assert store.used_capacity() == len(mini_kg)
        assert store.remaining_capacity() is None

    def test_load_partition_rejects_foreign_triples(self, mini_kg):
        store = GraphStore()
        with pytest.raises(StorageError):
            store.load_partition(BORN, self._partition(mini_kg, ADVISOR))

    def test_reload_partition_is_idempotent(self, mini_kg):
        store = GraphStore(storage_budget=50)
        store.load_partition(BORN, self._partition(mini_kg, BORN))
        store.load_partition(BORN, self._partition(mini_kg, BORN))
        assert store.used_capacity() == 7

    def test_evict_partition(self, mini_kg):
        store = GraphStore(storage_budget=50)
        store.load_partition(BORN, self._partition(mini_kg, BORN))
        removed = store.evict_partition(BORN)
        assert removed == 7
        assert store.used_capacity() == 0
        with pytest.raises(UnknownPartitionError):
            store.evict_partition(BORN)

    def test_clear(self, mini_kg):
        store = GraphStore(storage_budget=50)
        store.load_partition(BORN, self._partition(mini_kg, BORN))
        store.load_partition(ADVISOR, self._partition(mini_kg, ADVISOR))
        store.clear()
        assert store.used_capacity() == 0
        assert store.loaded_predicates == set()

    def test_import_cost_accumulates(self, mini_kg):
        store = GraphStore(storage_budget=50)
        store.load_partition(BORN, self._partition(mini_kg, BORN))
        store.load_partition(ADVISOR, self._partition(mini_kg, ADVISOR))
        assert store.import_count == 2
        assert store.total_import_seconds > 0

    def test_negative_budget_rejected(self):
        with pytest.raises(StorageError):
            GraphStore(storage_budget=-1)


class TestGraphStoreQueries:
    @pytest.fixture()
    def loaded_store(self, mini_kg):
        store = GraphStore(storage_budget=None)
        for predicate in mini_kg.predicates:
            store.load_partition(predicate, [t for t in mini_kg if t.predicate == predicate])
        return store

    def test_advisor_query_matches_relational_answer(self, mini_kg, loaded_store, advisor_query):
        relational = RelationalStore()
        relational.load(mini_kg)
        graph_result = loaded_store.execute(advisor_query)
        relational_result = relational.execute(advisor_query)
        assert graph_result.distinct_rows() == relational_result.distinct_rows()

    def test_example1_query_matches_relational_answer(self, mini_kg, loaded_store, example1_query):
        relational = RelationalStore()
        relational.load(mini_kg)
        assert (
            loaded_store.execute(example1_query).distinct_rows()
            == relational.execute(example1_query).distinct_rows()
        )

    def test_missing_partition_raises(self, mini_kg):
        store = GraphStore(storage_budget=None)
        store.load_partition(BORN, [t for t in mini_kg if t.predicate == BORN])
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . }")
        with pytest.raises(StorageError):
            store.execute(query)

    def test_traversal_cost_scales_with_neighbourhood_not_graph(self, mini_kg, loaded_store):
        narrow = parse_query("SELECT ?c WHERE { <%s> y:wasBornIn ?c . }" % YAGO.term("Alice").value)
        wide = parse_query("SELECT ?p ?c WHERE { ?p y:wasBornIn ?c . }")
        narrow_result = loaded_store.execute(narrow)
        wide_result = loaded_store.execute(wide)
        assert narrow_result.counters.edges_traversed < wide_result.counters.edges_traversed

    def test_filters_and_limit_in_graph_store(self, loaded_store):
        query = parse_query(
            'SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . ?p y:wasBornIn ?c . FILTER(?n != "Eve") } LIMIT 2'
        )
        result = loaded_store.execute(query)
        assert len(result) == 2
        assert all(binding["n"] != Literal("Eve") for binding in result.bindings)

    def test_graph_seconds_are_priced_by_cost_model(self, loaded_store, advisor_query):
        result = loaded_store.execute(advisor_query)
        assert result.seconds == pytest.approx(
            loaded_store.cost_model.graph_query_seconds(result.counters)
        )
        assert result.store == "graph"

    def test_pattern_order_override(self, loaded_store, advisor_query):
        default = loaded_store.execute(advisor_query)
        naive = loaded_store.execute(advisor_query, pattern_order=list(advisor_query.patterns))
        assert default.distinct_rows() == naive.distinct_rows()


class TestGraphStoreBudgetAtomicity:
    """Regression: ``load_partition``'s budget check and partition insert
    were two separate steps, so two concurrent loaders (e.g. two tuning
    daemons calling ``apply_moves`` on one store) could both pass ``fits()``
    and together exceed the budget.  The check-then-insert now runs under
    one lock."""

    @staticmethod
    def _partition(index: int, size: int):
        predicate = YAGO.term(f"stress_p{index}")
        return predicate, [
            Triple(YAGO.term(f"s{index}_{row}"), predicate, YAGO.term(f"o{index}_{row}"))
            for row in range(size)
        ]

    def test_two_threads_never_exceed_the_budget(self):
        import threading

        partition_size = 40
        # Room for exactly three partitions: with six loaded concurrently
        # from two threads, at least three must be rejected.
        store = GraphStore(storage_budget=3 * partition_size)
        partitions = [self._partition(i, partition_size) for i in range(6)]
        overshoots = []
        rejected = []
        barrier = threading.Barrier(2)

        def loader(chunk):
            barrier.wait(timeout=10)
            for predicate, triples in chunk:
                try:
                    store.load_partition(predicate, triples)
                except StorageBudgetExceeded:
                    rejected.append(predicate)
                used = store.used_capacity()
                if used > store.storage_budget:
                    overshoots.append(used)

        threads = [
            threading.Thread(target=loader, args=(partitions[:3],)),
            threading.Thread(target=loader, args=(partitions[3:],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert not overshoots, f"budget exceeded: {overshoots}"
        assert store.used_capacity() <= store.storage_budget
        assert store.used_capacity() == 3 * partition_size
        assert len(rejected) == 3
        # Import accounting is updated under the same lock: no lost updates.
        assert store.import_count == 3
        assert store.total_import_seconds == pytest.approx(
            3 * store.cost_model.graph_import_seconds(partition_size)
        )

    def test_stress_interleaved_load_evict_keeps_budget_invariant(self):
        import random
        import threading

        store = GraphStore(storage_budget=100)
        partitions = [self._partition(i, 30) for i in range(8)]
        overshoots = []

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(60):
                predicate, triples = partitions[rng.randrange(len(partitions))]
                try:
                    if rng.random() < 0.6:
                        store.load_partition(predicate, triples)
                    else:
                        store.evict_partition(predicate)
                except (StorageBudgetExceeded, UnknownPartitionError):
                    pass
                if store.used_capacity() > store.storage_budget:
                    overshoots.append(store.used_capacity())

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not overshoots, f"budget exceeded: {overshoots}"
