"""Unit tests for the Q-learning machinery and the dual-store design objects."""

import pytest

from repro.core import (
    ACTION_KEEP,
    ACTION_MOVE,
    DualStoreDesign,
    QMatrix,
    QTable,
    STATE_GRAPH,
    STATE_RELATIONAL,
    TriplePartition,
)
from repro.errors import TuningError, UnknownPartitionError
from repro.rdf import YAGO

BORN = YAGO.term("wasBornIn")
ADVISOR = YAGO.term("hasAcademicAdvisor")
NAME = YAGO.term("hasGivenName")


class TestQMatrix:
    def test_initial_matrix_is_zero_and_cold(self):
        matrix = QMatrix()
        assert matrix.flatten() == (0.0, 0.0, 0.0, 0.0)
        assert matrix.is_cold()
        assert matrix.total() == 0.0

    def test_update_transfer_entry_follows_equation_4(self):
        matrix = QMatrix()
        new_value = matrix.update(STATE_RELATIONAL, ACTION_MOVE, reward=10.0, alpha=0.5, gamma=0.5)
        # Q(0,1) = (1-0.5)*0 + 0.5*(10 + 0.5*max(Q[1,:])) = 5.0
        assert new_value == pytest.approx(5.0)
        assert not matrix.is_cold()

    def test_update_uses_next_state_future_value(self):
        matrix = QMatrix()
        matrix.set(STATE_GRAPH, ACTION_KEEP, 4.0)
        new_value = matrix.update(STATE_RELATIONAL, ACTION_MOVE, reward=10.0, alpha=0.5, gamma=0.5)
        # max over next state (graph) is 4.0 -> 0.5*(10 + 0.5*4) = 6.0
        assert new_value == pytest.approx(6.0)

    def test_keep_in_graph_accumulates(self):
        matrix = QMatrix()
        first = matrix.update(STATE_GRAPH, ACTION_KEEP, reward=2.0, alpha=0.5, gamma=0.5)
        second = matrix.update(STATE_GRAPH, ACTION_KEEP, reward=2.0, alpha=0.5, gamma=0.5)
        assert second > first

    def test_pinned_entries_stay_zero(self):
        matrix = QMatrix()
        matrix.update(STATE_RELATIONAL, ACTION_KEEP, reward=100.0, alpha=0.5, gamma=0.5)
        matrix.update(STATE_GRAPH, ACTION_MOVE, reward=100.0, alpha=0.5, gamma=0.5)
        assert matrix.get(STATE_RELATIONAL, ACTION_KEEP) == 0.0
        assert matrix.get(STATE_GRAPH, ACTION_MOVE) == 0.0

    def test_alpha_zero_means_no_learning_alpha_one_means_full_replacement(self):
        slow = QMatrix()
        slow.set(STATE_RELATIONAL, ACTION_MOVE, 3.0)
        fast = QMatrix()
        fast.set(STATE_RELATIONAL, ACTION_MOVE, 3.0)
        slow.update(STATE_RELATIONAL, ACTION_MOVE, reward=10.0, alpha=0.0001, gamma=0.0)
        fast.update(STATE_RELATIONAL, ACTION_MOVE, reward=10.0, alpha=1.0, gamma=0.0)
        assert slow.get(STATE_RELATIONAL, ACTION_MOVE) == pytest.approx(3.0, abs=0.01)
        assert fast.get(STATE_RELATIONAL, ACTION_MOVE) == pytest.approx(10.0)

    def test_transfer_margin_and_eviction_key(self):
        matrix = QMatrix()
        matrix.set(STATE_RELATIONAL, ACTION_MOVE, 2.0)
        matrix.set(STATE_GRAPH, ACTION_KEEP, 3.0)
        assert matrix.transfer_margin() == pytest.approx(2.0)
        assert matrix.eviction_key() == pytest.approx(-3.0)

    def test_invalid_state_or_action_raises(self):
        with pytest.raises(TuningError):
            QMatrix().get(2, 0)
        with pytest.raises(TuningError):
            QMatrix().update(0, 5, 1.0, 0.5, 0.5)

    def test_updates_counter(self):
        matrix = QMatrix()
        matrix.update(STATE_RELATIONAL, ACTION_MOVE, 1.0, 0.5, 0.5)
        matrix.update(STATE_GRAPH, ACTION_KEEP, 1.0, 0.5, 0.5)
        assert matrix.updates == 2


class TestQTable:
    def test_matrix_is_created_lazily_per_partition(self):
        table = QTable()
        assert BORN not in table
        matrix = table.matrix(BORN)
        assert BORN in table
        assert table.matrix(BORN) is matrix
        assert len(table) == 1

    def test_summed_adds_elementwise(self):
        table = QTable()
        table.matrix(BORN).set(STATE_RELATIONAL, ACTION_MOVE, 1.0)
        table.matrix(ADVISOR).set(STATE_RELATIONAL, ACTION_MOVE, 2.0)
        table.matrix(ADVISOR).set(STATE_GRAPH, ACTION_KEEP, 4.0)
        assert table.summed() == (0.0, 3.0, 4.0, 0.0)
        assert table.total() == pytest.approx(7.0)

    def test_reset(self):
        table = QTable()
        table.matrix(BORN)
        table.reset()
        assert len(table) == 0


class TestDualStoreDesign:
    def _design(self, budget=10):
        return DualStoreDesign.from_sizes({BORN: 7, ADVISOR: 3, NAME: 5}, storage_budget=budget)

    def test_relational_partitions_always_hold_everything(self):
        design = self._design()
        assert design.relational_partitions == frozenset({BORN, ADVISOR, NAME})
        assert design.graph_partitions == frozenset()

    def test_transfer_and_evict_bookkeeping(self):
        design = self._design()
        design.mark_transferred(BORN)
        assert design.graph_partitions == frozenset({BORN})
        assert design.used_budget() == 7
        assert design.remaining_budget() == 3
        design.mark_evicted(BORN)
        assert design.used_budget() == 0

    def test_fits(self):
        design = self._design(budget=10)
        assert design.fits([BORN, ADVISOR])
        assert not design.fits([BORN, ADVISOR, NAME])
        design.mark_transferred(BORN)
        assert design.fits([BORN, ADVISOR])  # already-resident partitions are free

    def test_covers(self):
        design = self._design()
        design.mark_transferred(BORN)
        assert design.covers([BORN])
        assert not design.covers([BORN, NAME])

    def test_unknown_partition_raises(self):
        design = self._design()
        with pytest.raises(UnknownPartitionError):
            design.mark_transferred(YAGO.term("unknown"))
        with pytest.raises(UnknownPartitionError):
            design.mark_evicted(BORN)
        with pytest.raises(UnknownPartitionError):
            design.size_of(YAGO.term("unknown"))

    def test_constructor_validates_graph_partitions(self):
        with pytest.raises(UnknownPartitionError):
            DualStoreDesign.from_sizes({BORN: 7}, storage_budget=10, in_graph_store=[NAME])

    def test_copy_is_independent(self):
        design = self._design()
        clone = design.copy()
        clone.mark_transferred(BORN)
        assert design.graph_partitions == frozenset()

    def test_partitions_iterates_sorted_metadata(self):
        design = self._design()
        partitions = list(design.partitions())
        assert all(isinstance(p, TriplePartition) for p in partitions)
        assert [p.size for p in partitions] == [3, 5, 7] or len(partitions) == 3
