"""Unit tests for the BGP algebra helpers."""

import pytest

from repro.rdf import Literal, Variable, YAGO
from repro.sparql import (
    TriplePattern,
    connected_components,
    is_connected,
    join_variables,
    merge_bindings,
    order_patterns_greedily,
    parse_query,
    pattern_selectivity_key,
    query_shape,
    shared_variables,
)


def pattern(s, p, o):
    return TriplePattern(s, p, o)


V = Variable
BORN = YAGO.wasBornIn
ADVISOR = YAGO.hasAcademicAdvisor
NAME = YAGO.hasGivenName


class TestJoinStructure:
    def test_join_variables(self):
        patterns = [
            pattern(V("p"), BORN, V("c")),
            pattern(V("p"), ADVISOR, V("a")),
            pattern(V("a"), BORN, V("c")),
        ]
        assert join_variables(patterns) == {"p", "a", "c"}

    def test_join_variables_excludes_singletons(self):
        patterns = [pattern(V("p"), BORN, V("c")), pattern(V("p"), NAME, V("n"))]
        assert join_variables(patterns) == {"p"}

    def test_connected_components_single_component(self):
        patterns = [
            pattern(V("p"), BORN, V("c")),
            pattern(V("p"), ADVISOR, V("a")),
        ]
        assert connected_components(patterns) == [[0, 1]]
        assert is_connected(patterns)

    def test_connected_components_disconnected(self):
        patterns = [pattern(V("p"), BORN, V("c")), pattern(V("x"), NAME, V("n"))]
        assert connected_components(patterns) == [[0], [1]]
        assert not is_connected(patterns)

    def test_empty_pattern_list_is_connected(self):
        assert is_connected([])

    def test_shared_variables(self):
        left = [pattern(V("p"), BORN, V("c"))]
        right = [pattern(V("p"), NAME, V("n"))]
        assert shared_variables(left, right) == frozenset({"p"})


class TestBindings:
    def test_merge_compatible_bindings(self):
        merged = merge_bindings({"a": Literal("1")}, {"b": Literal("2")})
        assert merged == {"a": Literal("1"), "b": Literal("2")}

    def test_merge_conflicting_bindings_returns_none(self):
        assert merge_bindings({"a": Literal("1")}, {"a": Literal("2")}) is None

    def test_merge_same_value_is_fine(self):
        assert merge_bindings({"a": Literal("1")}, {"a": Literal("1")}) == {"a": Literal("1")}


class TestOrdering:
    def test_selectivity_key_prefers_more_bound_positions(self):
        bound = pattern(YAGO.Alice, BORN, V("c"))
        unbound = pattern(V("p"), BORN, V("c"))
        assert pattern_selectivity_key(bound) < pattern_selectivity_key(unbound)

    def test_greedy_order_starts_with_most_selective(self):
        patterns = [
            pattern(V("p"), BORN, V("c")),
            pattern(V("p"), NAME, Literal("Alice")),
        ]
        ordered = order_patterns_greedily(patterns)
        assert ordered[0].object == Literal("Alice")

    def test_greedy_order_keeps_connectivity(self):
        patterns = [
            pattern(V("a"), BORN, V("c")),
            pattern(V("p"), ADVISOR, V("a")),
            pattern(V("p"), NAME, Literal("Alice")),
        ]
        ordered = order_patterns_greedily(patterns)
        seen = set(ordered[0].variable_names())
        for pat in ordered[1:]:
            assert pat.variable_names() & seen
            seen |= pat.variable_names()

    def test_greedy_order_uses_cardinalities(self):
        patterns = [pattern(V("p"), BORN, V("c")), pattern(V("p"), ADVISOR, V("a"))]
        ordered = order_patterns_greedily(patterns, cardinality={BORN: 1000, ADVISOR: 10})
        assert ordered[0].predicate == ADVISOR

    def test_greedy_order_preserves_pattern_multiset(self):
        patterns = [
            pattern(V("p"), BORN, V("c")),
            pattern(V("p"), ADVISOR, V("a")),
            pattern(V("a"), BORN, V("c")),
        ]
        assert sorted(p.n3() for p in order_patterns_greedily(patterns)) == sorted(
            p.n3() for p in patterns
        )

    def test_empty_input(self):
        assert order_patterns_greedily([]) == []


class TestQueryShape:
    @pytest.mark.parametrize(
        "text, shape",
        [
            (
                "SELECT ?a WHERE { ?a y:wasBornIn ?b . ?b y:isLocatedIn ?c . ?c y:hasLabel ?d . }",
                "linear",
            ),
            (
                "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasGivenName ?n . ?p y:hasFamilyName ?f . }",
                "star",
            ),
            (
                "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . "
                "?a y:wasBornIn ?c . }",
                "complex",
            ),
            ("SELECT ?p WHERE { ?p y:wasBornIn ?c . }", "linear"),
        ],
    )
    def test_shapes(self, text, shape):
        assert query_shape(parse_query(text)) == shape
