"""Unit tests for dictionary encoding of terms."""

import pytest

from repro.errors import StorageError
from repro.rdf import IRI, Literal, TermDictionary, Triple, YAGO


class TestTermDictionary:
    def test_encode_assigns_dense_ids_in_first_seen_order(self):
        dictionary = TermDictionary()
        ids = [dictionary.encode(YAGO.term(f"e{i}")) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert len(dictionary) == 5

    def test_encode_is_idempotent(self):
        dictionary = TermDictionary()
        first = dictionary.encode(YAGO.Alice)
        second = dictionary.encode(YAGO.Alice)
        assert first == second
        assert len(dictionary) == 1

    def test_decode_inverts_encode(self):
        dictionary = TermDictionary()
        term = Literal("42")
        assert dictionary.decode(dictionary.encode(term)) == term

    def test_decode_out_of_range_raises(self):
        with pytest.raises(StorageError):
            TermDictionary().decode(0)

    def test_encode_existing_raises_for_unknown_term(self):
        with pytest.raises(StorageError):
            TermDictionary().encode_existing(YAGO.Alice)

    def test_lookup_returns_none_for_unknown_term(self):
        assert TermDictionary().lookup(YAGO.Alice) is None

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode(YAGO.Alice)
        assert YAGO.Alice in dictionary
        assert YAGO.Bob not in dictionary

    def test_triple_round_trip(self):
        dictionary = TermDictionary()
        triple = Triple(YAGO.Alice, YAGO.term("knows"), YAGO.Bob)
        encoded = dictionary.encode_triple(triple)
        assert dictionary.decode_triple(encoded) == triple

    def test_encoding_is_deterministic_for_same_input_order(self):
        triples = [
            Triple(YAGO.term(f"s{i}"), YAGO.term("p"), Literal(str(i))) for i in range(10)
        ]
        first = list(TermDictionary().encode_triples(triples))
        second = list(TermDictionary().encode_triples(triples))
        assert first == second

    def test_items_and_terms_are_consistent(self):
        dictionary = TermDictionary()
        for index in range(4):
            dictionary.encode(IRI(f"http://x.org/{index}"))
        assert {term_id for _term, term_id in dictionary.items()} == set(range(4))
        assert len(list(dictionary.terms())) == 4


class TestBatchHelpers:
    def test_decode_many_round_trips_in_order(self):
        dictionary = TermDictionary()
        terms = [YAGO.term(f"e{i}") for i in range(4)] + [Literal("x")]
        ids = [dictionary.encode(t) for t in terms]
        assert dictionary.decode_many(ids) == terms
        assert dictionary.decode_many(reversed(ids)) == list(reversed(terms))
        assert dictionary.decode_many([]) == []

    def test_decode_many_checks_bounds_like_decode(self):
        dictionary = TermDictionary()
        dictionary.encode(YAGO.Alice)
        with pytest.raises(StorageError):
            dictionary.decode_many([0, 1])
        with pytest.raises(StorageError):
            dictionary.decode_many([-1])

    def test_lookup_many_mixes_known_and_unknown(self):
        dictionary = TermDictionary()
        known = YAGO.Alice
        dictionary.encode(known)
        assert dictionary.lookup_many([known, YAGO.term("ghost"), known]) == [0, None, 0]
