"""Unit tests for configuration objects and metric records."""

import pytest

from repro.core import (
    BatchResult,
    DEFAULT_CONFIG,
    DotilConfig,
    PAPER_TUNED_CONFIG,
    QueryRecord,
    WorkloadResult,
    improvement_percent,
)
from repro.errors import ConfigError
from repro.sparql import parse_query


QUERY = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }")


def record(seconds, route="relational", graph=0.0):
    return QueryRecord(
        query=QUERY,
        seconds=seconds,
        route=route,
        result_count=1,
        graph_seconds=graph,
        relational_seconds=seconds - graph,
    )


class TestDotilConfig:
    def test_defaults_match_paper_table4(self):
        assert DEFAULT_CONFIG.r_bg == 0.25
        assert DEFAULT_CONFIG.prob == 0.5
        assert DEFAULT_CONFIG.alpha == 0.5
        assert DEFAULT_CONFIG.gamma == 0.5
        assert DEFAULT_CONFIG.lam == 3.5

    def test_paper_tuned_values_match_section_631(self):
        assert PAPER_TUNED_CONFIG.prob == 0.9
        assert PAPER_TUNED_CONFIG.gamma == 0.7
        assert PAPER_TUNED_CONFIG.lam == 4.5

    @pytest.mark.parametrize(
        "overrides",
        [
            {"r_bg": 0.0},
            {"r_bg": 1.5},
            {"prob": -0.1},
            {"prob": 1.1},
            {"alpha": 0.0},
            {"gamma": 1.0},
            {"lam": 0.5},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            DotilConfig(**overrides)

    def test_with_overrides_validates(self):
        assert DEFAULT_CONFIG.with_overrides(gamma=0.7).gamma == 0.7
        with pytest.raises(ConfigError):
            DEFAULT_CONFIG.with_overrides(gamma=2.0)


class TestMetrics:
    def test_batch_tti_is_sum_of_records(self):
        batch = BatchResult(index=0, records=[record(1.0), record(2.0)])
        assert batch.tti == pytest.approx(3.0)
        assert len(batch) == 2

    def test_graph_cost_share(self):
        batch = BatchResult(index=0, records=[record(2.0, route="split", graph=0.5)])
        assert batch.graph_cost_share == pytest.approx(0.25)
        assert BatchResult(index=1).graph_cost_share == 0.0

    def test_route_counts(self):
        batch = BatchResult(
            index=0, records=[record(1.0), record(1.0, route="split"), record(1.0, route="split")]
        )
        assert batch.route_counts() == {"relational": 1, "split": 2}

    def test_workload_result_aggregates(self):
        result = WorkloadResult(
            label="demo",
            batches=[
                BatchResult(index=0, records=[record(1.0)]),
                BatchResult(index=1, records=[record(3.0, route="split", graph=1.0)]),
            ],
        )
        assert result.total_tti == pytest.approx(4.0)
        assert result.batch_ttis() == [1.0, 3.0]
        assert result.graph_cost_shares()[1] == pytest.approx(1.0 / 3.0)
        assert result.record_count() == 2

    @pytest.mark.parametrize(
        "baseline, improved, expected",
        [
            (10.0, 5.0, 50.0),
            (10.0, 10.0, 0.0),
            (10.0, 12.0, -20.0),
            (0.0, 5.0, 0.0),
        ],
    )
    def test_improvement_percent(self, baseline, improved, expected):
        assert improvement_percent(baseline, improved) == pytest.approx(expected)
