"""Unit tests for the baseline tuning policies (one-off, LRU, ideal, static)."""

import pytest

from repro.core import DualStore, IdealTuner, LRUTuner, OneOffTuner, StaticTuner
from repro.rdf import YAGO
from repro.sparql import parse_query

BORN = YAGO.term("wasBornIn")
ADVISOR = YAGO.term("hasAcademicAdvisor")
MARRIED = YAGO.term("isMarriedTo")


def make_dual(mini_kg, budget=1000):
    dual = DualStore(storage_budget=budget)
    dual.load(mini_kg)
    return dual


def advisor_subquery(dual):
    return dual.identify(
        parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . }"
        )
    )


def marriage_subquery(dual):
    return dual.identify(
        parse_query(
            "SELECT ?p WHERE { ?p y:isMarriedTo ?q . ?p y:wasBornIn ?c . ?q y:wasBornIn ?c . }"
        )
    )


class TestStaticTuner:
    def test_never_changes_the_design(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = StaticTuner(dual)
        report = tuner.tune([advisor_subquery(dual)])
        assert report.transferred == [] and report.evicted == []
        assert dual.design.graph_partitions == frozenset()


class TestOneOffTuner:
    def test_prepare_tunes_once_for_the_whole_workload(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = OneOffTuner(dual)
        tuner.prepare([advisor_subquery(dual), marriage_subquery(dual)])
        assert dual.design.covers([BORN, ADVISOR, MARRIED])

    def test_prepare_respects_the_budget(self, mini_kg):
        dual = make_dual(mini_kg, budget=6)  # wasBornIn (7) does not fit
        tuner = OneOffTuner(dual)
        tuner.prepare([advisor_subquery(dual), marriage_subquery(dual)])
        assert BORN not in dual.design.graph_partitions
        assert dual.design.used_budget() <= 6

    def test_tune_after_prepare_is_static(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = OneOffTuner(dual)
        tuner.prepare([advisor_subquery(dual)])
        before = set(dual.design.graph_partitions)
        tuner.tune([marriage_subquery(dual)])
        assert set(dual.design.graph_partitions) == before

    def test_prepare_is_idempotent(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = OneOffTuner(dual)
        tuner.prepare([advisor_subquery(dual)])
        tuner.prepare([marriage_subquery(dual)])  # ignored: already tuned
        assert MARRIED not in dual.design.graph_partitions


class TestLRUTuner:
    def test_transfers_frequent_partitions(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = LRUTuner(dual)
        report = tuner.tune([advisor_subquery(dual)])
        assert set(report.transferred) == {BORN, ADVISOR}

    def test_eviction_prefers_least_recently_used(self, mini_kg):
        dual = make_dual(mini_kg, budget=11)
        tuner = LRUTuner(dual)
        tuner.tune([advisor_subquery(dual)])
        # the marriage subquery arrives repeatedly -> married becomes frequent
        report = tuner.tune([marriage_subquery(dual), marriage_subquery(dual)])
        assert MARRIED in dual.design.graph_partitions
        assert ADVISOR in report.evicted or ADVISOR not in dual.design.graph_partitions

    def test_history_accumulates_across_batches(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = LRUTuner(dual)
        tuner.tune([advisor_subquery(dual)])
        tuner.tune([marriage_subquery(dual)])
        assert dual.design.covers([BORN, ADVISOR, MARRIED])


class TestIdealTuner:
    def test_uses_upcoming_batch_when_available(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = IdealTuner(dual)
        tuner.tune([advisor_subquery(dual)], upcoming=[marriage_subquery(dual)])
        assert dual.design.covers([BORN, MARRIED])

    def test_falls_back_to_recent_batch(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = IdealTuner(dual)
        tuner.tune([advisor_subquery(dual)], upcoming=None)
        assert dual.design.covers([BORN, ADVISOR])

    def test_keeps_resident_partitions_when_there_is_room(self, mini_kg):
        dual = make_dual(mini_kg)
        tuner = IdealTuner(dual)
        tuner.tune([advisor_subquery(dual)])
        tuner.tune([marriage_subquery(dual)], upcoming=[marriage_subquery(dual)])
        # advisor stays because the budget is large enough
        assert ADVISOR in dual.design.graph_partitions

    def test_evicts_only_when_budget_requires_it(self, mini_kg):
        dual = make_dual(mini_kg, budget=11)
        tuner = IdealTuner(dual)
        tuner.tune([advisor_subquery(dual)])
        report = tuner.tune([marriage_subquery(dual)], upcoming=[marriage_subquery(dual)])
        assert MARRIED in dual.design.graph_partitions
        assert report.evicted  # something had to go
        assert dual.design.used_budget() <= 11
