"""Differential suite: the sharded store must be indistinguishable from the
unsharded store in *answers* and *total work*, for every shard count.

For randomized workloads drawn from every template family (WatDiv L/S/F/C,
YAGO, Bio2RDF) and N ∈ {1, 2, 4, 7}, ``ShardedRelationalStore(N)`` must
return binding-identical results and identical work counters to the single
table ``RelationalStore`` — both standalone and through
``DualStore.run_query`` with transfers, evictions, and inserts interleaved.
Only the *parallel wall-clock* pricing may differ; that is the whole point
of sharding.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DualStore,
    RelationalStore,
    ShardedRelationalStore,
    ShardingConfig,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    bio2rdf_workload,
    watdiv_workload,
    yago_workload,
)
from repro.rdf.terms import IRI, Triple
from repro.relstore.executor import relational_work_units

SHARD_COUNTS = (1, 2, 4, 7)

#: Aggressive skew settings so that subject-sharding (the trickier placement)
#: is actually exercised, not just the one-shard-per-predicate fast path.
AGGRESSIVE = ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=16)


# --------------------------------------------------------------------------- #
# Workloads covering every template family
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def watdiv_dataset():
    return generate_watdiv(target_triples=2500, seed=23)


@pytest.fixture(scope="module")
def family_workloads(watdiv_dataset):
    """(family label, dataset, randomized queries) per template family."""
    rng = random.Random(99)
    cases = []
    for family in ("linear", "star", "snowflake", "complex"):
        workload = watdiv_workload(watdiv_dataset, family=family, seed=rng.randrange(10_000))
        cases.append((f"watdiv-{family}", watdiv_dataset.triples, workload.randomized(seed=rng.randrange(10_000))))
    yago = generate_yago(target_triples=2000, seed=11)
    cases.append(("yago-complex", yago.triples, yago_workload(yago, seed=rng.randrange(10_000)).randomized()))
    bio = generate_bio2rdf(target_triples=2000, seed=13)
    cases.append(("bio2rdf-mixed", bio.triples, bio2rdf_workload(bio, seed=rng.randrange(10_000)).randomized()))
    return cases


@pytest.fixture(scope="module")
def baselines(family_workloads):
    """Unsharded execution of every workload, computed once."""
    out = {}
    for label, triples, queries in family_workloads:
        store = RelationalStore()
        store.load(triples)
        out[label] = [store.execute(query) for query in queries]
    return out


# --------------------------------------------------------------------------- #
# Standalone store differential
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_store_matches_unsharded_for_every_family(shards, family_workloads, baselines, fingerprint):
    for label, triples, queries in family_workloads:
        store = ShardedRelationalStore(shards=shards, config=AGGRESSIVE)
        store.load(triples)
        for query, cold in zip(queries, baselines[label]):
            warm = store.execute(query)
            assert fingerprint(warm) == fingerprint(cold), f"{label}: bindings diverged at N={shards}"
            assert warm.counters.as_dict() == cold.counters.as_dict(), (
                f"{label}: work counters diverged at N={shards}"
            )
            assert relational_work_units(warm.counters) == relational_work_units(cold.counters)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_limit_queries_agree_on_count_and_work_not_necessarily_rows(shards, watdiv_dataset, fingerprint):
    """LIMIT without ORDER BY is an arbitrary subset under SPARQL semantics;
    the documented contract is count + work parity plus subset validity,
    not identical truncation choices (see relstore/sharded.py docstring)."""
    from dataclasses import replace

    base = RelationalStore()
    base.load(watdiv_dataset.triples)
    store = ShardedRelationalStore(shards=shards, config=AGGRESSIVE)
    store.load(watdiv_dataset.triples)
    workload = watdiv_workload(watdiv_dataset, family="linear", seed=9)
    for query in workload.ordered()[:8]:
        limited = replace(query, limit=3)
        cold = base.execute(limited)
        warm = store.execute(limited)
        assert len(warm) == len(cold)
        assert warm.counters.as_dict() == cold.counters.as_dict()
        # Every truncated answer is drawn from the full (un-LIMITed) result.
        full = fingerprint(base.execute(query))
        for binding in fingerprint(warm):
            assert binding in full


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_metadata_matches_unsharded(shards, watdiv_dataset):
    base = RelationalStore()
    base.load(watdiv_dataset.triples)
    store = ShardedRelationalStore(shards=shards, config=AGGRESSIVE)
    store.load(watdiv_dataset.triples)
    assert len(store) == len(base)
    assert store.predicates() == base.predicates()
    assert store.partition_sizes() == base.partition_sizes()
    for predicate in base.predicates():
        assert sorted(t.n3() for t in store.partition(predicate)) == sorted(
            t.n3() for t in base.partition(predicate)
        )
    # Statistics drive planning; identical statistics -> identical plans.
    cold = base.statistics()
    warm = store.statistics()
    assert warm.total_rows == cold.total_rows
    assert warm.per_predicate == cold.per_predicate


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_estimates_match_unsharded(shards, watdiv_dataset, family_workloads):
    base = RelationalStore()
    base.load(watdiv_dataset.triples)
    store = ShardedRelationalStore(shards=shards, config=AGGRESSIVE)
    store.load(watdiv_dataset.triples)
    _, _, queries = family_workloads[0]
    for query in queries[:10]:
        assert store.estimate_query_seconds(query) == pytest.approx(
            base.estimate_query_seconds(query)
        )


# --------------------------------------------------------------------------- #
# Dual-store differential with interleaved physical-design changes
# --------------------------------------------------------------------------- #
def _fresh_triples(dataset, count: int, salt: str):
    """New triples on an existing predicate, so inserts change answers."""
    predicate = sorted(dataset.triples.predicates, key=lambda p: p.value)[0]
    return [
        Triple(IRI(f"http://example.org/fresh/{salt}/{i}"), predicate, IRI(f"http://example.org/val/{i}"))
        for i in range(count)
    ]


@pytest.mark.parametrize("shards", (2, 7))
def test_dualstore_runs_identically_with_interleaved_mutations(shards, watdiv_dataset, fingerprint):
    workload = watdiv_workload(watdiv_dataset, seed=41)
    queries = workload.randomized(seed=3)[:40]

    base = DualStore().load(watdiv_dataset.triples)
    sharded = DualStore(shards=shards, sharding=AGGRESSIVE).load(watdiv_dataset.triples)

    rng = random.Random(7)
    transferable = sorted(
        {p for q in queries for p in q.predicates()}, key=lambda p: p.value
    )
    transferred: list = []

    for index, query in enumerate(queries):
        cold = base.run_query(query)
        warm = sharded.run_query(query)
        assert warm.record.route == cold.record.route, f"route diverged at query {index}"
        assert fingerprint(warm.result) == fingerprint(cold.result), f"bindings diverged at query {index}"
        assert warm.result.counters.as_dict() == cold.result.counters.as_dict(), (
            f"work diverged at query {index} on route {cold.record.route}"
        )

        # Interleave physical-design changes and inserts between queries.
        action = index % 5
        if action == 1 and transferable:
            predicate = transferable.pop(rng.randrange(len(transferable)))
            base.transfer_partition(predicate)
            sharded.transfer_partition(predicate)
            transferred.append(predicate)
        elif action == 3 and transferred:
            predicate = transferred.pop(0)
            base.evict_partition(predicate)
            sharded.evict_partition(predicate)
        elif action == 4:
            fresh = _fresh_triples(watdiv_dataset, 5, salt=str(index))
            base.insert(fresh)
            sharded.insert(fresh)
            assert len(base.relational) == len(sharded.relational)

    # The two structures end in the same physical design.
    assert base.graph.loaded_predicates == sharded.graph.loaded_predicates
    assert base.partition_sizes() == sharded.partition_sizes()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_total_work_through_dualstore_is_shard_invariant(shards, watdiv_dataset):
    """`relational_work_for` — the tuner's currency — must not depend on N."""
    workload = watdiv_workload(watdiv_dataset, family="complex", seed=5)
    base = DualStore().load(watdiv_dataset.triples)
    sharded = DualStore(shards=shards, sharding=AGGRESSIVE).load(watdiv_dataset.triples)
    for query in workload.ordered()[:10]:
        assert sharded.relational_work_for(query) == base.relational_work_for(query)
