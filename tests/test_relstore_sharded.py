"""Unit tests for the sharded relational store: placement, promotion,
scatter-gather accounting, per-shard metrics, and backend conformance."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import DualStore, RelationalStore, ShardedRelationalStore, ShardingConfig
from repro.errors import WorkBudgetExceeded
from repro.rdf.terms import IRI, Triple
from repro.relstore.backend import RelationalBackend
from repro.relstore.sharded import SUBJECT_SHARDED
from repro.relstore.table import TripleTable
from repro.sparql.parser import parse_query


def iri(name: str) -> IRI:
    return IRI(f"http://example.org/{name}")


def triples_for(predicate: str, count: int, object_name: str = "o"):
    return [
        Triple(iri(f"s{i}"), iri(predicate), iri(f"{object_name}{i % 7}")) for i in range(count)
    ]


@pytest.fixture()
def store() -> ShardedRelationalStore:
    return ShardedRelationalStore(
        shards=4, config=ShardingConfig(skew_threshold=10.0, min_subject_shard_rows=10_000)
    )


class TestPlacement:
    def test_each_predicate_lives_on_one_shard(self, store):
        store.load(triples_for("p", 5) + triples_for("q", 5))
        for predicate in (iri("p"), iri("q")):
            placement = store.placement(predicate)
            assert placement is not None and placement != SUBJECT_SHARDED
            assert store.partition_size(predicate) == 5
        assert len(store) == 10

    def test_placement_is_deterministic_across_instances(self):
        data = triples_for("p", 8) + triples_for("q", 8)
        a = ShardedRelationalStore(shards=4)
        b = ShardedRelationalStore(shards=4)
        a.load(data)
        b.load(list(reversed(data)))
        assert a.placement(iri("p")) == b.placement(iri("p"))
        assert a.placement(iri("q")) == b.placement(iri("q"))

    def test_duplicate_inserts_are_deduplicated_like_unsharded(self, store):
        data = triples_for("p", 6)
        store.load(data)
        seconds = store.insert(data)  # all duplicates
        assert seconds == 0.0
        assert len(store) == 6

    def test_delete_routes_to_the_owning_shard(self, store):
        data = triples_for("p", 4)
        store.load(data)
        assert store.delete(data[0])
        assert not store.delete(data[0])
        assert len(store) == 3
        assert not store.delete(Triple(iri("nope"), iri("p"), iri("x")))


class TestSkewPromotion:
    def test_mega_predicate_is_promoted_to_subject_sharding(self):
        store = ShardedRelationalStore(
            shards=4, config=ShardingConfig(skew_threshold=0.5, min_subject_shard_rows=8)
        )
        store.load(triples_for("mega", 100) + triples_for("tiny", 3))
        assert store.placement(iri("mega")) == SUBJECT_SHARDED
        assert store.placement(iri("tiny")) != SUBJECT_SHARDED
        assert store.subject_sharded_predicates() == [iri("mega")]
        # The partition is spread over several shards but stays complete.
        assert store.partition_size(iri("mega")) == 100
        assert sorted(t.n3() for t in store.partition(iri("mega"))) == sorted(
            t.n3() for t in triples_for("mega", 100)
        )

    def test_promotion_is_sticky_after_deletes(self):
        store = ShardedRelationalStore(
            shards=2, config=ShardingConfig(skew_threshold=0.1, min_subject_shard_rows=4)
        )
        data = triples_for("mega", 50)
        store.load(data)
        assert store.placement(iri("mega")) == SUBJECT_SHARDED
        for triple in data[:45]:
            assert store.delete(triple)
        assert store.placement(iri("mega")) == SUBJECT_SHARDED
        assert store.partition_size(iri("mega")) == 5

    def test_single_shard_never_promotes(self):
        store = ShardedRelationalStore(
            shards=1, config=ShardingConfig(skew_threshold=0.01, min_subject_shard_rows=1)
        )
        store.load(triples_for("mega", 60))
        assert store.placement(iri("mega")) == 0

    def test_promoted_rows_answer_subject_lookups_from_one_shard(self):
        store = ShardedRelationalStore(
            shards=4, config=ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=4)
        )
        store.load(triples_for("mega", 80))
        result = store.execute(parse_query("SELECT ?o WHERE { <http://example.org/s3> <http://example.org/mega> ?o . }"))
        assert len(result) == 1
        # A subject-bound lookup on a subject-sharded predicate probes exactly
        # one shard, charging one logical and one physical index lookup.
        assert result.counters.index_lookups == 1


class TestExtractPredicate:
    def test_extract_removes_rows_and_leaves_others(self):
        table = TripleTable()
        keep = triples_for("keep", 5)
        extract = triples_for("gone", 7)
        table.insert_all(keep + extract)
        predicate_id = table.dictionary.lookup(iri("gone"))
        removed = table.extract_predicate(predicate_id)
        assert len(removed) == 7
        assert len(table) == 5
        assert table.predicate_cardinality(iri("gone")) == 0
        assert table.predicate_cardinality(iri("keep")) == 5
        assert table.tombstone_count == 7
        assert table.compact() == 7


class TestScatterGatherExecution:
    QUERY = "SELECT ?s ?o WHERE { ?s <http://example.org/p> ?m . ?m <http://example.org/q> ?o . }"

    def _chain_data(self):
        data = []
        for i in range(12):
            data.append(Triple(iri(f"a{i}"), iri("p"), iri(f"m{i % 5}")))
            data.append(Triple(iri(f"m{i % 5}"), iri("q"), iri(f"z{i % 3}")))
        return data

    def test_counters_match_unsharded(self, store, fingerprint):
        data = self._chain_data()
        base = RelationalStore()
        base.load(data)
        store.load(data)
        cold = base.execute(parse_query(self.QUERY))
        warm = store.execute(parse_query(self.QUERY))
        assert warm.counters.as_dict() == cold.counters.as_dict()
        assert fingerprint(warm) == fingerprint(cold)

    def test_single_shard_prices_like_unsharded(self):
        data = self._chain_data()
        base = RelationalStore()
        base.load(data)
        sharded = ShardedRelationalStore(shards=1)
        sharded.load(data)
        cold = base.execute(parse_query(self.QUERY))
        warm = sharded.execute(parse_query(self.QUERY))
        assert warm.seconds == pytest.approx(cold.seconds)
        assert warm.scatter.parallel_seconds == pytest.approx(warm.scatter.serial_seconds)

    def test_scatter_info_accounts_every_shard(self, store):
        store.load(self._chain_data())
        result = store.execute(parse_query(self.QUERY))
        info = result.scatter
        assert info is not None
        assert len(info.shard_seconds) == store.shard_count
        assert info.parallel_seconds == result.seconds
        assert info.serial_seconds == pytest.approx(
            store.cost_model.relational_query_seconds(result.counters)
        )
        # >= 1 up to float summation-order noise between the two pricings.
        assert info.speedup >= 1.0 - 1e-9

    def test_work_budget_aborts_identically(self, store):
        data = self._chain_data()
        base = RelationalStore()
        base.load(data)
        store.load(data)
        query = parse_query(self.QUERY)
        with pytest.raises(WorkBudgetExceeded) as cold:
            base.execute(query, work_budget=3.0)
        with pytest.raises(WorkBudgetExceeded) as warm:
            store.execute(query, work_budget=3.0)
        assert warm.value.partial_work == cold.value.partial_work

    def test_execute_capped_matches_unsharded_price(self, store):
        data = self._chain_data()
        base = RelationalStore()
        base.load(data)
        store.load(data)
        query = parse_query(self.QUERY)
        cold_result, cold_seconds = base.execute_capped(query, work_budget=3.0)
        warm_result, warm_seconds = store.execute_capped(query, work_budget=3.0)
        assert cold_result is None and warm_result is None
        assert warm_seconds == pytest.approx(cold_seconds)

    def test_empty_extra_table_short_circuits_scanning(self, store):
        # A Case 2 plan whose migrated graph-side table is empty must charge
        # zero scan work on the remaining patterns (seed behaviour).
        from repro.execution import ResultTable

        data = self._chain_data()
        base = RelationalStore()
        base.load(data)
        store.load(data)
        empty = ResultTable(name="t", variables=("s",), rows=[])
        query = parse_query(self.QUERY)
        cold = base.execute(query, extra_tables=[empty])
        warm = store.execute(query, extra_tables=[empty])
        assert cold.counters.rows_scanned == 0 and cold.counters.rows_joined == 0
        assert warm.counters.as_dict() == cold.counters.as_dict()
        assert len(cold) == 0 and len(warm) == 0

    def test_absent_index_term_prices_identically_on_one_shard(self):
        # An index step whose bound term never occurs charges one logical
        # lookup; the parallel price must include it even with zero probes.
        data = self._chain_data()
        base = RelationalStore()
        base.load(data)
        sharded = ShardedRelationalStore(shards=1)
        sharded.load(data)
        query = parse_query(
            "SELECT ?o WHERE { <http://example.org/absent> <http://example.org/p> ?o . }"
        )
        cold = base.execute(query)
        warm = sharded.execute(query)
        assert warm.counters.as_dict() == cold.counters.as_dict()
        assert cold.counters.index_lookups == 1
        assert warm.seconds == pytest.approx(cold.seconds, abs=0.0, rel=1e-12)

    def test_pool_scatter_is_deterministic(self):
        store = ShardedRelationalStore(
            shards=4, config=ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=4)
        )
        store.load(self._chain_data() + triples_for("mega", 60))
        query = parse_query(self.QUERY)
        serial = store.execute(query)
        with ThreadPoolExecutor(max_workers=4) as pool:
            store.attach_scatter_pool(pool)
            pooled = store.execute(query)
            store.detach_scatter_pool(pool)
        assert store._scatter_pool is None
        assert pooled.counters.as_dict() == serial.counters.as_dict()
        assert pooled.bindings == serial.bindings  # same gather order, not just same set


class TestShardMetricsBoard:
    def test_probes_are_recorded_per_shard(self, store):
        store.load(triples_for("p", 10))
        store.execute(parse_query("SELECT ?s ?o WHERE { ?s <http://example.org/p> ?o . }"))
        snapshot = store.shard_metrics.snapshot()
        assert len(snapshot) == 4
        probed = [entry for entry in snapshot if entry["probes"] > 0]
        assert len(probed) == 1  # predicate-sharded scan touches one shard
        assert probed[0]["rows_scanned"] == 10.0
        assert probed[0]["busy_seconds"] > 0.0
        assert probed[0]["queue_depth"] == 0.0
        assert probed[0]["peak_queue_depth"] >= 1.0


class TestBackendConformance:
    def test_both_stores_satisfy_the_protocol(self):
        assert isinstance(RelationalStore(), RelationalBackend)
        assert isinstance(ShardedRelationalStore(shards=2), RelationalBackend)

    def test_dualstore_accepts_shards_argument(self):
        dual = DualStore(shards=3)
        assert isinstance(dual.relational, ShardedRelationalStore)
        assert dual.relational.shard_count == 3

    def test_dualstore_accepts_prebuilt_backend(self):
        backend = ShardedRelationalStore(shards=2)
        dual = DualStore(relational_store=backend)
        assert dual.relational is backend

    def test_dualstore_sharding_config_implies_shards(self):
        dual = DualStore(sharding=ShardingConfig(skew_threshold=0.5))
        assert isinstance(dual.relational, ShardedRelationalStore)
        assert dual.relational.shard_count == 4

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedRelationalStore(shards=0)
