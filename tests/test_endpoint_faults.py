"""Fault injection for the endpoint: saturation, worker death, hot reload.

Three fault modes, each pinned to an exact observable contract:

* **queue saturation** — every request beyond the bounded admission queue
  gets ``503`` + ``Retry-After`` and the cumulative ``shed_load`` counter
  matches the client-observed 503s *exactly*;
* **worker killed mid-request** (multi-process) — the in-flight request
  fails with a clean transport error or is retried to success on a
  surviving replica, never a hang;
* **leader commits mid-stream** (multi-process) — workers hot-reload, each
  response body is consistent with its stamped generation (no torn store),
  and a client talking to one worker sees a monotonic generation.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import DualStore
from repro.endpoint import (
    EndpointConfig,
    EndpointPool,
    WorkerSupervisor,
    encode_results,
    fetch_json,
    sparql_request,
)
from repro.endpoint.client import TransportError
from repro.rdf import Literal, Triple, TripleSet, YAGO
from repro.serve import QueryService, ServiceConfig

PROBE = "SELECT ?name WHERE { ?p y:hasGivenName ?name . }"


def _fault_triples() -> TripleSet:
    given = YAGO.term("hasGivenName")
    born = YAGO.term("wasBornIn")
    berlin = YAGO.term("Berlin")
    triples = [
        Triple(YAGO.term("Alice"), given, Literal("Alice")),
        Triple(YAGO.term("Bob"), given, Literal("Bob")),
        Triple(YAGO.term("Alice"), born, berlin),
        Triple(YAGO.term("Bob"), born, berlin),
    ]
    return TripleSet(triples)


# --------------------------------------------------------------------------- #
# Saturation: bounded queue, exact shed accounting
# --------------------------------------------------------------------------- #
class TestSaturation:
    def test_overflow_is_shed_with_exact_accounting(self, endpoint_factory):
        """1 executing + 2 queued fills the gate (max_inflight=1,
        queue_depth=2); the next 3 requests are shed — no more, no fewer —
        and the held requests all complete once the slot frees up."""
        endpoint, service = endpoint_factory(
            triples=_fault_triples(),
            config=EndpointConfig(
                max_inflight=1,
                queue_depth=2,
                admission_timeout_seconds=30.0,
                retry_after_seconds=3,
            ),
        )
        in_slot = threading.Event()
        release = threading.Event()

        def hold(_query: str) -> None:
            in_slot.set()
            release.wait(timeout=30)

        endpoint.before_execute = hold

        statuses: list[int] = []
        lock = threading.Lock()

        def issue() -> None:
            response = sparql_request(endpoint.url, PROBE, timeout=60)
            with lock:
                statuses.append(response.status)

        threads = [threading.Thread(target=issue) for _ in range(3)]
        threads[0].start()
        assert in_slot.wait(timeout=10), "first request never reached execution"
        for thread in threads[1:]:
            thread.start()
        deadline = time.monotonic() + 10
        while endpoint.gate.occupancy < 3:  # 1 executing + 2 waiting
            assert time.monotonic() < deadline, "queue never filled"
            time.sleep(0.005)

        # Retry-After scales with occupancy: base 3s × ceil(3 occupants /
        # max_inflight 1) = 9s — a full queue tells clients to back off
        # proportionally, not just "come back in the base interval".
        shed_responses = [sparql_request(endpoint.url, PROBE) for _ in range(3)]
        for response in shed_responses:
            assert response.status == 503
            assert response.retry_after == 9.0
            assert response.json()["error"]["code"] == "overloaded"
        assert endpoint.retry_after_hint() == 9

        release.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "held request never completed"
        assert statuses == [200, 200, 200]

        # Exact accounting, end to end: the gate, the mirrored service
        # counter, and the /metrics document all agree with the client.
        assert endpoint.gate.shed == 3
        assert endpoint.gate.admitted == 3
        endpoint.before_execute = None
        metrics = fetch_json(endpoint.url, "/metrics")
        assert metrics["endpoint"]["shed_load"] == 3
        assert metrics["service"]["counters"]["shed_load"] == 3
        assert service.metrics.counters.shed_load == 3
        # Idle again: the hint relaxes back to the configured base.
        assert endpoint.retry_after_hint() == 3

    def test_malformed_requests_never_consume_slots(self, endpoint_factory):
        """A 400 must come back even from a saturated endpoint: protocol
        validation happens before admission."""
        endpoint, _service = endpoint_factory(
            triples=_fault_triples(),
            config=EndpointConfig(
                max_inflight=1, queue_depth=0, admission_timeout_seconds=30.0
            ),
        )
        in_slot = threading.Event()
        release = threading.Event()
        endpoint.before_execute = lambda _q: (in_slot.set(), release.wait(timeout=30))

        blocker = threading.Thread(
            target=lambda: sparql_request(endpoint.url, PROBE, timeout=60)
        )
        blocker.start()
        assert in_slot.wait(timeout=10)
        try:
            bad = sparql_request(endpoint.url, "SELECT ?x WHERE { broken")
            assert bad.status == 400
            assert endpoint.gate.shed == 0  # validation failures are not sheds
        finally:
            release.set()
            blocker.join(timeout=30)


# --------------------------------------------------------------------------- #
# Multi-process fleet faults
# --------------------------------------------------------------------------- #
def _leader(tmp_path):
    """A leader service over the hand-written store, checkpointed to a root."""
    root = tmp_path / "snaps"
    dual = DualStore().load(_fault_triples())
    service = QueryService(dual, ServiceConfig(max_workers=1))
    service.checkpoint(path=root)
    return root, dual, service


@pytest.mark.slow
class TestWorkerDeath:
    def test_kill_mid_request_is_clean_error_then_retried_success(self, tmp_path):
        root, _dual, service = _leader(tmp_path)
        expected = encode_results(service.run_query(PROBE).result)
        with WorkerSupervisor(
            root, workers=2, poll_interval=0.1, test_delay_seconds=0.5
        ) as fleet:
            fleet.wait_ready()
            victim_url = fleet.url(0)

            outcome: dict = {}

            def in_flight() -> None:
                try:
                    outcome["response"] = sparql_request(victim_url, PROBE, timeout=30)
                except TransportError as exc:
                    outcome["error"] = exc

            request = threading.Thread(target=in_flight)
            request.start()
            time.sleep(0.2)  # inside the worker's stretched execution window
            fleet.kill(0)
            request.join(timeout=15)
            # Never a hang: the request resolved promptly, and a response (the
            # kill racing completion) must be a real success, not a torn body.
            assert not request.is_alive(), "in-flight request hung after SIGKILL"
            assert outcome, "request neither returned nor raised"
            if "error" in outcome:
                assert isinstance(outcome["error"], TransportError)
            else:
                assert outcome["response"].status == 200
                assert outcome["response"].body == expected

            # The pool retries the dead replica onto the survivor.
            pool = EndpointPool([victim_url, fleet.url(1)], timeout=30)
            response = pool.query(PROBE)
            assert response.status == 200
            assert response.body == expected
            assert pool.transport_retries >= 1
        service.close()


@pytest.mark.slow
class TestHotReload:
    def test_mid_stream_commit_reloads_without_tearing(self, tmp_path):
        root, dual, service = _leader(tmp_path)
        g0 = dual.generation
        expected = {g0: encode_results(service.run_query(PROBE).result)}

        with WorkerSupervisor(root, workers=2, poll_interval=0.1) as fleet:
            fleet.wait_ready()
            urls = fleet.urls
            observed: dict[str, list] = {url: [] for url in urls}
            stop = threading.Event()

            def stream() -> None:
                while not stop.is_set():
                    for url in urls:
                        try:
                            response = sparql_request(url, PROBE, timeout=30)
                        except TransportError:
                            continue  # connection raced the swap; next lap
                        if response.status == 200:
                            observed[url].append((response.generation, response.body))

            client = threading.Thread(target=stream)
            client.start()
            try:
                # Both workers answer at g0 before the commit.
                for url in urls:
                    first = sparql_request(url, PROBE, timeout=30)
                    assert first.status == 200
                    assert first.generation == g0
                    assert first.body == expected[g0]

                # Leader mutates and publishes a new generation mid-stream.
                service.insert(
                    [Triple(YAGO.term("Carol"), YAGO.term("hasGivenName"), Literal("Carol"))]
                )
                g1 = dual.generation
                assert g1 > g0
                expected[g1] = encode_results(service.run_query(PROBE).result)
                assert expected[g1] != expected[g0]
                service.checkpoint(path=root)

                fleet.wait_generation(g1, timeout=30)
                # Keep streaming until every worker has *served* at g1.
                deadline = time.monotonic() + 30
                while not all(
                    any(generation == g1 for generation, _ in observed[url])
                    for url in urls
                ):
                    assert time.monotonic() < deadline, "workers never served g1"
                    time.sleep(0.05)
            finally:
                stop.set()
                client.join(timeout=30)
            assert not client.is_alive()

            for url in urls:
                stamps = [generation for generation, _ in observed[url]]
                assert stamps, f"no successful responses from {url}"
                # Only committed generations, never a torn in-between state...
                assert set(stamps) <= {g0, g1}
                # ...every body is exactly the store the stamp names...
                for generation, body in observed[url]:
                    assert body == expected[generation], (
                        f"torn response from {url}: generation {generation} "
                        f"returned a body from another store state"
                    )
                # ...and a sequential client never sees the clock run backwards.
                assert stamps == sorted(stamps), f"generation regressed on {url}"
            # The reload actually happened and was announced.
            assert all(fleet.generation(index) == g1 for index in range(2))
            assert any(
                (fleet.announce(index) or {}).get("reloads", 0) >= 1 for index in range(2)
            )
        service.close()
