"""Unit tests for the query processor (Algorithm 3) and the DualStore facade."""

import pytest

from repro.core import (
    DualStore,
    DotilConfig,
    ROUTE_GRAPH,
    ROUTE_RELATIONAL,
    ROUTE_SPLIT,
)
from repro.errors import TuningError
from repro.rdf import Triple, YAGO
from repro.sparql import parse_query

BORN = YAGO.term("wasBornIn")
ADVISOR = YAGO.term("hasAcademicAdvisor")
MARRIED = YAGO.term("isMarriedTo")
GIVEN = YAGO.term("hasGivenName")
FAMILY = YAGO.term("hasFamilyName")


@pytest.fixture()
def dual(mini_kg):
    store = DualStore(storage_budget=1000)
    store.load(mini_kg)
    return store


class TestRouting:
    def test_query_without_complex_subquery_goes_relational(self, dual):
        query = parse_query("SELECT ?n WHERE { ?p y:hasGivenName ?n . }")
        processed = dual.run_query(query)
        assert processed.route == ROUTE_RELATIONAL

    def test_case3_uncovered_complex_subquery_goes_relational(self, dual, advisor_query):
        processed = dual.run_query(advisor_query)
        assert processed.route == ROUTE_RELATIONAL
        assert processed.record.had_complex_subquery

    def test_case1_fully_covered_query_goes_graph(self, dual, advisor_query):
        dual.transfer_partitions([BORN, ADVISOR])
        processed = dual.run_query(advisor_query)
        assert processed.route == ROUTE_GRAPH
        assert processed.record.graph_seconds > 0
        assert processed.record.relational_seconds == 0

    def test_case2_split_plan(self, dual, example1_query):
        dual.transfer_partitions([BORN, ADVISOR, MARRIED])
        processed = dual.run_query(example1_query)
        assert processed.route == ROUTE_SPLIT
        assert processed.record.graph_seconds > 0
        assert processed.record.relational_seconds > 0
        assert processed.record.seconds == pytest.approx(
            processed.record.graph_seconds
            + processed.record.relational_seconds
            + processed.record.migration_seconds
        )

    def test_partial_coverage_of_complex_subquery_falls_back_to_relational(self, dual, example1_query):
        dual.transfer_partitions([BORN, ADVISOR])  # isMarriedTo missing
        assert dual.run_query(example1_query).route == ROUTE_RELATIONAL


class TestAnswerEquivalence:
    """Whatever the route, the answers must match the relational-only answers."""

    @pytest.mark.parametrize("transfers", [[], [BORN, ADVISOR], [BORN, ADVISOR, MARRIED, GIVEN, FAMILY]])
    def test_advisor_query(self, mini_kg, advisor_query, transfers):
        baseline = DualStore(storage_budget=1000)
        baseline.load(mini_kg)
        expected = baseline.run_query(advisor_query).result.distinct_rows()

        dual = DualStore(storage_budget=1000)
        dual.load(mini_kg)
        dual.transfer_partitions(transfers)
        assert dual.run_query(advisor_query).result.distinct_rows() == expected

    @pytest.mark.parametrize("transfers", [[], [BORN, ADVISOR, MARRIED]])
    def test_example1_query(self, mini_kg, example1_query, transfers):
        baseline = DualStore(storage_budget=1000)
        baseline.load(mini_kg)
        expected = baseline.run_query(example1_query).result.distinct_rows()

        dual = DualStore(storage_budget=1000)
        dual.load(mini_kg)
        dual.transfer_partitions(transfers)
        assert dual.run_query(example1_query).result.distinct_rows() == expected


class TestDualStoreFacade:
    def test_run_query_requires_load(self):
        with pytest.raises(TuningError):
            DualStore().run_query(parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }"))

    def test_budget_defaults_to_r_bg_fraction(self, mini_kg):
        dual = DualStore(config=DotilConfig(r_bg=0.5))
        dual.load(mini_kg)
        assert dual.storage_budget == int(0.5 * len(mini_kg))

    def test_explicit_budget_overrides_fraction(self, mini_kg):
        dual = DualStore(config=DotilConfig(r_bg=0.5), storage_budget=3)
        dual.load(mini_kg)
        assert dual.storage_budget == 3

    def test_transfer_and_evict_update_design_and_coverage(self, dual):
        assert dual.graph_coverage() == 0.0
        seconds = dual.transfer_partition(BORN)
        assert seconds > 0
        assert dual.design.covers([BORN])
        assert dual.graph_coverage() > 0
        dual.evict_partition(BORN)
        assert dual.graph_coverage() == 0.0
        assert dual.transfer_log[0] == ("transfer", BORN)
        assert dual.transfer_log[-1] == ("evict", BORN)

    def test_insert_updates_partition_sizes(self, dual):
        before = dual.partition_sizes()[BORN]
        dual.insert([Triple(YAGO.term("NewPerson"), BORN, YAGO.term("Berlin"))])
        assert dual.partition_sizes()[BORN] == before + 1

    def test_graph_cost_and_counterfactual(self, dual, advisor_query):
        dual.transfer_partitions([BORN, ADVISOR])
        c1, result = dual.graph_cost(advisor_query)
        assert c1 > 0 and len(result.variables) == 1
        capped = dual.counterfactual_relational_cost(advisor_query, cap_seconds=c1 * 3.5)
        assert 0 < capped <= c1 * 3.5

    def test_counterfactual_with_tiny_cap_returns_the_cap(self, dual, advisor_query):
        dual.transfer_partitions([BORN, ADVISOR])
        cap = 1e-6
        assert dual.counterfactual_relational_cost(advisor_query, cap_seconds=cap) == pytest.approx(cap)
