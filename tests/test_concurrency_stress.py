"""Concurrency stress: a QueryService over a sharded store under mixed
readers and mutators must never serve a stale cache hit or drop bindings
in a shard merge.

The stores' documented contract is that physical mutations must not run
concurrently with query processing, so the harness wraps traffic in a
reader-writer lock: readers (service queries) share the store, mutators
(insert / transfer / evict) take it exclusively.  What *is* being stressed
is everything the serving layer owns — plan/result caches, generation
validation, batch dedup, the execution pool, and the sharded store's
scatter pool — all hammered from 8 threads at once.

Correctness oracle: every mutation bumps ``DualStore.generation``, and for
each generation the first reader to see it computes the expected answer
straight from the store (bypassing every cache).  Every served answer must
equal the expectation of the generation it was served under:

* a *stale cache hit* would surface an older generation's (different)
  answer — the mutators keep inserting rows that change it;
* a *dropped shard-merge binding* would surface a subset of the expectation.
"""

from __future__ import annotations

import random
import threading
import time

from repro import DualStore, QueryService, ServiceConfig, ShardingConfig, generate_watdiv
from repro.rdf.namespace import WATDIV
from repro.rdf.terms import IRI, Triple

THREADS_READERS = 6
THREADS_MUTATORS = 2
ITERATIONS_PER_READER = 30
ITERATIONS_PER_MUTATOR = 12

QUERY_TEXTS = [
    # Targets wsdbm:likes / wsdbm:hasGenre, which the mutators grow.
    "SELECT ?u ?p WHERE { ?u wsdbm:likes ?p . }",
    "SELECT ?u ?g WHERE { ?u wsdbm:likes ?p . ?p wsdbm:hasGenre ?g . }",
    "SELECT ?p ?r WHERE { ?p wsdbm:soldBy ?r . ?r wsdbm:locatedIn ?c . }",
]


class ReaderWriterLock:
    """A writer-preferring RW lock (readers share, writers are exclusive)."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()


def test_mixed_readers_and_mutators_never_observe_staleness_or_dropped_bindings(
    fingerprint, lock_graph
):
    # ``lock_graph`` (conftest) watches every project lock the run touches
    # and fails the test at teardown if any acquisition-order cycle —
    # a potential deadlock — was observed.
    dataset = generate_watdiv(target_triples=2500, seed=31)
    dual = DualStore(
        shards=4, sharding=ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=16)
    ).load(dataset.triples)

    rw = ReaderWriterLock()
    expected_lock = threading.Lock()
    #: (generation, query text) -> fingerprint computed straight off the store.
    expected: dict = {}
    errors: list = []
    served_generations: set = set()

    likes = WATDIV.term("likes")
    genre = WATDIV.term("hasGenre")
    transferable = [WATDIV.term("soldBy"), WATDIV.term("locatedIn"), WATDIV.term("reviewer")]

    with QueryService(dual, ServiceConfig(max_workers=4)) as service:

        def expectation(generation: int, text: str):
            key = (generation, text)
            with expected_lock:
                cached = expected.get(key)
            if cached is not None:
                return cached
            # Uncached ground truth via the store itself (a pure read, safe
            # under the read lock; QueryService caches are bypassed).
            plan = service.resolve(text)
            truth = fingerprint(dual.processor.process(plan.query, plan.complex_subquery).result)
            with expected_lock:
                return expected.setdefault(key, truth)

        start_barrier = threading.Barrier(THREADS_READERS + THREADS_MUTATORS)

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            try:
                start_barrier.wait(timeout=30)
                for _ in range(ITERATIONS_PER_READER):
                    time.sleep(rng.random() * 0.002)  # let mutators interleave
                    text = rng.choice(QUERY_TEXTS)
                    rw.acquire_read()
                    try:
                        generation = dual.generation
                        if rng.random() < 0.3:
                            batch = service.run_batch([text, text])
                            results = [entry.result for entry in batch]
                        else:
                            results = [service.run_query(text).result]
                        truth = expectation(generation, text)
                        for result in results:
                            observed = fingerprint(result)
                            if observed != truth:
                                errors.append(
                                    f"generation {generation}: served answer diverged for {text!r} "
                                    f"({len(observed)} vs {len(truth)} rows)"
                                )
                        served_generations.add(generation)
                    finally:
                        rw.release_read()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"reader crashed: {exc!r}")

        def mutator(seed: int) -> None:
            rng = random.Random(seed)
            transferred: list = []
            try:
                start_barrier.wait(timeout=30)
                for step in range(ITERATIONS_PER_MUTATOR):
                    time.sleep(rng.random() * 0.004)
                    rw.acquire_write()
                    try:
                        roll = step % 3
                        if roll == 0:
                            # Grow the queried partitions: changes answers.
                            salt = f"{seed}-{step}"
                            user = IRI(f"http://example.org/stress/u{salt}")
                            product = IRI(f"http://example.org/stress/p{salt}")
                            g = IRI(f"http://example.org/stress/g{salt}")
                            service.insert(
                                [Triple(user, likes, product), Triple(product, genre, g)]
                            )
                        elif roll == 1 and transferable:
                            predicate = transferable.pop(rng.randrange(len(transferable)))
                            service.transfer_partition(predicate)
                            transferred.append(predicate)
                        elif transferred:
                            service.evict_partition(transferred.pop(0))
                    finally:
                        rw.release_write()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"mutator crashed: {exc!r}")

        threads = [
            threading.Thread(target=reader, args=(100 + i,)) for i in range(THREADS_READERS)
        ] + [threading.Thread(target=mutator, args=(200 + i,)) for i in range(THREADS_MUTATORS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), "stress threads deadlocked"

        assert not errors, "\n".join(errors[:10])
        # The run actually interleaved: answers were served under several
        # distinct generations, and the mutators really changed them.
        assert len(served_generations) > 1
        assert dual.generation > 1

        # Post-race sanity: the caches converge to the final ground truth.
        for text in QUERY_TEXTS:
            final = service.run_query(text)
            uncached = dual.run_query(service.resolve(text).query)
            assert fingerprint(final.result) == fingerprint(uncached.result)
