"""Unit tests for the N-Triples reader/writer."""

import pytest

from repro.errors import ParseError
from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    Triple,
    parse_ntriples,
    parse_ntriples_file,
    serialize_ntriples,
    write_ntriples_file,
)
from repro.rdf.terms import XSD_INTEGER


SAMPLE = """
# a comment line
<http://x.org/alice> <http://x.org/knows> <http://x.org/bob> .
<http://x.org/alice> <http://x.org/name> "Alice" .
<http://x.org/alice> <http://x.org/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x.org/alice> <http://x.org/motto> "salut"@fr .
_:b0 <http://x.org/knows> <http://x.org/alice> .
"""


class TestParsing:
    def test_parses_all_triple_forms(self):
        triples = list(parse_ntriples(SAMPLE))
        assert len(triples) == 5
        assert triples[0].object == IRI("http://x.org/bob")
        assert triples[1].object == Literal("Alice")
        assert triples[2].object == Literal("30", XSD_INTEGER)
        assert triples[3].object == Literal("salut", language="fr")
        assert triples[4].subject == BlankNode("b0")

    def test_blank_lines_and_comments_are_skipped(self):
        assert list(parse_ntriples("\n\n# nothing\n")) == []

    def test_missing_final_dot_raises_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            list(parse_ntriples('<http://x.org/a> <http://x.org/b> "c"'))
        assert excinfo.value.line == 1

    @pytest.mark.parametrize(
        "line",
        [
            '<http://x.org/a> "not-an-iri" "c" .',
            "<http://x.org/a> <http://x.org/b> .",
            '<http://x.org/a> <http://x.org/b> "c" extra .',
            "nonsense line .",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ParseError):
            list(parse_ntriples(line))

    def test_escape_sequences_are_decoded(self):
        line = '<http://x.org/a> <http://x.org/b> "line1\\nline2 \\"quoted\\"" .'
        (triple,) = list(parse_ntriples(line))
        assert triple.object.lexical == 'line1\nline2 "quoted"'


class TestSerialization:
    def test_round_trip_preserves_triples(self):
        original = list(parse_ntriples(SAMPLE))
        text = serialize_ntriples(original)
        assert list(parse_ntriples(text)) == original

    def test_file_round_trip(self, tmp_path):
        original = list(parse_ntriples(SAMPLE))
        path = tmp_path / "data.nt"
        written = write_ntriples_file(original, path)
        assert written == len(original)
        assert list(parse_ntriples_file(path)) == original

    def test_serialize_produces_one_line_per_triple(self):
        original = list(parse_ntriples(SAMPLE))
        text = serialize_ntriples(original)
        assert text.count("\n") == len(original)
        assert all(line.endswith(" .") for line in text.strip().splitlines())
