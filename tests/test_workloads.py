"""Tests for the synthetic datasets, query templates, and workload batching."""

import pytest

from repro.core import ComplexSubqueryIdentifier
from repro.errors import WorkloadError
from repro.workload import (
    QueryTemplate,
    WATDIV_FAMILY_SIZES,
    bio2rdf_workload,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    split_batches,
    watdiv_workload,
    yago_workload,
    zipf_weights,
)
from repro.workload.generator import SyntheticGraphBuilder
from repro.rdf.namespace import YAGO


IDENTIFIER = ComplexSubqueryIdentifier()


class TestGeneratorToolkit:
    def test_zipf_weights_sum_to_one_and_decrease(self):
        weights = zipf_weights(10)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(9))

    def test_zipf_weights_reject_empty(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)

    def test_builder_is_deterministic_for_a_seed(self):
        def build(seed):
            builder = SyntheticGraphBuilder(YAGO, seed=seed)
            people = builder.mint_entities("p", 20)
            for person in people:
                builder.add_fact(person, YAGO.term("knows"), builder.choose(people, skew=1.1))
            return builder.build()

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_entities_lookup(self):
        builder = SyntheticGraphBuilder(YAGO, seed=1)
        builder.mint_entities("city", 3)
        assert len(builder.entities("city")) == 3
        with pytest.raises(WorkloadError):
            builder.entities("unknown")


class TestYagoDataset:
    def test_size_is_close_to_target(self):
        dataset = generate_yago(3000, seed=7)
        assert 0.7 * 3000 <= len(dataset) <= 1.3 * 3000

    def test_generation_is_deterministic(self):
        assert generate_yago(1000, seed=3).triples == generate_yago(1000, seed=3).triples

    def test_has_the_paper_relevant_predicates(self):
        dataset = generate_yago(2000, seed=7)
        names = {p.local_name() for p in dataset.triples.predicates}
        assert {"wasBornIn", "hasAcademicAdvisor", "isMarriedTo", "hasGivenName"} <= names

    def test_rejects_tiny_targets(self):
        with pytest.raises(WorkloadError):
            generate_yago(10)

    def test_workload_has_20_queries_like_the_paper(self, yago_dataset):
        workload = yago_workload(yago_dataset)
        assert len(workload) == 20

    def test_workload_queries_have_answers_and_complex_parts(self, yago_dataset, yago_queries):
        from repro.relstore import RelationalStore

        store = RelationalStore()
        store.load(yago_dataset.triples)
        complex_count = 0
        answered = 0
        for entry in yago_queries.queries:
            if IDENTIFIER.identify(entry.query) is not None:
                complex_count += 1
            if len(store.execute(entry.query)) > 0:
                answered += 1
        assert complex_count == len(yago_queries)  # every YAGO template has a complex part
        # The workload's complex queries are highly selective (constant-bound
        # mutations), so only a handful return rows at test scale — but at
        # least one must, so the cross-engine correctness checks are not vacuous.
        assert answered >= 1

    def test_complex_partitions_fit_default_budget(self, yago_dataset, yago_queries):
        budget = int(0.25 * len(yago_dataset.triples))
        sizes = yago_dataset.triples.predicate_histogram()
        for entry in yago_queries.queries:
            complex_subquery = IDENTIFIER.identify(entry.query)
            needed = sum(sizes.get(p, 0) for p in complex_subquery.predicates)
            assert needed <= budget


class TestWatDivDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_watdiv(3000, seed=17)

    def test_family_sizes_match_the_paper(self, dataset):
        workload = watdiv_workload(dataset)
        assert len(workload) == 100
        assert workload.families() == WATDIV_FAMILY_SIZES

    def test_single_family_workloads(self, dataset):
        for family, expected in WATDIV_FAMILY_SIZES.items():
            workload = watdiv_workload(dataset, family=family)
            assert len(workload) == expected

    def test_unknown_family_rejected(self, dataset):
        with pytest.raises(WorkloadError):
            watdiv_workload(dataset, family="cyclic")

    def test_complex_family_queries_fit_default_budget(self, dataset):
        budget = int(0.25 * len(dataset.triples))
        sizes = dataset.triples.predicate_histogram()
        workload = watdiv_workload(dataset, family="complex")
        for entry in workload.queries:
            complex_subquery = IDENTIFIER.identify(entry.query)
            assert complex_subquery is not None
            needed = sum(sizes.get(p, 0) for p in complex_subquery.predicates)
            assert needed <= budget


class TestBio2RDFDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_bio2rdf(3000, seed=23)

    def test_workload_has_25_queries_like_the_paper(self, dataset):
        assert len(bio2rdf_workload(dataset)) == 25

    def test_every_template_has_a_complex_part(self, dataset):
        workload = bio2rdf_workload(dataset)
        assert all(IDENTIFIER.identify(e.query) is not None for e in workload.queries)

    def test_union_of_complex_partitions_fits_budget(self, dataset):
        budget = int(0.25 * len(dataset.triples))
        sizes = dataset.triples.predicate_histogram()
        union = set()
        for entry in bio2rdf_workload(dataset).queries:
            union |= set(IDENTIFIER.identify(entry.query).predicates)
        assert sum(sizes.get(p, 0) for p in union) <= budget


class TestTemplatesAndBatching:
    def test_template_instantiation_with_defaults_and_values(self):
        template = QueryTemplate(
            name="demo",
            family="linear",
            text="SELECT ?p WHERE { ?p y:wasBornIn {city} . }",
            slots={"city": ["<http://a.org/c1>", "<http://a.org/c2>"]},
        )
        default = template.instantiate()
        other = template.instantiate({"city": "<http://a.org/c2>"})
        assert default.patterns[0].object.value == "http://a.org/c1"
        assert other.patterns[0].object.value == "http://a.org/c2"

    def test_template_rejects_unknown_slots(self):
        template = QueryTemplate(
            name="demo", family="linear", text="SELECT ?p WHERE { ?p y:wasBornIn ?c . }"
        )
        with pytest.raises(WorkloadError):
            template.instantiate({"nope": "x"})

    def test_mutations_include_the_original(self):
        import random

        template = QueryTemplate(
            name="demo",
            family="linear",
            text="SELECT ?p WHERE { ?p y:wasBornIn {city} . }",
            slots={"city": ["<http://a.org/c1>", "<http://a.org/c2>", "<http://a.org/c3>"]},
        )
        queries = template.mutations(4, random.Random(1))
        assert len(queries) == 5

    def test_ordered_vs_random_have_same_multiset(self, yago_queries):
        ordered = yago_queries.ordered()
        randomised = yago_queries.randomized(seed=3)
        assert sorted(q.to_sparql() for q in ordered) == sorted(q.to_sparql() for q in randomised)
        assert ordered != randomised

    def test_randomized_is_deterministic_per_seed(self, yago_queries):
        assert yago_queries.randomized(seed=5) == yago_queries.randomized(seed=5)

    def test_batches_partition_the_workload(self, yago_queries):
        batches = yago_queries.batches("ordered")
        assert len(batches) == 5
        assert sum(len(b) for b in batches) == len(yago_queries)

    def test_batches_reject_unknown_order(self, yago_queries):
        with pytest.raises(WorkloadError):
            yago_queries.batches("sideways")

    def test_subset_fraction(self, yago_queries):
        half = yago_queries.subset(0.5, order="random", seed=1)
        assert len(half) == len(yago_queries) // 2
        with pytest.raises(WorkloadError):
            yago_queries.subset(0.0)

    @pytest.mark.parametrize("count, expected", [(1, [5]), (2, [3, 2]), (5, [1, 1, 1, 1, 1]), (7, [1, 1, 1, 1, 1])])
    def test_split_batches_sizes(self, count, expected):
        queries = ["q"] * 5
        assert [len(b) for b in split_batches(queries, count)] == expected

    def test_split_batches_rejects_bad_input(self):
        with pytest.raises(WorkloadError):
            split_batches([], 3)
        with pytest.raises(WorkloadError):
            split_batches(["q"], 0)
