"""Differential suite: the SQLite path vs the ID-space execution engine.

The SQL compiler + SQLiteBackend answer the same SPARQL subset as the
work-accounted Python engines, but nothing guarded that parity since the
PR 3 executor rewrite — and it matters: the stored surface forms are TEXT, so
a carelessly compiled filter would compare ``"5"`` and ``"250"``
lexicographically while the executors compare them numerically.  This suite
pins answer-parity across *every* template family of all three synthetic
datasets (YAGO, WatDiv, Bio2RDF), so any future divergence between the SQL
path and the primary engine names the family that broke.

(Only answers are compared: the SQLite path has no work counters, so there is
nothing to differentiate on the accounting side.)
"""

from __future__ import annotations

import pytest

from repro import (
    RelationalStore,
    SQLiteBackend,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    bio2rdf_workload,
    watdiv_workload,
    yago_workload,
)

_DATASETS = {
    "yago": lambda: (generate_yago(2500, seed=7), yago_workload),
    "watdiv": lambda: (generate_watdiv(2500, seed=7), watdiv_workload),
    "bio2rdf": lambda: (generate_bio2rdf(2500, seed=23), bio2rdf_workload),
}


def _row_fingerprint(rows):
    """Order-insensitive fingerprint of a result-row multiset."""
    return sorted(tuple(term.n3() for term in row) for row in rows)


@pytest.fixture(scope="module", params=sorted(_DATASETS))
def engines(request):
    """(dataset name, per-family queries, loaded python store, loaded SQLite)."""
    dataset, build_workload = _DATASETS[request.param]()
    workload = build_workload(dataset)
    by_family = {}
    for entry in workload.queries:
        by_family.setdefault(entry.family, []).append((entry.template, entry.query))

    store = RelationalStore()
    store.load(dataset.triples)
    backend = SQLiteBackend()
    backend.insert_triples(dataset.triples)
    yield request.param, by_family, store, backend
    backend.close()


def test_sql_answers_match_the_idspace_engine_for_every_family(engines):
    name, by_family, store, backend = engines
    assert by_family, f"{name}: workload has no queries"
    for family, entries in sorted(by_family.items()):
        for template, query in entries:
            columns, sql_rows = backend.execute_select(query)
            result = store.execute(query)
            assert columns == tuple(result.variables), (
                f"{name}/{family}/{template}: projected columns diverged"
            )
            assert _row_fingerprint(sql_rows) == _row_fingerprint(result.rows()), (
                f"{name}/{family}/{template}: SQL answers diverged from the ID-space engine"
            )


def test_sql_filter_comparison_is_typed_not_lexicographic():
    """The regression the suite exists for: multi-digit numeric filters.

    Stored as TEXT, ``"5" <= "250"`` is lexicographically *false*; the typed
    comparison both Python engines use says *true*.  The SQLite path must
    agree with the engines, not with the bytes.
    """
    from repro.rdf.terms import IRI, Literal, Triple
    from repro.sparql import parse_query

    subject_cheap = IRI("http://example.org/cheap")
    subject_dear = IRI("http://example.org/dear")
    price = IRI("http://example.org/price")
    triples = [
        Triple(subject_cheap, price, Literal.from_python(5)),
        Triple(subject_dear, price, Literal.from_python(999)),
    ]
    query = parse_query(
        "SELECT ?p WHERE { ?p <http://example.org/price> ?v . FILTER(?v <= 250) }"
    )

    store = RelationalStore()
    store.load(triples)
    with SQLiteBackend() as backend:
        backend.insert_triples(triples)
        _, sql_rows = backend.execute_select(query)
    python_rows = store.execute(query).rows()
    assert _row_fingerprint(sql_rows) == _row_fingerprint(python_rows)
    assert _row_fingerprint(sql_rows) == [(subject_cheap.n3(),)]
