"""The self-healing serving fleet: deadlines, breakers, supervision, chaos.

Four layers of coverage, from pure units to a live multi-process fleet:

* **deadline units + execution** — the cooperative-cancellation machinery
  (:mod:`repro.resilience.deadline`) and its wiring through the executors:
  an over-budget query raises :class:`QueryTimeoutError` within 2x its
  budget, frees its executor slot, and never perturbs concurrent in-budget
  queries;
* **circuit breaker + fault plan units** — deterministic state machines over
  injectable clocks and seeded schedules;
* **fleet monitor units** — the supervision sweep driven against a scripted
  fake supervisor and a fake clock (backoff, crash-loop quarantine, stuck
  detection) — no processes, no sleeps;
* **chaos suite** (``slow``) — a seeded :class:`FaultPlan` (worker SIGKILLs
  + injected transport I/O errors + latency spikes) over a real 4-worker
  fleet behind the circuit-breaking pool: the closed-loop workload completes
  with zero client-visible hangs, every answer byte-identical to the direct
  in-process answer, the monitor restores full fleet health, and
  ``worker_restarts`` / ``breaker_opens`` / ``query_timeouts`` match the
  injected schedule *exactly*.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.parse

import pytest

from repro.core import DualStore
from repro.endpoint import (
    EndpointConfig,
    EndpointPool,
    WorkerSupervisor,
    encode_results,
    fetch_json,
    sparql_request,
)
from repro.endpoint.client import EndpointResponse, TransportError
from repro.errors import QueryTimeoutError, SnapshotError
from repro.persist import SnapshotPolicy, SnapshotWatcher
from repro.rdf import Literal, Triple, TripleSet, YAGO
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultSpec,
    FleetMonitor,
    InjectedFault,
    MonitorPolicy,
    current_deadline,
    deadline_scope,
    faults,
    probed_rows,
)
from repro.serve import QueryService, ServiceConfig

#: A cheap query with a small, stable answer (byte-identity probes).
PROBE = "SELECT ?name WHERE { ?p y:hasGivenName ?name . }"
#: Two disjoint full scans joined by a cartesian product: millions of joined
#: tuples on the test datasets, so any sub-second deadline fires mid-join.
HEAVY = "SELECT ?a ?c WHERE { ?a ?p ?b . ?c ?q ?d . }"


class FakeClock:
    """A hand-advanced monotonic clock."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _mini_triples() -> TripleSet:
    given = YAGO.term("hasGivenName")
    return TripleSet(
        [
            Triple(YAGO.term("Alice"), given, Literal("Alice")),
            Triple(YAGO.term("Bob"), given, Literal("Bob")),
        ]
    )


# --------------------------------------------------------------------------- #
# Deadline: the unit machinery
# --------------------------------------------------------------------------- #
class TestDeadlineUnit:
    def test_check_raises_with_budget_and_partial_work(self):
        clock = FakeClock()
        deadline = Deadline(0.05, clock=clock)
        deadline.check()  # in budget: no-op
        clock.advance(0.06)
        assert deadline.expired()

        class Counters:
            def as_dict(self):
                return {"rows_scanned": 7}

        with pytest.raises(QueryTimeoutError) as excinfo:
            deadline.check(Counters())
        exc = excinfo.value
        assert exc.budget_seconds == 0.05
        assert exc.elapsed_seconds == pytest.approx(0.06)
        assert exc.partial_work == {"rows_scanned": 7}

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_probed_rows_probes_on_the_stride_only(self):
        clock = FakeClock()
        probes = []

        class CountingDeadline(Deadline):
            def check(self, counters=None):
                probes.append(counters)
                return super().check(counters)

        deadline = CountingDeadline(1.0, clock=clock)
        rows = list(probed_rows(range(10), deadline, stride=4))
        assert rows == list(range(10))  # rows pass through unchanged
        assert len(probes) == 2  # after row 4 and row 8, not per row

    def test_probed_rows_stops_mid_stream_when_expired(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)

        def rows():
            for i in range(100):
                if i == 5:
                    clock.advance(1.0)  # the budget expires mid-scan
                yield i

        out = []
        with pytest.raises(QueryTimeoutError):
            for row in probed_rows(rows(), deadline, stride=2):
                out.append(row)
        assert len(out) < 100

    def test_scope_is_ambient_nested_and_none_safe(self):
        assert current_deadline() is None
        outer, inner = Deadline(1.0), Deadline(2.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(None):  # a None scope changes nothing
                assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scope_is_thread_local(self):
        seen = {}
        with deadline_scope(Deadline(1.0)):
            thread = threading.Thread(
                target=lambda: seen.update(other=current_deadline())
            )
            thread.start()
            thread.join()
        assert seen["other"] is None


# --------------------------------------------------------------------------- #
# Deadline: through the service and both engines
# --------------------------------------------------------------------------- #
class TestDeadlineExecution:
    @pytest.fixture(scope="class")
    def heavy_service(self, yago_dataset):
        dual = DualStore().load(yago_dataset.triples)
        service = QueryService(dual, ServiceConfig(max_workers=1))
        yield service
        service.close()

    def test_over_budget_query_times_out_within_2x_budget(self, heavy_service):
        budget = 0.05
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError) as excinfo:
            heavy_service.run_query(HEAVY, deadline_seconds=budget)
        wall = time.monotonic() - started
        exc = excinfo.value
        assert exc.budget_seconds == budget
        # The acceptance bound: cancellation lands within 2x the budget.
        assert exc.elapsed_seconds < 2 * budget
        assert wall < 2 * budget + 0.1  # wall includes plan/parse overhead
        assert exc.partial_work, "partial-work accounting missing"
        assert heavy_service.metrics.counters.query_timeouts >= 1

    def test_concurrent_in_budget_queries_are_unaffected(self, heavy_service):
        outcomes: list = []
        lock = threading.Lock()

        def in_budget() -> None:
            result = heavy_service.run_query(PROBE)
            with lock:
                outcomes.append(len(result.result.bindings))

        threads = [threading.Thread(target=in_budget) for _ in range(4)]
        for thread in threads:
            thread.start()
        with pytest.raises(QueryTimeoutError):
            heavy_service.run_query(HEAVY, deadline_seconds=0.05)
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert len(outcomes) == 4
        assert len(set(outcomes)) == 1  # all four got the same full answer

    def test_100_timeouts_leak_no_threads_and_leave_the_pool_serving(
        self, yago_dataset
    ):
        dual = DualStore().load(yago_dataset.triples)
        service = QueryService(dual, ServiceConfig(max_workers=2))
        try:
            # Warm the executor pool to its steady state (both worker
            # threads spawned) so the stability assertion below measures
            # leakage, not lazy pool growth.
            service.run_query(PROBE)
            for _ in range(5):
                with pytest.raises(QueryTimeoutError):
                    service.run_query(HEAVY, deadline_seconds=0.02)
            before = threading.active_count()
            base = service.metrics.counters.query_timeouts
            timeouts = 0
            for _ in range(100):
                try:
                    service.run_query(HEAVY, deadline_seconds=0.02)
                except QueryTimeoutError:
                    timeouts += 1
            assert timeouts == 100  # a timed-out query is never cached
            assert threading.active_count() <= before  # no thread leak
            assert service.metrics.counters.query_timeouts - base == 100
            # The executor pool survived all 100 cancellations.
            assert len(service.run_query(PROBE).result.bindings) > 0
        finally:
            service.close()

    def test_default_deadline_from_service_config(self, yago_dataset):
        dual = DualStore().load(yago_dataset.triples)
        service = QueryService(
            dual, ServiceConfig(max_workers=1, default_deadline_seconds=0.05)
        )
        try:
            with pytest.raises(QueryTimeoutError):
                service.run_query(HEAVY)  # no per-call deadline needed
            # A per-call budget overrides the configured default.
            assert service.run_query(PROBE, deadline_seconds=30.0).result.bindings
        finally:
            service.close()

    def test_graph_matcher_honors_the_ambient_deadline(self, yago_dataset):
        from repro.graphstore.matcher import GraphMatcher
        from repro.graphstore.property_graph import PropertyGraph
        from repro.sparql import parse_query

        graph = PropertyGraph()
        graph.add_triples(yago_dataset.triples)
        # Two unbound relationship-type scans over one predicate: the second
        # pattern explodes each row by every edge — millions of extensions.
        query = parse_query(
            "SELECT ?a WHERE { ?a y:wasBornIn ?b . ?c y:wasBornIn ?d . }"
        )
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)  # already expired: the first probe must fire
        with deadline_scope(deadline):
            with pytest.raises(QueryTimeoutError):
                GraphMatcher(graph).execute(query)


# --------------------------------------------------------------------------- #
# Deadline: over the wire
# --------------------------------------------------------------------------- #
def _get(url: str) -> EndpointResponse:
    """GET an already-built /sparql URL, surfacing 4xx/5xx as data."""
    import urllib.error
    import urllib.request

    request = urllib.request.Request(url, method="GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return EndpointResponse(
                response.status,
                {k.lower(): v for k, v in response.headers.items()},
                response.read(),
            )
    except urllib.error.HTTPError as exc:
        with exc:
            return EndpointResponse(
                exc.code,
                {k.lower(): v for k, v in exc.headers.items()},
                exc.read(),
            )


class TestEndpointDeadline:
    def test_timeout_parameter_maps_to_machine_readable_504(self, endpoint_factory):
        endpoint, service = endpoint_factory()
        budget = 0.05
        started = time.monotonic()
        response = sparql_request(endpoint.url, HEAVY, deadline_seconds=budget)
        wall = time.monotonic() - started
        assert response.status == 504
        error = response.json()["error"]
        assert error["code"] == "query-timeout"
        assert error["budget_seconds"] == budget
        assert error["elapsed_seconds"] < 2 * budget
        assert error["partial_work"]
        assert wall < 2 * budget + 0.5  # HTTP + parse overhead on top
        # The slot was freed, not hung: the gate empties as soon as the
        # handler finishes writing the 504 (the release races our read of
        # the response by a hair), and the endpoint still serves.
        release_by = time.monotonic() + 5
        while endpoint.gate.occupancy > 0:
            assert time.monotonic() < release_by, "504 never freed its slot"
            time.sleep(0.005)
        assert service.metrics.counters.query_timeouts == 1
        assert sparql_request(endpoint.url, PROBE).status == 200

    def test_timeout_parameter_on_both_post_forms(self, endpoint_factory):
        endpoint, _service = endpoint_factory()
        form = sparql_request(
            endpoint.url, HEAVY, method="POST", deadline_seconds=0.05
        )
        assert form.status == 504
        direct = sparql_request(
            endpoint.url, HEAVY, method="POST", post_form=False, deadline_seconds=0.05
        )
        assert direct.status == 504

    def test_invalid_timeout_parameter_is_a_400(self, endpoint_factory):
        endpoint, _service = endpoint_factory(triples=_mini_triples())
        for bad in ("0", "-1", "nan", "inf", "soon"):
            params = urllib.parse.urlencode({"query": PROBE, "timeout": bad})
            response = _get(f"{endpoint.url}/sparql?{params}")
            assert response.status == 400, bad
            assert response.json()["error"]["code"] == "invalid-timeout"
        params = "query=" + urllib.parse.quote(PROBE) + "&timeout=1&timeout=2"
        response = _get(f"{endpoint.url}/sparql?{params}")
        assert response.status == 400
        assert response.json()["error"]["code"] == "duplicate-timeout"


# --------------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------------- #
class TestDrain:
    def test_drain_rejects_new_work_and_waits_for_inflight(self, endpoint_factory):
        endpoint, _service = endpoint_factory(
            triples=_mini_triples(), config=EndpointConfig(max_inflight=2)
        )
        in_slot = threading.Event()
        release = threading.Event()
        endpoint.before_execute = lambda _q: (in_slot.set(), release.wait(timeout=30))
        held = threading.Thread(
            target=lambda: sparql_request(endpoint.url, PROBE, timeout=60)
        )
        held.start()
        assert in_slot.wait(timeout=10)

        # Draining with a request in flight: times out, stays draining.
        assert endpoint.drain(timeout=0.1) is False
        assert endpoint.draining
        assert fetch_json(endpoint.url, "/healthz")["status"] == "draining"

        rejected = sparql_request(endpoint.url, PROBE)
        assert rejected.status == 503
        assert rejected.json()["error"]["code"] == "draining"
        assert rejected.retry_after is not None
        assert endpoint.drain_rejections == 1
        assert endpoint.gate.shed == 0  # drain rejections are not gate sheds
        metrics = fetch_json(endpoint.url, "/metrics")
        assert metrics["endpoint"]["draining"] is True
        assert metrics["endpoint"]["drain_rejections"] == 1

        release.set()
        held.join(timeout=30)
        assert not held.is_alive()
        assert endpoint.drain(timeout=5.0) is True  # in-flight work finished


# --------------------------------------------------------------------------- #
# Circuit breaker: the unit state machine
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def _breaker(self, **policy):
        clock = FakeClock()
        breaker = CircuitBreaker(BreakerPolicy(**policy), clock=clock)
        return breaker, clock

    def test_trips_after_consecutive_failures_only(self):
        breaker, _clock = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # a success resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_open_resolves_to_half_open_after_the_reset_timeout(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout_seconds=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe permit

    def test_half_open_probe_budget_then_success_closes(self):
        breaker, clock = self._breaker(
            failure_threshold=1, reset_timeout_seconds=1.0, half_open_probes=1
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert not breaker.allow()  # one probe permit, already consumed
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.opens == 1

    def test_half_open_probe_failure_retrips_with_a_fresh_timeout(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout_seconds=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.opens == 2
        assert not breaker.allow()  # a fresh open with a fresh timeout
        clock.advance(1.0)
        assert breaker.allow()

    def test_failures_while_open_do_not_restamp_the_trip_time(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout_seconds=2.0)
        breaker.record_failure()
        clock.advance(1.9)
        breaker.record_failure()  # fallback traffic failing while open
        clock.advance(0.2)  # 2.1s since the *original* trip
        assert breaker.allow()
        assert breaker.opens == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout_seconds=-1)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_probes=0)


# --------------------------------------------------------------------------- #
# Fault plans: deterministic schedules
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_fires_exactly_at_its_ordinals(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="wal.write", at=2, kind="io-error"),
                FaultSpec(site="wal.write", at=5, kind="latency", latency_seconds=0.5),
            )
        )
        slept: list = []
        plan._sleep = slept.append
        plan.fire("wal.write")  # 1: clean
        with pytest.raises(InjectedFault):
            plan.fire("wal.write")  # 2: io-error
        plan.fire("wal.write")  # 3
        plan.fire("wal.write")  # 4
        plan.fire("wal.write")  # 5: latency
        assert slept == [0.5]
        assert plan.event_count("wal.write") == 5
        assert [spec.at for spec in plan.fired] == [2, 5]
        assert plan.event_count("snapshot.write") == 0

    def test_sites_count_independently(self):
        plan = FaultPlan(specs=(FaultSpec(site="snapshot.write", at=1, kind="io-error"),))
        plan.fire("wal.write")  # a different site's first event: clean
        with pytest.raises(InjectedFault):
            plan.fire("snapshot.write")

    def test_duplicate_ordinals_are_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(
                specs=(
                    FaultSpec(site="wal.write", at=1, kind="io-error"),
                    FaultSpec(site="wal.write", at=1, kind="latency"),
                )
            )

    def test_seeded_plans_are_reproducible(self):
        kwargs = dict(
            site_events={"pool.transport": 50, "wal.write": 20},
            io_error_rate=0.1,
            latency_rate=0.1,
            min_spacing=3,
        )
        first = FaultPlan.seeded(1234, **kwargs)
        second = FaultPlan.seeded(1234, **kwargs)
        assert first.specs == second.specs
        assert first.specs, "seed 1234 should schedule at least one fault"
        assert FaultPlan.seeded(99, **kwargs).specs != first.specs

    def test_seeded_min_spacing_is_enforced(self):
        plan = FaultPlan.seeded(
            7,
            site_events={"pool.transport": 200},
            io_error_rate=0.3,
            latency_rate=0.3,
            min_spacing=4,
        )
        ordinals = sorted(spec.at for spec in plan.specs)
        assert ordinals, "rates this high must schedule faults"
        gaps = [b - a for a, b in zip(ordinals, ordinals[1:])]
        assert all(gap > 4 for gap in gaps)

    def test_install_is_exclusive_and_fire_is_noop_without_a_plan(self):
        faults.fire("wal.write")  # no plan: must be a silent no-op
        plan = FaultPlan(specs=(FaultSpec(site="wal.write", at=1, kind="io-error"),))
        with faults.injected(plan):
            with pytest.raises(RuntimeError):
                faults.install(FaultPlan())
            with pytest.raises(InjectedFault):
                faults.fire("wal.write")
        faults.fire("wal.write")  # uninstalled again
        assert plan.event_count("wal.write") == 1

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            FaultSpec(site="wal.write", at=0, kind="io-error")
        with pytest.raises(ValueError):
            FaultSpec(site="wal.write", at=1, kind="explode")


# --------------------------------------------------------------------------- #
# Fault sites in the persist layer
# --------------------------------------------------------------------------- #
class TestPersistFaultSites:
    def test_wal_append_io_error_is_absorbed_and_reanchored(self, tmp_path):
        root = tmp_path / "snaps"
        dual = DualStore().load(_mini_triples())
        service = QueryService(
            dual, ServiceConfig(snapshot=SnapshotPolicy(path=root, log=True))
        )
        try:
            service.checkpoint()  # opens the log (the segment header write)
            given = YAGO.term("hasGivenName")
            plan = FaultPlan(
                # Counting starts at install, after the header: the 2nd
                # wal.write the plan observes is the 2nd insert's append.
                specs=(FaultSpec(site="wal.write", at=2, kind="io-error"),)
            )
            with faults.injected(plan):
                service.insert([Triple(YAGO.term("C1"), given, Literal("C1"))])
                assert service.metrics.counters.wal_records == 1
                service.insert([Triple(YAGO.term("C2"), given, Literal("C2"))])
            # The injected failure was absorbed: counted, recorded, never
            # raised out of the mutation — and the log closed.
            assert service.metrics.counters.wal_failures == 1
            assert isinstance(service.last_wal_error, InjectedFault)
            assert service.metrics.counters.wal_records == 1
            # The store itself is intact and serving.
            assert len(service.run_query(PROBE).result.bindings) == 4
            # The next snapshot commit re-anchors the log; appends resume.
            service.checkpoint()
            service.insert([Triple(YAGO.term("C3"), given, Literal("C3"))])
            assert service.metrics.counters.wal_records == 2
        finally:
            service.close()

    def test_snapshot_write_fault_never_moves_the_commit_point(self, tmp_path):
        root = tmp_path / "snaps"
        dual = DualStore().load(_mini_triples())
        service = QueryService(dual, ServiceConfig(max_workers=1))
        try:
            first = service.checkpoint(path=root)
            plan = FaultPlan(
                specs=(FaultSpec(site="snapshot.write", at=1, kind="io-error"),)
            )
            # An explicit checkpoint propagates the write failure verbatim.
            with faults.injected(plan):
                with pytest.raises(InjectedFault):
                    service.checkpoint(path=root)
            # CURRENT still names the earlier snapshot — never a torn store.
            watcher = SnapshotWatcher(root)
            assert watcher.committed_name() == first.name
            assert service.metrics.counters.snapshot_failures == 1
            # The next attempt (no plan) commits and advances the pointer.
            second = service.checkpoint(path=root)
            assert watcher.committed_name() == second.name
        finally:
            service.close()

    def test_snapshot_publish_fault_leaves_previous_commit_loadable(self, tmp_path):
        from repro.persist import load_snapshot

        root = tmp_path / "snaps"
        dual = DualStore().load(_mini_triples())
        service = QueryService(dual, ServiceConfig(max_workers=1))
        try:
            first = service.checkpoint(path=root)
            given = YAGO.term("hasGivenName")
            service.insert([Triple(YAGO.term("C1"), given, Literal("C1"))])
            plan = FaultPlan(
                specs=(FaultSpec(site="snapshot.publish", at=1, kind="io-error"),)
            )
            with faults.injected(plan):
                with pytest.raises(InjectedFault):
                    service.checkpoint(path=root)
            restored = load_snapshot(root)
            assert restored.manifest.name == first.name
            assert restored.dual.generation == first.generation
        finally:
            service.close()


# --------------------------------------------------------------------------- #
# EndpointPool breaker integration (stubbed transport, fake clock)
# --------------------------------------------------------------------------- #
class TestPoolBreakers:
    @staticmethod
    def _pool(scripts, monkeypatch, **kwargs):
        """A pool whose transport replays per-URL outcome scripts (an
        exception to raise or a status to return); sleeps are swallowed."""
        from repro.endpoint import client as client_module

        calls: list = []

        def transport(url, query, **_kwargs):
            calls.append(url)
            outcome = scripts[url].pop(0)
            if isinstance(outcome, BaseException):
                raise outcome
            return EndpointResponse(outcome, {}, b"body")

        monkeypatch.setattr(client_module.time, "sleep", lambda _s: None)
        pool = EndpointPool(list(scripts), transport=transport, **kwargs)
        return pool, calls

    def test_open_breaker_is_skipped_then_probed_after_reset(self, monkeypatch):
        clock = FakeClock()
        scripts = {
            "http://a": [ConnectionError("down"), ConnectionError("down"), 200],
            "http://b": [200, 200, 200, 200],
        }
        pool, calls = self._pool(
            scripts,
            monkeypatch,
            breaker_policy=BreakerPolicy(failure_threshold=2, reset_timeout_seconds=5.0),
            breaker_clock=clock,
        )
        assert pool.query(PROBE).status == 200  # a fails(1), b answers
        assert pool.query(PROBE).status == 200  # a fails(2) -> OPEN, b answers
        assert pool.breaker_opens == 1
        assert pool.breakers["http://a"].state == OPEN
        assert pool.query(PROBE).status == 200  # a skipped entirely
        assert pool.query(PROBE).status == 200
        assert calls == ["http://a", "http://b", "http://a", "http://b", "http://b", "http://b"]
        clock.advance(5.0)  # reset timeout elapses -> half-open probe
        assert pool.query(PROBE).status == 200  # the probe hits a, succeeds
        assert pool.breakers["http://a"].state == CLOSED
        assert pool.breaker_opens == 1  # recovery never re-counted a trip
        assert calls[-1] == "http://a"

    def test_504_is_not_a_breaker_failure(self, monkeypatch):
        scripts = {"http://a": [504, 504, 504, 504]}
        pool, _calls = self._pool(
            scripts, monkeypatch, breaker_policy=BreakerPolicy(failure_threshold=2)
        )
        for _ in range(4):
            response = pool.query(PROBE)
            assert response.status == 504  # returned as-is, never retried
        assert pool.breaker_opens == 0
        assert pool.breakers["http://a"].state == CLOSED

    def test_500s_do_count_as_breaker_failures(self, monkeypatch):
        scripts = {"http://a": [500, 500, 500]}
        pool, _calls = self._pool(
            scripts, monkeypatch, breaker_policy=BreakerPolicy(failure_threshold=2)
        )
        assert pool.query(PROBE).status == 500
        assert pool.query(PROBE).status == 500
        assert pool.breaker_opens == 1

    def test_all_open_falls_back_to_round_robin_never_wedges(self, monkeypatch):
        scripts = {"http://a": [ConnectionError("down")] * 6}
        pool, calls = self._pool(
            scripts,
            monkeypatch,
            max_attempts=2,
            breaker_policy=BreakerPolicy(failure_threshold=1, reset_timeout_seconds=999),
        )
        with pytest.raises(ConnectionError):
            pool.query(PROBE)  # first failure opens the only breaker
        assert pool.breaker_opens == 1
        with pytest.raises(ConnectionError):
            pool.query(PROBE)  # still issued: an all-open pool keeps trying
        assert len(calls) == 4
        assert pool.breaker_opens == 1  # failures while open are not re-trips

    def test_breakers_can_be_disabled(self, monkeypatch):
        scripts = {"http://a": [ConnectionError("down"), 200]}
        pool, _calls = self._pool(scripts, monkeypatch, breaker_policy=None)
        assert pool.breakers is None
        assert pool.query(PROBE).status == 200
        assert pool.breaker_opens == 0

    def test_pool_transport_fault_site_injects_before_the_wire(self, monkeypatch):
        scripts = {"http://a": [200], "http://b": [200]}
        pool, calls = self._pool(scripts, monkeypatch)
        plan = FaultPlan(
            specs=(FaultSpec(site="pool.transport", at=1, kind="io-error"),)
        )
        with faults.injected(plan):
            response = pool.query(PROBE)
        assert response.status == 200
        assert pool.transport_retries == 1  # the injected fault was retried
        assert len(calls) == 1  # attempt 1 never reached the stub transport
        assert plan.event_count("pool.transport") == 2
        assert [spec.at for spec in plan.fired] == [1]


# --------------------------------------------------------------------------- #
# FleetMonitor: the supervision sweep against a scripted fake fleet
# --------------------------------------------------------------------------- #
class FakeSupervisor:
    """A WorkerSupervisor stand-in with scriptable liveness."""

    def __init__(self, workers: int = 2, revive_on_restart: bool = True):
        self.alive = {i: True for i in range(workers)}
        self.announced = {i: {"port": 1000 + i} for i in range(workers)}
        self.restarted: list = []
        self.revive_on_restart = revive_on_restart

    def worker_indexes(self):
        return sorted(self.alive)

    def is_alive(self, index):
        return self.alive[index]

    def announce(self, index):
        return self.announced.get(index)

    def url(self, index):
        return f"http://fake:{1000 + index}"

    def restart(self, index):
        self.restarted.append(index)
        if self.revive_on_restart:
            self.alive[index] = True


class TestFleetMonitor:
    def _monitor(self, supervisor, clock, *, probe=None, service=None, **policy):
        return FleetMonitor(
            supervisor,
            MonitorPolicy(**policy),
            probe=probe if probe is not None else (lambda _url: True),
            service=service,
            clock=clock,
        )

    def test_dead_worker_is_restarted(self):
        clock = FakeClock()
        fleet = FakeSupervisor(workers=3)
        monitor = self._monitor(fleet, clock)
        fleet.alive[1] = False
        monitor.poll_once()
        assert fleet.restarted == [1]
        assert monitor.total_restarts == 1
        assert monitor.restarts == {1: 0 + 1}
        monitor.poll_once()  # revived and healthy: nothing more to do
        assert fleet.restarted == [1]

    def test_restart_backoff_doubles_and_is_reset_by_health(self):
        clock = FakeClock()
        fleet = FakeSupervisor(workers=1, revive_on_restart=False)
        monitor = self._monitor(
            fleet, clock, backoff_base_seconds=0.2, backoff_cap_seconds=10.0,
            crash_loop_threshold=99,
        )
        fleet.alive[0] = False
        monitor.poll_once()
        assert len(fleet.restarted) == 1
        monitor.poll_once()  # 0.2s backoff: no immediate second restart
        assert len(fleet.restarted) == 1
        clock.advance(0.25)
        monitor.poll_once()
        assert len(fleet.restarted) == 2
        clock.advance(0.25)  # second backoff is 0.4s: still waiting
        monitor.poll_once()
        assert len(fleet.restarted) == 2
        clock.advance(0.2)
        monitor.poll_once()
        assert len(fleet.restarted) == 3
        # A healthy probe resets the consecutive count (and the backoff).
        fleet.alive[0] = True
        clock.advance(1.0)
        monitor.poll_once()
        fleet.alive[0] = False
        clock.advance(2.0)
        monitor.poll_once()
        assert len(fleet.restarted) == 4
        monitor.poll_once()
        assert len(fleet.restarted) == 4  # back to the 0.2s base backoff
        clock.advance(0.25)
        monitor.poll_once()
        assert len(fleet.restarted) == 5

    def test_crash_loop_quarantine_then_retry_after_it_lifts(self):
        clock = FakeClock()
        fleet = FakeSupervisor(workers=1, revive_on_restart=False)
        monitor = self._monitor(
            fleet,
            clock,
            backoff_base_seconds=0.0,
            crash_loop_threshold=3,
            crash_loop_window_seconds=100.0,
            quarantine_seconds=50.0,
        )
        fleet.alive[0] = False
        for _ in range(3):
            monitor.poll_once()
            clock.advance(0.1)
        assert len(fleet.restarted) == 3
        monitor.poll_once()  # the 4th would exceed the threshold: quarantine
        assert len(fleet.restarted) == 3
        assert monitor.quarantines == 1
        assert 0 in monitor.quarantined_until
        for _ in range(5):  # quarantined: the monitor leaves it alone
            clock.advance(1.0)
            monitor.poll_once()
        assert len(fleet.restarted) == 3
        clock.advance(50.0)  # quarantine served: healing resumes
        monitor.poll_once()
        assert len(fleet.restarted) == 4
        assert monitor.quarantined_until == {}

    def test_stuck_worker_is_restarted_after_the_stuck_window(self):
        clock = FakeClock()
        fleet = FakeSupervisor(workers=1)
        health = {"ok": True}
        monitor = self._monitor(
            fleet, clock, probe=lambda _url: health["ok"], stuck_after_seconds=15.0
        )
        monitor.poll_once()  # healthy baseline
        health["ok"] = False  # alive but wedged
        clock.advance(10.0)
        monitor.poll_once()
        assert fleet.restarted == []  # inside the stuck window
        clock.advance(6.0)
        monitor.poll_once()
        assert fleet.restarted == [0]

    def test_restart_totals_are_mirrored_into_the_service(self):
        class FakeService:
            def __init__(self):
                self.calls: list = []

            def record_resilience(self, **kwargs):
                self.calls.append(kwargs)

        clock = FakeClock()
        fleet = FakeSupervisor(workers=2)
        service = FakeService()
        monitor = self._monitor(fleet, clock, service=service)
        fleet.alive[0] = False
        fleet.alive[1] = False
        monitor.poll_once()
        assert monitor.total_restarts == 2
        assert service.calls[-1] == {"worker_restarts": 2}

    def test_record_resilience_updates_the_real_counters(self):
        dual = DualStore().load(_mini_triples())
        service = QueryService(dual, ServiceConfig(max_workers=1))
        try:
            service.record_resilience(worker_restarts=3, breaker_opens=2)
            service.record_resilience(worker_restarts=5)  # partial update
            counters = service.metrics.counters
            assert counters.worker_restarts == 5
            assert counters.breaker_opens == 2
            # Mirrored gauges merge by max, not sum.
            merged = counters.merge(counters)
            assert merged.worker_restarts == 5
            assert merged.breaker_opens == 2
        finally:
            service.close()


# --------------------------------------------------------------------------- #
# SnapshotWatcher under races (satellite: commit races + missing directory)
# --------------------------------------------------------------------------- #
class TestSnapshotWatcherRaces:
    def test_current_naming_a_missing_directory_retries_without_advancing(
        self, tmp_path
    ):
        root = tmp_path / "snaps"
        dual = DualStore().load(_mini_triples())
        service = QueryService(dual, ServiceConfig(max_workers=1))
        try:
            manifest = service.checkpoint(path=root)
        finally:
            service.close()
        hidden = root / f"{manifest.name}.hidden"
        os.rename(root / manifest.name, hidden)

        watcher = SnapshotWatcher(root)
        # The pointer is readable but the directory it names is gone (the
        # transient state a slow NFS rename or an aggressive prune exposes):
        # poll reports nothing and must NOT advance its cursor.
        assert watcher.committed_name() == manifest.name
        assert watcher.poll() is None
        assert watcher.load_if_newer() is None

        os.rename(hidden, root / manifest.name)  # the directory reappears
        seen = watcher.poll()
        assert seen is not None and seen.name == manifest.name
        # ... exactly once: the generation was retried, never skipped.
        assert watcher.poll() is None

    def test_repeated_commit_races_never_regress_or_skip_the_head(self, tmp_path):
        root = tmp_path / "snaps"
        dual = DualStore().load(_mini_triples())
        service = QueryService(dual, ServiceConfig(max_workers=1))
        observed: list = []
        stop = threading.Event()
        watcher = SnapshotWatcher(root)

        def follow() -> None:
            while not stop.is_set():
                try:
                    restored = watcher.load_if_newer(attempts=5)
                except SnapshotError:
                    continue  # lost a race to a prune; the cursor retries it
                if restored is not None:
                    observed.append(restored.dual.generation)
                else:
                    time.sleep(0.002)  # nothing new committed yet

        try:
            service.checkpoint(path=root, keep=2)
            follower = threading.Thread(target=follow)
            follower.start()
            given = YAGO.term("hasGivenName")
            # Tight retention (keep=2) + rapid commits: loads race prunes.
            for i in range(8):
                service.insert([Triple(YAGO.term(f"P{i}"), given, Literal(f"P{i}"))])
                service.checkpoint(path=root, keep=2)
            final = dual.generation
            deadline = time.monotonic() + 30
            while not observed or observed[-1] < final:
                assert time.monotonic() < deadline, (
                    f"follower never converged: observed {observed}, want {final}"
                )
                time.sleep(0.01)
            stop.set()
            follower.join(timeout=30)
            assert not follower.is_alive()
            # Generations only ever move forward, and the head was reached.
            assert all(a < b for a, b in zip(observed, observed[1:]))
            assert observed[-1] == final
        finally:
            stop.set()
            service.close()


# --------------------------------------------------------------------------- #
# The chaos suite: a real fleet under a seeded schedule (slow)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestChaosFleet:
    def test_seeded_chaos_serves_exactly_and_reconverges(self, tmp_path, yago_dataset):
        root = tmp_path / "snaps"
        dual = DualStore().load(yago_dataset.triples)
        leader = QueryService(dual, ServiceConfig(max_workers=1))
        leader.checkpoint(path=root)
        expected = encode_results(leader.run_query(PROBE).result)
        generation = dual.generation

        fleet = WorkerSupervisor(root, workers=4, poll_interval=0.1)
        monitor = None
        try:
            fleet.start().wait_ready()
            urls = fleet.urls
            pool = EndpointPool(
                urls,
                timeout=30,
                max_attempts=16,
                retry_backoff_seconds=0.02,
                breaker_policy=BreakerPolicy(
                    failure_threshold=2, reset_timeout_seconds=0.75
                ),
            )
            monitor = FleetMonitor(
                fleet,
                MonitorPolicy(
                    probe_interval_seconds=0.1,
                    stuck_after_seconds=10.0,
                    backoff_base_seconds=0.1,
                ),
                service=leader,
            ).start()

            def drive(n: int) -> None:
                """n closed-loop requests; every answer must be byte-exact."""
                for _ in range(n):
                    response = pool.query(PROBE)
                    assert response.status == 200
                    assert response.body == expected
                    assert response.generation == generation

            # ---- Phase 1: query deadlines fire as machine-readable 504s.
            deadline_504s = 3
            for _ in range(deadline_504s):
                response = pool.query(HEAVY, deadline_seconds=0.04)
                assert response.status == 504
                assert response.json()["error"]["code"] == "query-timeout"
            timeouts_seen = sum(
                fetch_json(url, "/metrics")["service"]["counters"]["query_timeouts"]
                for url in urls
            )
            assert timeouts_seen == deadline_504s
            assert pool.breaker_opens == 0  # a 504 never poisons a replica

            # ---- Phase 2: seeded transport faults (latency + I/O errors).
            plan = FaultPlan.seeded(
                20260808,
                site_events={"pool.transport": 60},
                io_error_rate=0.10,
                latency_rate=0.15,
                latency_seconds=0.03,
                min_spacing=2 * len(urls),  # spread >= 2 round-robin laps
            )
            kinds = [spec.kind for spec in plan.specs]
            assert "io-error" in kinds and "latency" in kinds, "seed must inject both"
            with faults.injected(plan):
                drive(40)
            injected_io = [s for s in plan.fired if s.kind == "io-error"]
            assert injected_io, "the drive must have hit injected I/O errors"
            assert pool.transport_retries == len(injected_io)
            # min_spacing keeps failures non-consecutive per replica: the
            # breakers absorbed every injected error without one trip.
            assert pool.breaker_opens == 0

            # ---- Phase 3: worker SIGKILLs; the monitor heals the fleet.
            kills = [1, 3]
            for count, victim in enumerate(kills, start=1):
                pinned_port = fleet.announce(victim)["port"]
                fleet.kill(victim)
                assert fleet.announce(victim) is None  # stale announce gone
                drive(3 * len(urls))  # served throughout the outage
                assert pool.breaker_opens == count  # one trip per kill
                monitor.wait_healthy(timeout=60)
                # The replacement re-bound the same port, so the pool's URL
                # (and its breaker) still point at the live worker.
                assert fleet.announce(victim)["port"] == pinned_port
                # The monitor can heal faster than the breaker's reset
                # timeout; wait for open -> half-open before driving the
                # traffic whose probe re-closes it.
                breaker = pool.breakers[fleet.url(victim)]
                settle_by = time.monotonic() + 10
                while breaker.state == OPEN:
                    assert time.monotonic() < settle_by, "breaker never reset"
                    time.sleep(0.02)
                drive(2 * len(urls))  # half-open probe re-closes the breaker
                assert breaker.state == CLOSED
                assert pool.breaker_opens == count  # recovery added no trips

            # ---- Converged: exact fleet-wide accounting.
            assert monitor.total_restarts == len(kills)
            assert monitor.quarantines == 0
            assert leader.metrics.counters.worker_restarts == len(kills)
            leader.record_resilience(breaker_opens=pool.breaker_opens)
            assert leader.metrics.counters.breaker_opens == len(kills)
            assert pool.shed_retries == 0  # nothing was shed: no lost work
        finally:
            if monitor is not None:
                monitor.stop()
            fleet.stop()
            leader.close()

    def test_sigterm_drains_before_the_socket_closes(self, tmp_path):
        """Graceful worker shutdown: TERM (supervisor.restart's first step)
        lets the worker drain; the announce file from the replaced process
        is refreshed by its successor rather than left stale."""
        root = tmp_path / "snaps"
        dual = DualStore().load(_mini_triples())
        leader = QueryService(dual, ServiceConfig(max_workers=1))
        leader.checkpoint(path=root)
        expected = encode_results(leader.run_query(PROBE).result)
        try:
            with WorkerSupervisor(root, workers=1, poll_interval=0.1) as fleet:
                fleet.wait_ready()
                url = fleet.url(0)
                first_pid = fleet.announce(0)["pid"]
                assert sparql_request(url, PROBE).body == expected
                fleet.restart(0)
                fleet.wait_ready()
                info = fleet.announce(0)
                assert info["pid"] != first_pid
                assert f"http://127.0.0.1:{info['port']}" == url  # port pinned
                deadline = time.monotonic() + 30
                while True:
                    try:
                        assert sparql_request(url, PROBE, timeout=10).body == expected
                        break
                    except TransportError:
                        assert time.monotonic() < deadline
                        time.sleep(0.05)
        finally:
            leader.close()
