"""Unit tests for the RDF term model."""

import pytest

from repro.errors import TermError
from repro.rdf import IRI, BlankNode, Literal, Triple, Variable
from repro.rdf.terms import XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER, XSD_STRING


class TestIRI:
    def test_round_trips_value(self):
        iri = IRI("http://example.org/thing")
        assert iri.value == "http://example.org/thing"
        assert iri.n3() == "<http://example.org/thing>"

    def test_rejects_empty_value(self):
        with pytest.raises(TermError):
            IRI("")

    @pytest.mark.parametrize("bad", ["http://x.org/a b", "http://x.org/<a>", "a\nb"])
    def test_rejects_illegal_characters(self, bad):
        with pytest.raises(TermError):
            IRI(bad)

    @pytest.mark.parametrize(
        "value, local",
        [
            ("http://example.org/ns#Person", "Person"),
            ("http://example.org/resource/Albert_Einstein", "Albert_Einstein"),
            ("urn:isbn:12345", "12345"),
        ],
    )
    def test_local_name(self, value, local):
        assert IRI(value).local_name() == local

    def test_equality_and_hash(self):
        assert IRI("http://x.org/a") == IRI("http://x.org/a")
        assert hash(IRI("http://x.org/a")) == hash(IRI("http://x.org/a"))
        assert IRI("http://x.org/a") != IRI("http://x.org/b")


class TestLiteral:
    def test_plain_literal_defaults_to_xsd_string(self):
        literal = Literal("hello")
        assert literal.datatype == XSD_STRING
        assert literal.language is None
        assert literal.n3() == '"hello"'

    def test_language_tagged_literal(self):
        literal = Literal("bonjour", language="fr")
        assert literal.n3() == '"bonjour"@fr'

    def test_language_and_datatype_are_mutually_exclusive(self):
        with pytest.raises(TermError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    @pytest.mark.parametrize(
        "value, datatype, expected",
        [
            (7, XSD_INTEGER, 7),
            (3.5, XSD_DOUBLE, 3.5),
            (True, XSD_BOOLEAN, True),
            ("text", XSD_STRING, "text"),
        ],
    )
    def test_from_python_to_python_round_trip(self, value, datatype, expected):
        literal = Literal.from_python(value)
        assert literal.datatype == datatype
        assert literal.to_python() == expected

    def test_n3_escapes_quotes_and_newlines(self):
        literal = Literal('say "hi"\nplease')
        assert '\\"hi\\"' in literal.n3()
        assert "\\n" in literal.n3()

    def test_typed_literal_n3_includes_datatype(self):
        assert Literal("5", XSD_INTEGER).n3() == f'"5"^^<{XSD_INTEGER}>'


class TestBlankNodeAndVariable:
    def test_blank_node_n3(self):
        assert BlankNode("b0").n3() == "_:b0"

    def test_blank_node_requires_label(self):
        with pytest.raises(TermError):
            BlankNode("")

    def test_variable_n3_and_flags(self):
        var = Variable("person")
        assert var.n3() == "?person"
        assert var.is_variable
        assert not var.is_concrete

    @pytest.mark.parametrize("bad", ["", "?x", "$x"])
    def test_variable_rejects_bad_names(self, bad):
        with pytest.raises(TermError):
            Variable(bad)

    def test_terms_are_totally_ordered_by_kind(self):
        terms = [Variable("v"), Literal("l"), IRI("http://x.org/a"), BlankNode("b")]
        ordered = sorted(terms)
        assert [t.kind for t in ordered] == ["iri", "blank", "literal", "variable"]


class TestTriple:
    def test_triple_round_trip(self):
        triple = Triple(IRI("http://x.org/s"), IRI("http://x.org/p"), Literal("o"))
        assert triple.as_tuple() == (triple.subject, triple.predicate, triple.object)
        assert list(triple) == [triple.subject, triple.predicate, triple.object]
        assert triple.n3().endswith(" .")

    def test_triple_rejects_variables(self):
        with pytest.raises(TermError):
            Triple(Variable("s"), IRI("http://x.org/p"), Literal("o"))

    def test_triple_rejects_literal_subject(self):
        with pytest.raises(TermError):
            Triple(Literal("s"), IRI("http://x.org/p"), Literal("o"))

    def test_triple_rejects_non_iri_predicate(self):
        with pytest.raises(TermError):
            Triple(IRI("http://x.org/s"), Literal("p"), Literal("o"))

    def test_triples_are_hashable_and_comparable(self):
        a = Triple(IRI("http://x.org/s"), IRI("http://x.org/p"), Literal("o"))
        b = Triple(IRI("http://x.org/s"), IRI("http://x.org/p"), Literal("o"))
        assert a == b
        assert len({a, b}) == 1
