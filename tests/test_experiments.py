"""Tests for the experiment drivers (each table/figure of the paper)."""

import pytest

from repro.experiments import (
    ExperimentSettings,
    PARAMETER_GRID,
    TEST_SETTINGS,
    best_value,
    build_suite,
    format_cold_start,
    format_parameter_sweep,
    format_resource_slowdown,
    format_store_variants,
    format_table1,
    format_tuner_comparison,
    run_cold_start,
    run_counterfactual_cap_ablation,
    run_parameter_sweep,
    run_planner_ablation,
    run_resource_slowdown,
    run_resource_timeline,
    run_reward_split_ablation,
    run_store_variants,
    run_table1,
    run_tuner_comparison,
)
from repro.errors import ConfigError


class TestSettings:
    def test_defaults_are_valid(self):
        assert TEST_SETTINGS.repetitions >= 1

    def test_invalid_settings_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSettings(yago_triples=10)
        with pytest.raises(ConfigError):
            ExperimentSettings(repetitions=1, discard=1)

    def test_scaled(self):
        scaled = TEST_SETTINGS.scaled(2.0)
        assert scaled.yago_triples == TEST_SETTINGS.yago_triples * 2


class TestSuite:
    def test_build_suite_for_selected_groups(self):
        suite = build_suite(TEST_SETTINGS, groups=["YAGO", "WatDiv-C"])
        assert suite.groups() == ["YAGO", "WatDiv-C"]
        assert suite.dataset_for("WatDiv-C") is suite.datasets["WatDiv"]
        assert len(suite.workload_for("YAGO")) == 20

    def test_unknown_group_raises(self):
        suite = build_suite(TEST_SETTINGS, groups=["YAGO"])
        with pytest.raises(KeyError):
            suite.dataset_for("Nonexistent")


class TestTable1:
    def test_shape_matches_paper(self):
        rows = run_table1(base_triples=500, steps=4)
        assert len(rows) == 4
        assert rows[-1].relational_seconds > rows[0].relational_seconds * 2
        assert all(row.relational_seconds > row.graph_seconds for row in rows)
        assert rows[-1].speedup > 1.0
        text = format_table1(rows)
        assert "relational" in text and "graph" in text


class TestStoreVariants:
    @pytest.fixture(scope="class")
    def report(self):
        return run_store_variants(TEST_SETTINGS, groups=["YAGO"], orders=["ordered"])

    def test_every_variant_is_measured(self, report):
        comparison = report.find("YAGO", "ordered")
        assert set(comparison.results) == {"RDB-only", "RDB-views", "RDB-GDB"}
        assert all(len(r.batches) == 5 for r in comparison.results.values())

    def test_rdb_gdb_wins_on_yago(self, report):
        comparison = report.find("YAGO", "ordered")
        assert comparison.total_tti("RDB-GDB") < comparison.total_tti("RDB-only")
        assert comparison.improvement_over("RDB-only") > 0

    def test_report_aggregates_and_formatting(self, report):
        assert report.average_improvement("RDB-only") > 0
        assert report.max_improvement("RDB-only") >= report.average_improvement("RDB-only")
        assert "RDB-GDB" in format_store_variants(report)

    def test_unknown_lookup_raises(self, report):
        with pytest.raises(KeyError):
            report.find("YAGO", "sideways")


class TestParameterSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_parameter_sweep(TEST_SETTINGS, parameters=["alpha", "lam"])

    def test_grid_is_fully_covered(self, rows):
        alphas = [row.value for row in rows if row.parameter == "alpha"]
        assert alphas == list(PARAMETER_GRID["alpha"])

    def test_rows_have_positive_tti(self, rows):
        assert all(row.tti > 0 for row in rows)

    def test_best_value_picks_lowest_tti(self, rows):
        best = best_value(rows, "alpha")
        best_tti = min(row.tti for row in rows if row.parameter == "alpha")
        assert any(row.value == best and row.tti == best_tti for row in rows)

    def test_best_value_unknown_parameter_raises(self, rows):
        with pytest.raises(KeyError):
            best_value(rows, "nope")

    def test_formatting(self, rows):
        text = format_parameter_sweep(rows)
        assert "alpha" in text and "Q-matrix" in text


class TestColdStartAndResources:
    def test_cold_start_shape(self):
        points = run_cold_start(TEST_SETTINGS, orders=["ordered"])
        assert len(points) == 5
        assert points[0].graph_share < 0.2
        assert max(p.graph_share for p in points) > points[0].graph_share
        assert "graph share" in format_cold_start(points)

    def test_resource_slowdown_ordering(self):
        rows = run_resource_slowdown(TEST_SETTINGS)
        by_key = {(r.resource, r.spare_fraction): r.slowdown_percent for r in rows}
        assert by_key[("cpu", 0.2)] >= by_key[("cpu", 0.4)]
        assert by_key[("io", 0.2)] < by_key[("cpu", 0.2)]
        assert "slowdown" in format_resource_slowdown(rows)

    def test_resource_timeline(self):
        samples = run_resource_timeline(TEST_SETTINGS)
        assert len(samples) == 5
        assert all(s.time >= 0 for s in samples)


class TestTunerComparisonAndAblations:
    def test_tuner_comparison_on_one_group(self):
        # Use the paper's warm-up protocol (discard the cold pass) so the
        # comparison is between steady-state designs, as in Figure 8.
        settings = ExperimentSettings(
            yago_triples=TEST_SETTINGS.yago_triples,
            watdiv_triples=TEST_SETTINGS.watdiv_triples,
            bio2rdf_triples=TEST_SETTINGS.bio2rdf_triples,
            repetitions=3,
            discard=1,
            seed=TEST_SETTINGS.seed,
        )
        suite = build_suite(settings, groups=["YAGO"])
        comparisons = run_tuner_comparison(
            settings, suite=suite, groups=[("YAGO", "YAGO", "ordered")]
        )
        assert len(comparisons) == 1
        totals = {name: comparisons[0].total_tti(name) for name in comparisons[0].results}
        assert set(totals) == {"DOTIL", "one-off", "LRU", "ideal"}
        assert totals["DOTIL"] <= totals["one-off"] * 1.1
        assert totals["DOTIL"] <= totals["LRU"] * 1.1
        assert "DOTIL" in format_tuner_comparison(comparisons)

    def test_reward_split_ablation_runs(self):
        result = run_reward_split_ablation(TEST_SETTINGS)
        assert result.paper_choice > 0 and result.ablated > 0

    def test_counterfactual_cap_bounds_offline_cost(self):
        result = run_counterfactual_cap_ablation(TEST_SETTINGS)
        assert result.paper_choice <= result.ablated + 1e-9

    def test_planner_ablation_prefers_greedy_order(self):
        result = run_planner_ablation(TEST_SETTINGS)
        assert result.paper_choice <= result.ablated * 1.05
