"""Crash-consistency and replication tests for the write-ahead delta log.

The contract under test (``docs/architecture.md`` §9):

* ``snapshot + replay(tail)`` restores **byte-identically** — same bindings,
  same order, bit-identical work counters — for every template family;
* a crash at *any* log-write or rotation step leaves a log whose replay
  either reaches the pre-crash generation or stops cleanly at the last
  complete record (never a half-applied store, never an exception at serve
  time);
* followers tail the committed log (:class:`~repro.persist.WalTailer`) and
  fall back to a full restore exactly when the log rotated past them
  (:class:`~repro.errors.WalGapError`).
"""

import random
import time

import pytest

from repro import (
    DotilConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    SnapshotPolicy,
    generate_watdiv,
    generate_yago,
    load_snapshot,
    watdiv_workload,
    yago_workload,
)
from repro.errors import SnapshotError, WalError, WalGapError, WalReplayError
from repro.persist import wal as wal_module
from repro.persist import watch as watch_module
from repro.persist.snapshot import read_manifest
from repro.persist.wal import (
    DeltaLog,
    WalTailer,
    apply_record,
    collect_tail,
    list_segments,
    read_segment,
    restore_with_log,
    triple_from_payload,
    triple_to_payload,
)
from repro.persist.watch import SnapshotWatcher
from repro.relstore.sharded import ShardingConfig

TUNER_CONFIG = DotilConfig(r_bg=0.2, prob=1.0, gamma=0.7, lam=4.5)

AGGRESSIVE = ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=16)


def assert_identical(live, restored, context: str) -> None:
    """Byte-identical bindings (content *and* order) plus bit-identical work."""
    assert restored.variables == live.variables, f"{context}: projected variables diverged"
    assert restored.bindings == live.bindings, f"{context}: bindings diverged"
    assert restored.counters.as_dict() == live.counters.as_dict(), f"{context}: work diverged"
    assert restored.seconds == live.seconds, f"{context}: modelled seconds diverged"


# --------------------------------------------------------------------------- #
# Workloads: every watdiv template family plus a second dataset, with a pool
# of genuinely-new triples to mutate with after the anchor snapshot.
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def family_cases():
    rng = random.Random(41)
    watdiv = generate_watdiv(target_triples=1600, seed=23)
    watdiv_fresh = _fresh_triples(watdiv.triples, generate_watdiv(target_triples=2000, seed=23))
    cases = []
    for family in ("linear", "star", "snowflake", "complex"):
        workload = watdiv_workload(watdiv, family=family, seed=rng.randrange(10_000))
        cases.append(
            (
                f"watdiv-{family}",
                watdiv.triples,
                workload.randomized(seed=rng.randrange(10_000)),
                watdiv_fresh,
            )
        )
    yago = generate_yago(target_triples=1400, seed=11)
    yago_fresh = _fresh_triples(yago.triples, generate_yago(target_triples=1800, seed=11))
    cases.append(("yago-complex", yago.triples, yago_workload(yago, seed=5).randomized(), yago_fresh))
    return cases


def _fresh_triples(base, bigger):
    seen = set(base)
    fresh = [t for t in bigger.triples if t not in seen]
    assert len(fresh) >= 60, "fixture needs new triples to insert after the anchor"
    return fresh


def _tuned_dual(triples, queries, **dual_kwargs) -> DualStore:
    """A loaded dual store with some partitions transferred (non-trivial
    placement, non-zero generation — the state worth logging against)."""
    dual = DualStore(TUNER_CONFIG, **dual_kwargs).load(triples)
    transferable = sorted({p for q in queries for p in q.predicates()}, key=lambda p: p.value)
    for predicate in transferable:
        size = dual.relational.partition_size(predicate)
        if size and dual.graph.fits(size):
            dual.transfer_partition(predicate)
    return dual


def _mutate_every_op_kind(service, triples, fresh):
    """Drive one of each op kind through the service's delta log: insert,
    delete (present and absent triples), transfer, evict."""
    service.insert(fresh[:40])
    service.delete(list(triples)[:8] + fresh[:4])
    dual = service.dual
    resident = sorted(dual.design.in_graph_store, key=lambda p: p.value)
    if resident:
        dual.evict_partition(resident[0])
        for candidate in resident:
            size = dual.relational.partition_size(candidate)
            if size and dual.graph.fits(size):
                dual.transfer_partition(candidate)
                break
    service.insert(fresh[40:60])


# --------------------------------------------------------------------------- #
# The restore invariant: snapshot + replay(tail) = byte-identical restore
# --------------------------------------------------------------------------- #
def test_snapshot_plus_replay_is_byte_identical_for_every_family(family_cases, tmp_path):
    for label, triples, queries, fresh in family_cases:
        root = tmp_path / label
        dual = _tuned_dual(triples, queries)
        policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
        with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
            base = read_manifest(root)
            _mutate_every_op_kind(service, triples, fresh)
            assert service.metrics.counters.wal_failures == 0, service.last_wal_error
            assert service.metrics.counters.wal_records >= 4
            live = [dual.run_query(q) for q in queries]

            restored = restore_with_log(root)
            warm = restored.dual
            # The manifest stays the base snapshot's; the store is ahead of it.
            assert restored.manifest.generation == base.generation
            assert warm.generation == dual.generation
            assert warm.design.in_graph_store == dual.design.in_graph_store
            assert warm.design.partition_sizes == dual.design.partition_sizes
            assert warm.transfer_log == dual.transfer_log
            assert (
                warm.relational.statistics().to_payload()
                == dual.relational.statistics().to_payload()
            )
            for index, query in enumerate(queries):
                replayed = warm.run_query(query)
                assert replayed.record.route == live[index].record.route, f"{label}[{index}]"
                assert_identical(live[index].result, replayed.result, f"{label}[{index}]")


def test_sharded_replay_preserves_placement_and_answers(family_cases, tmp_path):
    label, triples, queries, fresh = family_cases[1]  # watdiv-star
    root = tmp_path / "sharded"
    dual = _tuned_dual(triples, queries, shards=4, sharding=AGGRESSIVE)
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
        _mutate_every_op_kind(service, triples, fresh)
        assert service.metrics.counters.wal_failures == 0, service.last_wal_error
        live = [dual.run_query(q) for q in queries]

        warm = restore_with_log(root).dual
        assert warm.generation == dual.generation
        assert warm.relational.shard_count == dual.relational.shard_count
        assert warm.relational._placement == dual.relational._placement
        assert [len(t) for t in warm.relational._tables] == [
            len(t) for t in dual.relational._tables
        ]
        for index, query in enumerate(queries):
            replayed = warm.run_query(query)
            assert replayed.record.route == live[index].record.route, f"{label}[{index}]"
            assert_identical(live[index].result, replayed.result, f"{label}[{index}]")


def test_log_mode_restore_resumes_appending(family_cases, tmp_path):
    """Warm restart: a service restored from snapshot+tail recovers the open
    segment (truncating nothing when the tail is clean) and keeps appending
    where the crashed leader left off."""
    _label, triples, queries, fresh = family_cases[0]
    root = tmp_path / "resume"
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    dual = _tuned_dual(triples, queries)
    with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
        service.insert(fresh[:20])
        service.delete(fresh[:5])
        head = dual.generation

    with QueryService.restore(root, config=ServiceConfig(snapshot=policy)) as reborn:
        assert reborn.dual.generation == head
        assert reborn.delta_log is not None and reborn.delta_log.is_open
        reborn.insert(fresh[20:40])
        assert reborn.metrics.counters.wal_failures == 0, reborn.last_wal_error
        final = reborn.dual.generation
        live = [reborn.dual.run_query(q) for q in queries[:6]]

    warm = restore_with_log(root).dual
    assert warm.generation == final
    for index, query in enumerate(queries[:6]):
        assert_identical(live[index].result, warm.run_query(query).result, f"resume[{index}]")


# --------------------------------------------------------------------------- #
# Frames and segments
# --------------------------------------------------------------------------- #
def test_triple_payload_round_trips_every_term_kind(family_cases):
    _label, triples, _queries, _fresh = family_cases[0]
    for triple in list(triples)[:200]:
        assert triple_from_payload(triple_to_payload(triple)) == triple


def _scripted_segment(root, records=3):
    """A closed segment with ``records`` mutation records; returns the log."""
    log = DeltaLog(root, keep_segments=4)
    log.rotate(base_generation=1, snapshot_name="snap-1")
    for offset in range(records):
        log.append([{"op": "transfer", "p": f"urn:p{offset}"}], generation=2 + offset)
    return log


def test_torn_tail_stops_cleanly_at_every_byte_boundary(tmp_path):
    """Truncating the segment at *any* byte yields a clean prefix of complete
    records — the crash model the append path (write+flush+fsync of one
    frame) guarantees."""
    log = _scripted_segment(tmp_path)
    log.close()
    segment = list_segments(tmp_path)[-1]
    data = segment.path.read_bytes()
    complete = read_segment(segment).records
    header_end = len(data) - sum(r.nbytes for r in complete)
    record_ends = []
    offset = header_end
    for record in complete:
        offset += record.nbytes
        record_ends.append(offset)
    frame_boundaries = {0, header_end, *record_ends}
    for cut in range(len(data) + 1):
        segment.path.write_bytes(data[:cut])
        scan = read_segment(segment)
        expected = sum(1 for end in record_ends if end <= cut)
        assert len(scan.records) == expected, f"cut at byte {cut}"
        assert scan.clean == (cut in frame_boundaries), f"cut at byte {cut}"
        assert scan.valid_bytes == max(
            (b for b in frame_boundaries if b <= cut), default=0
        ), f"cut at byte {cut}"


def test_corrupt_body_byte_stops_the_scan(tmp_path):
    log = _scripted_segment(tmp_path)
    log.close()
    segment = list_segments(tmp_path)[-1]
    data = bytearray(segment.path.read_bytes())
    data[-3] ^= 0xFF  # flip a byte inside the last record's body
    segment.path.write_bytes(bytes(data))
    scan = read_segment(segment)
    assert not scan.clean
    assert len(scan.records) == 2  # the corrupt record and nothing after it are dropped


def test_mismatched_header_raises_walerror(tmp_path):
    log = _scripted_segment(tmp_path)
    log.close()
    segment = list_segments(tmp_path)[-1]
    # Rename to claim a different base generation than the header carries.
    renamed = segment.path.with_name("wal-00000009-g7.log")
    segment.path.rename(renamed)
    with pytest.raises(WalError):
        read_segment(list_segments(tmp_path)[-1])


def test_vanished_segment_is_a_gap_not_a_crash(tmp_path):
    log = _scripted_segment(tmp_path)
    log.close()
    segment = list_segments(tmp_path)[-1]
    tailer = WalTailer(tmp_path, generation=1)
    assert [r.generation for r in tailer.poll()] == [2, 3, 4]
    segment.path.write_bytes(b"")  # shrank below the tailer's cursor
    with pytest.raises(WalGapError):
        tailer.poll()


# --------------------------------------------------------------------------- #
# DeltaLog writer discipline
# --------------------------------------------------------------------------- #
def test_append_without_a_segment_raises(tmp_path):
    log = DeltaLog(tmp_path)
    with pytest.raises(WalError):
        log.append([{"op": "transfer", "p": "urn:p"}], generation=2)


def test_non_contiguous_append_closes_the_log(tmp_path):
    log = _scripted_segment(tmp_path)
    with pytest.raises(WalError):
        log.append([{"op": "transfer", "p": "urn:p"}], generation=9)  # head is 4
    assert not log.is_open
    # The records before the refused append are still replayable.
    assert [r.generation for r in collect_tail(tmp_path, after_generation=1)] == [2, 3, 4]


def test_stale_rotation_is_a_no_op(tmp_path):
    log = _scripted_segment(tmp_path)
    current = log.segment_name
    log.rotate(base_generation=0, snapshot_name="older")  # must not roll back
    assert log.segment_name == current
    assert log.head_generation == 4


def test_rotation_prunes_to_the_retention_window(tmp_path):
    log = DeltaLog(tmp_path, keep_segments=2)
    for base in (1, 5, 9, 13):
        log.rotate(base_generation=base, snapshot_name=f"snap-{base}")
    names = [segment.name for segment in list_segments(tmp_path)]
    assert len(names) == 2
    assert names[-1] == log.segment_name
    assert [segment.base_generation for segment in list_segments(tmp_path)] == [9, 13]


def test_records_after_a_rotation_point_may_live_in_the_older_segment(tmp_path):
    """The leader appends between snapshot capture and rotation, so the tail
    for generation g can straddle the segment anchored *before* g."""
    log = DeltaLog(tmp_path, keep_segments=4)
    log.rotate(base_generation=1, snapshot_name="snap-1")
    log.append([{"op": "transfer", "p": "urn:a"}], generation=2)
    # A snapshot captured at generation 2 commits while generation 3 lands:
    log.append([{"op": "transfer", "p": "urn:b"}], generation=3)
    log.rotate(base_generation=2, snapshot_name="snap-2")
    log.append([{"op": "transfer", "p": "urn:c"}], generation=4)
    assert [r.generation for r in collect_tail(tmp_path, after_generation=2)] == [3, 4]
    tailer = WalTailer(tmp_path, generation=2)
    assert [r.generation for r in tailer.poll()] == [3, 4]


def test_collect_tail_raises_gap_when_rotated_past_the_caller(tmp_path):
    log = DeltaLog(tmp_path, keep_segments=1)
    log.rotate(base_generation=1, snapshot_name="snap-1")
    log.append([{"op": "transfer", "p": "urn:a"}], generation=2)
    log.rotate(base_generation=5, snapshot_name="snap-5")  # prunes the g1 segment
    log.append([{"op": "transfer", "p": "urn:b"}], generation=6)
    with pytest.raises(WalGapError):
        collect_tail(tmp_path, after_generation=2)
    with pytest.raises(WalGapError):
        WalTailer(tmp_path, generation=2).poll()
    # A follower already at the new base reads on fine.
    assert [r.generation for r in collect_tail(tmp_path, after_generation=5)] == [6]


def test_recover_truncates_a_torn_tail_and_resumes(tmp_path):
    log = _scripted_segment(tmp_path)
    log.close()
    segment = list_segments(tmp_path)[-1]
    with open(segment.path, "ab") as handle:
        handle.write(b"WAL1\x99")  # torn frame: magic plus half a header
    reopened = DeltaLog(tmp_path, keep_segments=4)
    assert reopened.recover(head_generation=4)
    assert reopened.is_open and reopened.head_generation == 4
    reopened.append([{"op": "transfer", "p": "urn:next"}], generation=5)
    scan = read_segment(list_segments(tmp_path)[-1])
    assert scan.clean
    assert [r.generation for r in scan.records] == [2, 3, 4, 5]


def test_recover_refuses_a_mismatched_head(tmp_path):
    log = _scripted_segment(tmp_path)
    log.close()
    reopened = DeltaLog(tmp_path, keep_segments=4)
    assert not reopened.recover(head_generation=7)  # log ends at 4
    assert not reopened.is_open


def test_recover_failure_on_truncation_leaves_the_log_closed(tmp_path, monkeypatch):
    log = _scripted_segment(tmp_path)
    log.close()
    segment = list_segments(tmp_path)[-1]
    with open(segment.path, "ab") as handle:
        handle.write(b"WAL1")  # torn tail forces the truncation step

    def explode(path, valid_bytes):
        raise OSError("injected: truncate failed")

    monkeypatch.setattr(wal_module, "_truncate_segment", explode)
    reopened = DeltaLog(tmp_path, keep_segments=4)
    assert not reopened.recover(head_generation=4)
    assert not reopened.is_open


def test_replay_refuses_empty_and_unknown_ops(tmp_path):
    from repro.persist.wal import WalRecord

    dual = DualStore(TUNER_CONFIG).load(generate_watdiv(target_triples=300, seed=3).triples)
    with pytest.raises(WalReplayError):
        apply_record(dual, WalRecord(generation=dual.generation + 1, ops=[], nbytes=0))
    with pytest.raises(WalReplayError):
        apply_record(
            dual,
            WalRecord(generation=dual.generation + 1, ops=[{"op": "mystery"}], nbytes=0),
        )


# --------------------------------------------------------------------------- #
# Crash injection at every append and rotation step
# --------------------------------------------------------------------------- #
class _CrashAt:
    """Fail the Nth durable write, optionally tearing partial bytes first."""

    def __init__(self, real, fail_at: int, torn_bytes: int = 0):
        self.real = real
        self.fail_at = fail_at
        self.torn = torn_bytes
        self.calls = 0

    def __call__(self, handle, frame):
        self.calls += 1
        if self.calls == self.fail_at:
            if self.torn:
                handle.write(frame[: self.torn])
                handle.flush()
            raise OSError(f"injected crash at durable write #{self.calls}")
        self.real(handle, frame)


@pytest.mark.parametrize("torn_bytes", (0, 3, 9, 20))
def test_crash_at_every_append_step_keeps_the_tail_replayable(tmp_path, monkeypatch, torn_bytes):
    """Whatever write the crash lands on — header or record, clean or torn —
    replay reaches exactly the last durable generation and the service keeps
    serving mutations (the log closes; it never poisons the write path)."""
    triples = generate_watdiv(target_triples=500, seed=7).triples
    fresh = _fresh_triples(triples, generate_watdiv(target_triples=700, seed=7))
    real_write = wal_module._write_frame

    # First count the durable writes of an uninjected run of the script.
    def script(service, pool):
        service.insert(pool[:6])
        service.delete(pool[:2])
        service.insert(pool[6:12])
        service.checkpoint()  # rotation: one header write
        service.insert(pool[12:18])

    probe_root = tmp_path / "probe"
    dual = DualStore(TUNER_CONFIG).load(triples)
    policy = SnapshotPolicy(path=probe_root, every_mutations=1000, log=True, keep=2)
    counter = _CrashAt(real_write, fail_at=10**9)
    monkeypatch.setattr(wal_module, "_write_frame", counter)
    with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
        script(service, fresh)
        assert service.metrics.counters.wal_failures == 0
    total_writes = counter.calls
    assert total_writes >= 6  # anchor header + 5 records + rotation header

    for fail_at in range(1, total_writes + 1):
        root = tmp_path / f"crash-{torn_bytes}-{fail_at}"
        dual = DualStore(TUNER_CONFIG).load(triples)
        policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
        crash = _CrashAt(real_write, fail_at=fail_at, torn_bytes=torn_bytes)
        monkeypatch.setattr(wal_module, "_write_frame", crash)
        with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
            script(service, fresh)  # must never raise out of a mutation
            live_generation = dual.generation
            failures = service.metrics.counters.wal_failures
        assert failures >= 1, f"write #{fail_at} should have failed"
        monkeypatch.setattr(wal_module, "_write_frame", real_write)
        restored = restore_with_log(root)
        assert restored.dual.generation <= live_generation
        # The durable tail is exactly what replay reached: replaying again is
        # stable (idempotent read path, no exception).
        again = restore_with_log(root)
        assert again.dual.generation == restored.dual.generation


def test_crash_during_rotation_re_anchors_on_the_next_checkpoint(tmp_path, monkeypatch):
    triples = generate_watdiv(target_triples=500, seed=7).triples
    fresh = _fresh_triples(triples, generate_watdiv(target_triples=700, seed=7))
    root = tmp_path / "rotate-crash"
    dual = DualStore(TUNER_CONFIG).load(triples)
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    real_write = wal_module._write_frame
    with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
        service.insert(fresh[:6])
        # Crash the next durable write — the rotation's header frame.
        crash = _CrashAt(real_write, fail_at=1, torn_bytes=5)
        monkeypatch.setattr(wal_module, "_write_frame", crash)
        service.checkpoint()
        assert service.metrics.counters.wal_failures == 1
        assert service.delta_log is not None and not service.delta_log.is_open
        monkeypatch.setattr(wal_module, "_write_frame", real_write)
        # Mutations while the log is closed stay durable via the snapshot path.
        service.insert(fresh[6:12])
        service.checkpoint()  # re-anchors: fresh segment at the new base
        assert service.delta_log.is_open
        service.insert(fresh[12:18])
        assert service.metrics.counters.wal_failures == 1  # no new failures
        head = dual.generation
    assert restore_with_log(root).dual.generation == head


def test_append_failure_never_raises_out_of_the_mutation(tmp_path, monkeypatch):
    triples = generate_watdiv(target_triples=400, seed=9).triples
    fresh = _fresh_triples(triples, generate_watdiv(target_triples=600, seed=9))
    root = tmp_path / "append-crash"
    dual = DualStore(TUNER_CONFIG).load(triples)
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
        def explode(handle, frame):
            raise OSError("injected: disk full")

        monkeypatch.setattr(wal_module, "_write_frame", explode)
        before = dual.generation
        service.insert(fresh[:10])  # the mutation itself must succeed
        assert dual.generation == before + 1
        assert service.metrics.counters.wal_failures == 1
        assert isinstance(service.last_wal_error, Exception)
        assert not service.delta_log.is_open


def test_unrepresentable_mutation_closes_the_log(tmp_path):
    """A generation bump with no op payload (e.g. a re-load) cannot be
    replayed; the service must stop logging rather than write a lying tail."""
    triples = generate_watdiv(target_triples=400, seed=9).triples
    root = tmp_path / "unrepresentable"
    dual = DualStore(TUNER_CONFIG).load(triples)
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    with QueryService(dual, ServiceConfig(snapshot=policy)) as service:
        # A bare bump with no recorded ops is what a re-``load`` (or any
        # future op the vocabulary does not cover) produces.
        dual._bump_generation()
        assert service.metrics.counters.wal_failures == 1
        assert not service.delta_log.is_open
        head = dual.generation
        service.checkpoint()  # re-anchor captures the post-load state
        assert service.delta_log.is_open
    assert restore_with_log(root).dual.generation >= head


# --------------------------------------------------------------------------- #
# The follower tailer
# --------------------------------------------------------------------------- #
def test_tailer_sees_records_incrementally_and_skips_incomplete_tails(tmp_path):
    log = DeltaLog(tmp_path, keep_segments=4)
    log.rotate(base_generation=1, snapshot_name="snap-1")
    tailer = WalTailer(tmp_path, generation=1)
    assert tailer.poll() == []
    log.append([{"op": "transfer", "p": "urn:a"}], generation=2)
    assert [r.generation for r in tailer.poll()] == [2]
    # A torn in-flight frame is left for the next poll, not an error.
    segment = list_segments(tmp_path)[-1]
    with open(segment.path, "ab") as handle:
        handle.write(b"WAL1\x01")
        handle.flush()
    assert tailer.poll() == []
    assert tailer.generation == 2


def test_tailer_and_full_restore_agree_through_live_service_churn(tmp_path):
    """Apply the tailer's records to a follower copy while the leader keeps
    mutating and checkpointing; the follower must match a fresh
    ``restore_with_log`` at every step."""
    triples = generate_watdiv(target_triples=600, seed=31).triples
    queries = watdiv_workload(
        generate_watdiv(target_triples=600, seed=31), family="star", seed=4
    ).ordered()[:5]
    fresh = _fresh_triples(triples, generate_watdiv(target_triples=900, seed=31))
    root = tmp_path / "churn"
    dual = DualStore(TUNER_CONFIG).load(triples)
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    with QueryService(dual, ServiceConfig(snapshot=policy)) as leader:
        follower = load_snapshot(root).dual
        tailer = WalTailer(root, follower.generation)
        chunks = [fresh[i : i + 8] for i in range(0, 48, 8)]
        for round_index, chunk in enumerate(chunks):
            leader.insert(chunk)
            if round_index == 2:
                leader.delete(chunk[:3])
            if round_index == 4:
                leader.checkpoint()  # rotation mid-tail
            for record in tailer.poll():
                apply_record(follower, record)
            assert follower.generation == dual.generation
        for index, query in enumerate(queries):
            assert_identical(
                dual.run_query(query).result,
                follower.run_query(query).result,
                f"follower[{index}]",
            )


# --------------------------------------------------------------------------- #
# Satellite regressions: watcher cursor, bulk ingest
# --------------------------------------------------------------------------- #
def test_watcher_cursor_survives_repeated_load_failures(tmp_path, monkeypatch):
    """``load_if_newer`` failing all its attempts must leave the generation
    *news*: the next call retries it instead of silently skipping it."""
    triples = generate_watdiv(target_triples=300, seed=3).triples
    dual = DualStore(TUNER_CONFIG).load(triples)
    dual.snapshot(tmp_path)
    watcher = SnapshotWatcher(tmp_path)

    attempts = {"n": 0}

    def failing_load(root, cost_model=None, throttle=None):
        attempts["n"] += 1
        raise SnapshotError("injected: lost the retention race")

    monkeypatch.setattr(watch_module, "load_snapshot", failing_load)
    with pytest.raises(SnapshotError):
        watcher.load_if_newer(attempts=3)
    assert attempts["n"] == 3
    monkeypatch.undo()
    restored = watcher.load_if_newer()
    assert restored is not None, "the failed generation was silently skipped"
    assert restored.dual.generation == dual.generation
    assert watcher.load_if_newer() is None  # now genuinely seen


def test_ingest_stream_defers_statistics_and_matches_plain_inserts(tmp_path):
    triples = generate_watdiv(target_triples=500, seed=17).triples
    queries = watdiv_workload(
        generate_watdiv(target_triples=500, seed=17), family="linear", seed=2
    ).ordered()[:5]
    fresh = _fresh_triples(triples, generate_watdiv(target_triples=800, seed=17))

    plain = DualStore(TUNER_CONFIG).load(triples)
    for start in range(0, 60, 10):
        plain.insert(fresh[start : start + 10])

    streamed = DualStore(TUNER_CONFIG).load(triples)
    with QueryService(streamed, ServiceConfig()) as service:
        report = service.ingest_stream(iter(fresh[:60]), chunk_size=16)
    assert report.triples == 60
    assert report.chunks == 4  # 16+16+16+12
    assert report.modelled_seconds > 0.0
    assert streamed.relational.statistics().to_payload() == plain.relational.statistics().to_payload()
    for index, query in enumerate(queries):
        assert_identical(
            plain.run_query(query).result,
            streamed.run_query(query).result,
            f"ingest[{index}]",
        )


# --------------------------------------------------------------------------- #
# Follower catch-up through the real worker process
# --------------------------------------------------------------------------- #
def test_worker_catches_up_via_deltas_without_full_reloads(tmp_path):
    """A live worker fleet tails the leader's delta log: mutations propagate
    record-by-record (zero snapshot reloads), responses stay byte-identical
    to the leader's and generation-stamped, and a later checkpoint (rotation)
    does not trigger a reload either."""
    from repro.endpoint.client import EndpointPool
    from repro.endpoint.worker import WorkerSupervisor

    wat = generate_watdiv(target_triples=700, seed=23)
    queries = watdiv_workload(wat, family="star", seed=5).ordered()[:5]
    fresh = _fresh_triples(wat.triples, generate_watdiv(target_triples=1000, seed=23))
    root = tmp_path / "root"
    dual = DualStore(TUNER_CONFIG).load(wat.triples)
    policy = SnapshotPolicy(path=root, every_mutations=1000, log=True, keep=2)
    with QueryService(dual, ServiceConfig(snapshot=policy, gated=True)) as leader:
        with WorkerSupervisor(root, workers=2, poll_interval=0.05, run_dir=tmp_path / "run") as fleet:
            fleet.wait_ready(60)
            leader.insert(fresh[:20])
            leader.delete(fresh[:5])
            leader.insert(fresh[20:30])
            target = leader.dual.generation
            fleet.wait_generation(target, timeout=30)
            for index in range(2):
                info = fleet.announce(index)
                assert info["reloads"] == 0, f"worker {index} full-reloaded: {info}"
                stats = fleet.delta_stats(index)
                assert stats["records"] >= 3 and stats["bytes"] > 0, stats

            # Byte-identical serving: each worker's wire bytes equal the
            # leader's own answer rendered through the same encoder.
            from repro.endpoint.protocol import encode_results

            pool = EndpointPool(fleet.urls)
            for query in queries:
                expected = encode_results(leader.run_query(query).result)
                response = pool.query(query.to_sparql())
                assert response.status == 200, response.body
                assert response.generation == target
                assert response.body == expected

            # A checkpoint rotates the log; the fleet must stay put (the
            # deltas already covered that generation) — still no reloads.
            leader.checkpoint()
            time.sleep(0.5)  # several poll intervals
            for index in range(2):
                info = fleet.announce(index)
                assert info["reloads"] == 0, info
                assert info["generation"] == target


def test_delete_round_trips_through_snapshot_unsharded_and_sharded(tmp_path):
    triples = generate_watdiv(target_triples=500, seed=19).triples
    queries = watdiv_workload(
        generate_watdiv(target_triples=500, seed=19), family="star", seed=6
    ).ordered()[:5]
    for label, kwargs in (("flat", {}), ("sharded", {"shards": 4, "sharding": AGGRESSIVE})):
        dual = _tuned_dual(triples, queries, **kwargs)
        doomed = list(triples)[:12]
        removed = dual.delete(doomed + doomed[:3])  # repeats are absent by then
        assert removed == 12
        assert dual.delete(doomed) == 0  # deleting absent triples is a no-op
        root = tmp_path / f"delete-{label}"
        dual.snapshot(root)
        warm = DualStore.restore(root)
        assert len(warm.relational) == len(dual.relational)
        for index, query in enumerate(queries):
            assert_identical(
                dual.run_query(query).result,
                warm.run_query(query).result,
                f"delete-{label}[{index}]",
            )
