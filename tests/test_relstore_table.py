"""Unit tests for the relational triple table and its statistics."""

import pytest

from repro.errors import StorageError
from repro.rdf import Literal, Triple, YAGO
from repro.relstore import TripleTable, collect_statistics
from repro.sparql import parse_query

BORN = YAGO.term("wasBornIn")
NAME = YAGO.term("hasGivenName")
ALICE, BOB, BERLIN, PARIS = YAGO.Alice, YAGO.Bob, YAGO.Berlin, YAGO.Paris


@pytest.fixture()
def table():
    t = TripleTable()
    t.insert_all(
        [
            Triple(ALICE, BORN, BERLIN),
            Triple(BOB, BORN, PARIS),
            Triple(ALICE, NAME, Literal("Alice")),
        ]
    )
    return t


class TestTripleTable:
    def test_insert_deduplicates(self, table):
        assert not table.insert(Triple(ALICE, BORN, BERLIN))
        assert len(table) == 3

    def test_contains(self, table):
        assert table.contains(Triple(ALICE, BORN, BERLIN))
        assert not table.contains(Triple(BOB, BORN, BERLIN))

    def test_predicates_and_cardinalities(self, table):
        assert table.predicate_cardinality(BORN) == 2
        assert table.predicate_cardinality(NAME) == 1
        assert table.predicate_cardinality(YAGO.term("unknown")) == 0
        assert table.cardinalities()[BORN] == 2

    def test_partition_decodes_triples(self, table):
        partition = table.partition(BORN)
        assert set(partition) == {Triple(ALICE, BORN, BERLIN), Triple(BOB, BORN, PARIS)}
        assert table.partition(YAGO.term("unknown")) == []

    def test_scan_predicate(self, table):
        predicate_id = table.dictionary.lookup(BORN)
        rows = list(table.scan_predicate(predicate_id))
        assert len(rows) == 2

    def test_point_lookups(self, table):
        predicate_id = table.dictionary.lookup(BORN)
        subject_id = table.dictionary.lookup(ALICE)
        object_id = table.dictionary.lookup(PARIS)
        assert len(list(table.lookup_subject(predicate_id, subject_id))) == 1
        assert len(list(table.lookup_object(predicate_id, object_id))) == 1

    def test_delete_leaves_tombstone_then_compact_reclaims(self, table):
        assert table.delete(Triple(ALICE, BORN, BERLIN))
        assert not table.delete(Triple(ALICE, BORN, BERLIN))
        assert len(table) == 2
        assert table.tombstone_count == 1
        assert not table.contains(Triple(ALICE, BORN, BERLIN))
        assert table.predicate_cardinality(BORN) == 1
        reclaimed = table.compact()
        assert reclaimed == 1
        assert table.tombstone_count == 0
        assert len(table) == 2

    def test_delete_unknown_triple_returns_false(self, table):
        assert not table.delete(Triple(YAGO.Zoe, BORN, BERLIN))

    def test_scan_skips_tombstones(self, table):
        table.delete(Triple(ALICE, BORN, BERLIN))
        assert len(list(table.scan())) == 2

    def test_require_term_id_raises_for_unknown_term(self, table):
        with pytest.raises(StorageError):
            table.require_term_id(YAGO.term("never_seen"))


class TestStatistics:
    def test_collect_statistics_counts_rows_and_distincts(self, table):
        stats = collect_statistics(table)
        assert stats.total_rows == 3
        born = stats.per_predicate[BORN]
        assert born.cardinality == 2
        assert born.distinct_subjects == 2
        assert born.distinct_objects == 2
        assert born.avg_fanout == pytest.approx(1.0)

    def test_estimate_pattern_rows_uses_partition_sizes(self, table):
        stats = collect_statistics(table)
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }")
        assert stats.estimate_pattern_rows(query.patterns[0]) == 2

    def test_estimate_pattern_rows_with_bound_object(self, table):
        stats = collect_statistics(table)
        query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn <%s> . }" % BERLIN.value)
        assert stats.estimate_pattern_rows(query.patterns[0]) >= 1

    def test_estimate_pattern_rows_for_unknown_predicate_is_zero(self, table):
        stats = collect_statistics(table)
        query = parse_query("SELECT ?p WHERE { ?p y:unknownPredicate ?c . }")
        assert stats.estimate_pattern_rows(query.patterns[0]) == 0

    def test_estimate_query_work_increases_with_patterns(self, table):
        stats = collect_statistics(table)
        one = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }")
        two = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasGivenName ?n . }")
        assert stats.estimate_query_work(two) > stats.estimate_query_work(one)
