"""Unit tests for materialized views (the RDB-views baseline machinery)."""

import pytest

from repro.execution import ResultTable
from repro.rdf import Literal, YAGO
from repro.relstore import MaterializedViewManager, RelationalStore, canonical_pattern_key
from repro.sparql import parse_query


def patterns_of(text):
    return parse_query(text).patterns


class TestCanonicalKey:
    def test_invariant_under_variable_renaming(self):
        a = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . }")
        b = patterns_of("SELECT ?x WHERE { ?x y:wasBornIn ?y . ?x y:hasAcademicAdvisor ?z . }")
        assert canonical_pattern_key(a) == canonical_pattern_key(b)

    def test_invariant_under_pattern_order(self):
        a = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . }")
        b = patterns_of("SELECT ?p WHERE { ?p y:hasAcademicAdvisor ?a . ?p y:wasBornIn ?c . }")
        assert canonical_pattern_key(a) == canonical_pattern_key(b)

    def test_different_constants_produce_different_keys(self):
        a = patterns_of('SELECT ?p WHERE { ?p y:hasGivenName "Eve" . ?p y:wasBornIn ?c . }')
        b = patterns_of('SELECT ?p WHERE { ?p y:hasGivenName "Bob" . ?p y:wasBornIn ?c . }')
        assert canonical_pattern_key(a) != canonical_pattern_key(b)

    def test_different_predicates_produce_different_keys(self):
        a = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:livesIn ?d . }")
        b = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:diedIn ?d . }")
        assert canonical_pattern_key(a) != canonical_pattern_key(b)


class TestViewManager:
    def _table(self, rows=1):
        return ResultTable(name="v", variables=("p",), rows=[(YAGO.term(f"e{i}"),) for i in range(rows)])

    def test_observation_frequency_drives_selection(self):
        manager = MaterializedViewManager(row_budget=10)
        frequent = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:livesIn ?d . }")
        rare = patterns_of("SELECT ?p WHERE { ?p y:diedIn ?c . ?p y:livesIn ?d . }")
        for _ in range(3):
            manager.observe(frequent)
        manager.observe(rare)
        assert manager.frequent_keys()[0] == canonical_pattern_key(frequent)

    def test_selection_respects_row_budget(self):
        manager = MaterializedViewManager(row_budget=5)
        big = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:livesIn ?d . }")
        small = patterns_of("SELECT ?p WHERE { ?p y:diedIn ?c . ?p y:livesIn ?d . }")
        manager.observe(big)
        manager.observe(big)
        manager.observe(small)
        candidates = {
            canonical_pattern_key(big): (tuple(big), self._table(rows=8)),
            canonical_pattern_key(small): (tuple(small), self._table(rows=3)),
        }
        selected = manager.select_views(candidates)
        # The frequent view does not fit; the small one does.
        assert selected == [canonical_pattern_key(small)]
        assert manager.total_rows() == 3

    def test_match_counts_hits(self):
        manager = MaterializedViewManager(row_budget=10)
        patterns = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:livesIn ?d . }")
        manager.observe(patterns)
        manager.select_views({canonical_pattern_key(patterns): (tuple(patterns), self._table())})
        view = manager.match(patterns)
        assert view is not None
        assert view.hits == 1
        assert manager.match(patterns_of("SELECT ?p WHERE { ?p y:diedIn ?c . ?p y:livesIn ?d . }")) is None

    def test_clear(self):
        manager = MaterializedViewManager(row_budget=10)
        patterns = patterns_of("SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:livesIn ?d . }")
        manager.observe(patterns)
        manager.select_views({canonical_pattern_key(patterns): (tuple(patterns), self._table())})
        manager.clear()
        assert len(manager) == 0
        assert manager.frequent_keys() == []


class TestExecuteWithView:
    def test_view_answers_covered_part_and_joins_remainder(self, mini_kg):
        store = RelationalStore(view_row_budget=100)
        store.load(mini_kg)
        subquery = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?city . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }"
        )
        materialized = ResultTable.from_result("view_0", store.execute(subquery))
        manager = store.view_manager
        manager.observe(subquery.patterns)
        manager.select_views({canonical_pattern_key(subquery.patterns): (subquery.patterns, materialized)})

        query = parse_query(
            "SELECT ?n WHERE { ?p y:hasGivenName ?n . ?p y:wasBornIn ?city . "
            "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }"
        )
        view = manager.match(subquery.patterns)
        assert view is not None
        with_view = store.execute_with_view(query, view)
        without_view = store.execute(query)
        assert with_view.distinct_rows() == without_view.distinct_rows()
        assert with_view.counters.view_rows_scanned == len(materialized)

    def test_fully_covered_query_served_from_view_alone(self, mini_kg):
        store = RelationalStore(view_row_budget=100)
        store.load(mini_kg)
        subquery = parse_query(
            "SELECT ?p ?city WHERE { ?p y:wasBornIn ?city . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }"
        )
        materialized = ResultTable.from_result("view_0", store.execute(subquery))
        manager = store.view_manager
        manager.observe(subquery.patterns)
        manager.select_views({canonical_pattern_key(subquery.patterns): (subquery.patterns, materialized)})
        view = manager.match(subquery.patterns)

        projected = parse_query(
            "SELECT ?p WHERE { ?p y:wasBornIn ?city . ?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }"
        )
        result = store.execute_with_view(projected, view)
        assert result.distinct_rows() == store.execute(projected).distinct_rows()
        assert result.counters.rows_scanned == 0
