"""Differential suite: every derived engine vs the decode-per-row reference.

The late-materialization executor (``RelationalStore(engine="idspace")``, the
default) and the vectorized columnar engine (``engine="columnar"``) must be
*indistinguishable in output* from the retained reference executor
(``engine="reference"``): byte-identical result bindings (same solutions,
same order, same dict contents) and bit-identical logical
:class:`~repro.cost.counters.WorkCounters` — therefore identical modelled
seconds — across every template family, unsharded and sharded, standalone
and through ``DualStore.run_query`` with physical-design mutations
interleaved, and across a persist round-trip.  Only wall-clock may differ;
that is the whole point.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DualStore,
    RelationalStore,
    ShardedRelationalStore,
    ShardingConfig,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    bio2rdf_workload,
    watdiv_workload,
    yago_workload,
)
from repro.execution import ResultTable
from repro.rdf import IRI, Literal, Triple, YAGO
from repro.relstore.executor import relational_work_units
from repro.sparql import parse_query

SHARD_COUNTS = (1, 4)

#: Aggressive skew settings so subject-sharded scatter paths are exercised.
AGGRESSIVE = ShardingConfig(skew_threshold=0.2, min_subject_shard_rows=16)


def assert_identical(warm, cold, context: str) -> None:
    """Byte-identical bindings (content *and* order) plus bit-identical work."""
    assert warm.variables == cold.variables, f"{context}: projected variables diverged"
    assert warm.bindings == cold.bindings, f"{context}: bindings diverged"
    assert warm.counters.as_dict() == cold.counters.as_dict(), f"{context}: work diverged"
    assert relational_work_units(warm.counters) == relational_work_units(cold.counters)


# --------------------------------------------------------------------------- #
# Workloads covering every template family
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def watdiv_dataset():
    return generate_watdiv(target_triples=2500, seed=23)


@pytest.fixture(scope="module")
def family_workloads(watdiv_dataset):
    """(family label, dataset, randomized queries) per template family."""
    rng = random.Random(99)
    cases = []
    for family in ("linear", "star", "snowflake", "complex"):
        workload = watdiv_workload(watdiv_dataset, family=family, seed=rng.randrange(10_000))
        cases.append((f"watdiv-{family}", watdiv_dataset.triples, workload.randomized(seed=rng.randrange(10_000))))
    yago = generate_yago(target_triples=2000, seed=11)
    cases.append(("yago-complex", yago.triples, yago_workload(yago, seed=rng.randrange(10_000)).randomized()))
    bio = generate_bio2rdf(target_triples=2000, seed=13)
    cases.append(("bio2rdf-mixed", bio.triples, bio2rdf_workload(bio, seed=rng.randrange(10_000)).randomized()))
    return cases


@pytest.fixture(scope="module")
def reference_runs(family_workloads):
    """Reference-executor results of every workload, computed once."""
    out = {}
    for label, triples, queries in family_workloads:
        store = RelationalStore(engine="reference")
        store.load(triples)
        out[label] = [store.execute(query) for query in queries]
    return out


# --------------------------------------------------------------------------- #
# Unsharded differential: byte-identical down to binding order
# --------------------------------------------------------------------------- #
def test_idspace_engine_matches_reference_for_every_family(family_workloads, reference_runs):
    for label, triples, queries in family_workloads:
        store = RelationalStore()  # idspace is the default engine
        store.load(triples)
        for index, (query, cold) in enumerate(zip(queries, reference_runs[label])):
            warm = store.execute(query)
            assert_identical(warm, cold, f"{label}[{index}]")
            assert warm.seconds == pytest.approx(cold.seconds, rel=0, abs=0)


def test_repeated_execution_through_the_bound_plan_memo_stays_identical(family_workloads, reference_runs):
    """The second execution takes the memoized (plan, compiled) path; answers
    and counters must not depend on which path bound the plan."""
    label, triples, queries = family_workloads[3]  # watdiv-complex
    store = RelationalStore()
    store.load(triples)
    first = [store.execute(q) for q in queries[:10]]
    for index, query in enumerate(queries[:10]):
        again = store.execute(query)
        assert_identical(again, first[index], f"memoized re-run [{index}]")
        assert_identical(again, reference_runs[label][index], f"memoized vs reference [{index}]")


# --------------------------------------------------------------------------- #
# Sharded differential (the scatter path gathers id tuples, decodes post-merge)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_idspace_matches_reference_for_every_family(
    shards, family_workloads, reference_runs, fingerprint
):
    """Sharded answers are binding-identical as a multiset (gather order may
    legally reorder rows; see the LIMIT caveat in relstore/sharded.py) with
    bit-identical logical work."""
    for label, triples, queries in family_workloads:
        store = ShardedRelationalStore(shards=shards, config=AGGRESSIVE)
        store.load(triples)
        for index, (query, cold) in enumerate(zip(queries, reference_runs[label])):
            warm = store.execute(query)
            assert fingerprint(warm) == fingerprint(cold), (
                f"{label}[{index}]: bindings diverged at N={shards}"
            )
            assert warm.counters.as_dict() == cold.counters.as_dict(), (
                f"{label}[{index}]: work diverged at N={shards}"
            )


# --------------------------------------------------------------------------- #
# Work budgets: the two engines must abort at the same step boundaries
# --------------------------------------------------------------------------- #
def test_capped_execution_parity(watdiv_dataset):
    reference = RelationalStore(engine="reference")
    reference.load(watdiv_dataset.triples)
    idspace = RelationalStore()
    idspace.load(watdiv_dataset.triples)
    queries = watdiv_workload(watdiv_dataset, family="complex", seed=5).ordered()[:8]
    for query in queries:
        for budget in (1.0, 50.0, 1e9):
            cold_result, cold_seconds = reference.execute_capped(query, work_budget=budget)
            warm_result, warm_seconds = idspace.execute_capped(query, work_budget=budget)
            assert (warm_result is None) == (cold_result is None)
            assert warm_seconds == pytest.approx(cold_seconds, rel=0, abs=0)
            if warm_result is not None:
                assert_identical(warm_result, cold_result, f"capped {budget}")


# --------------------------------------------------------------------------- #
# Filters: the ID fast path must not change value-comparison semantics
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def filter_store_pair(mini_kg):
    reference = RelationalStore(engine="reference")
    reference.load(mini_kg)
    idspace = RelationalStore()
    idspace.load(mini_kg)
    return idspace, reference


FILTER_QUERIES = [
    # id fast path: equality/inequality on same-term operands
    'SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . FILTER(?n = "Frank") }',
    'SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . FILTER(?n != "Frank") }',
    # constant absent from the dictionary (local-id + decode fallback)
    'SELECT ?p WHERE { ?p y:hasGivenName ?n . FILTER(?n = "Zelda") }',
    'SELECT ?p WHERE { ?p y:hasGivenName ?n . FILTER(?n != "Zelda") }',
    # var-var comparison across two patterns
    "SELECT ?a ?b WHERE { ?a y:wasBornIn ?c1 . ?b y:wasBornIn ?c2 . FILTER(?c1 = ?c2) }",
    "SELECT ?a ?b WHERE { ?a y:wasBornIn ?c1 . ?b y:wasBornIn ?c2 . FILTER(?c1 != ?c2) }",
    # ordering comparisons force the decode fallback on unequal ids
    'SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . FILTER(?n < "Carol") }',
    'SELECT ?p ?n WHERE { ?p y:hasGivenName ?n . FILTER(?n >= "Carol") }',
    # unbound filter variable: every solution must fail
    "SELECT ?p WHERE { ?p y:wasBornIn ?c . FILTER(?nope = ?c) }",
    # reflexive comparisons exercise the equal-id operator table
    "SELECT ?p WHERE { ?p y:wasBornIn ?c . FILTER(?c <= ?c) }",
    "SELECT ?p WHERE { ?p y:wasBornIn ?c . FILTER(?c < ?c) }",
]


@pytest.mark.parametrize("text", FILTER_QUERIES)
def test_filter_semantics_match_reference(filter_store_pair, text):
    idspace, reference = filter_store_pair
    query = parse_query(text)
    assert_identical(idspace.execute(query), reference.execute(query), text)


def test_nan_literals_defeat_the_equal_id_fast_path():
    """``"NaN"^^xsd:double`` compares unequal even to itself, so equal ids
    must NOT settle ``=``/``<=``/``>=``/``!=`` for doubles — the fast path
    has to hand them to the value comparison like the reference does."""
    age = YAGO.term("hasAge")
    nan = Literal("nan", "http://www.w3.org/2001/XMLSchema#double")
    triples = [
        Triple(YAGO.term("Ann"), age, nan),
        Triple(YAGO.term("Ben"), age, Literal.from_python(30.0)),
    ]
    reference = RelationalStore(engine="reference")
    reference.load(triples)
    idspace = RelationalStore()
    idspace.load(triples)
    for operator in ("=", "!=", "<", "<=", ">", ">="):
        query = parse_query(
            "SELECT ?p WHERE { ?p y:hasAge ?x . FILTER(?x %s ?x) }" % operator
        )
        cold = reference.execute(query)
        warm = idspace.execute(query)
        assert_identical(warm, cold, f"NaN reflexive {operator}")
        people = {b["p"] for b in warm.bindings}
        # NaN fails every reflexive comparison except `!=` (NaN != NaN is
        # true); Ben's 30.0 satisfies exactly the reflexive-true operators.
        assert (YAGO.term("Ann") in people) == (operator == "!=")
        assert (YAGO.term("Ben") in people) == (operator in ("=", "<=", ">="))


def test_malformed_integer_literal_raises_in_both_engines():
    """``int("abc")`` raises during ``Literal.to_python``; the equal-id fast
    path must not silently swallow what the reference engine surfaces."""
    age = YAGO.term("hasAge")
    broken = Literal("abc", "http://www.w3.org/2001/XMLSchema#integer")
    triples = [Triple(YAGO.term("Ann"), age, broken)]
    query = parse_query("SELECT ?p WHERE { ?p y:hasAge ?x . FILTER(?x = ?x) }")
    for engine in ("reference", "idspace"):
        store = RelationalStore(engine=engine)
        store.load(triples)
        with pytest.raises(ValueError):
            store.execute(query)


def test_numeric_value_equality_across_datatypes_still_matches():
    """``"30"^^xsd:integer`` and ``"30.0"^^xsd:double`` are *different terms*
    (different ids) but equal *values* — the exact case the ID fast path must
    hand to the decode fallback instead of deciding by id inequality."""
    age = YAGO.term("hasAge")
    store_triples = [
        Triple(YAGO.term("Ann"), age, Literal.from_python(30)),
        Triple(YAGO.term("Ben"), age, Literal.from_python(30.0)),
        Triple(YAGO.term("Cleo"), age, Literal.from_python(31)),
    ]
    query = parse_query("SELECT ?a ?b WHERE { ?a y:hasAge ?x . ?b y:hasAge ?y . FILTER(?x = ?y) }")
    reference = RelationalStore(engine="reference")
    reference.load(store_triples)
    idspace = RelationalStore()
    idspace.load(store_triples)
    cold = reference.execute(query)
    warm = idspace.execute(query)
    assert_identical(warm, cold, "cross-datatype equality")
    pairs = {(b["a"], b["b"]) for b in warm.bindings}
    # Ann's integer 30 and Ben's double 30.0 must match each other by value.
    assert (YAGO.term("Ann"), YAGO.term("Ben")) in pairs


# --------------------------------------------------------------------------- #
# Migrated tables (Case 2 plans): hash join + execution-local term ids
# --------------------------------------------------------------------------- #
def test_extra_table_with_shared_variables_matches_reference(mini_kg):
    reference = RelationalStore(engine="reference")
    reference.load(mini_kg)
    idspace = RelationalStore()
    idspace.load(mini_kg)
    table = ResultTable(
        name="tmp",
        variables=("p", "tag"),
        rows=[
            (YAGO.term("Alice"), Literal("known")),
            (YAGO.term("Eve"), Literal("known")),
            # A subject that exists nowhere in the store: joins with nothing,
            # and its terms only live in the execution-local id space.
            (IRI("http://example.org/ghost"), Literal("phantom")),
        ],
    )
    query = parse_query("SELECT ?p ?n ?tag WHERE { ?p y:hasGivenName ?n . }")
    for tables_are_views in (False, True):
        cold = reference.execute(query, extra_tables=[table], tables_are_views=tables_are_views)
        warm = idspace.execute(query, extra_tables=[table], tables_are_views=tables_are_views)
        assert_identical(warm, cold, f"extra table (views={tables_are_views})")
        assert len(warm) == 2


def test_disjoint_extra_table_still_cartesian(mini_kg):
    reference = RelationalStore(engine="reference")
    reference.load(mini_kg)
    idspace = RelationalStore()
    idspace.load(mini_kg)
    table = ResultTable(name="tmp", variables=("x",), rows=[(Literal("a"),), (Literal("b"),)])
    query = parse_query("SELECT ?p ?x WHERE { ?p y:isMarriedTo ?q . }")
    cold = reference.execute(query, extra_tables=[table])
    warm = idspace.execute(query, extra_tables=[table])
    assert_identical(warm, cold, "disjoint extra table")
    assert len(warm) == 2 * 2  # two marriages x two tags


# --------------------------------------------------------------------------- #
# Edge pattern shapes (generic matcher loop, table scans, unmatchable consts)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def edge_store_pair(mini_kg):
    narcissus = YAGO.term("Narcissus")
    extra = [Triple(narcissus, YAGO.term("isMarriedTo"), narcissus)]
    reference = RelationalStore(engine="reference")
    reference.load(mini_kg)
    reference.insert(extra)
    idspace = RelationalStore()
    idspace.load(mini_kg)
    idspace.insert(extra)
    return idspace, reference


EDGE_QUERIES = [
    # repeated variable within one pattern (dup-slot check; one self-loop)
    "SELECT ?x WHERE { ?x y:isMarriedTo ?x . }",
    # full scan binding all three positions
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }",
    # table scan with a constant subject that is in the dictionary
    "SELECT ?p ?o WHERE { <http://yago-knowledge.org/resource/Alice> ?p ?o . }",
    # table scan with a subject the dictionary has never seen: the pattern is
    # unmatchable, but the scan still charges every row
    "SELECT ?p ?o WHERE { <http://example.org/ghost> ?p ?o . }",
    # projected variable that no pattern binds
    "SELECT ?p ?nothing WHERE { ?p y:wasBornIn ?c . }",
    # a three-variable pattern joining on one shared variable (two fresh
    # columns enter the pipeline at once)
    "SELECT ?p ?r ?o WHERE { ?p y:hasAcademicAdvisor ?a . ?p ?r ?o . }",
    # DISTINCT + LIMIT on id tuples
    "SELECT DISTINCT ?city WHERE { ?p y:wasBornIn ?city . } LIMIT 2",
]


@pytest.mark.parametrize("text", EDGE_QUERIES)
def test_edge_pattern_shapes_match_reference(edge_store_pair, text):
    idspace, reference = edge_store_pair
    query = parse_query(text)
    assert_identical(idspace.execute(query), reference.execute(query), text)


def test_empty_extra_table_short_circuits_identically(edge_store_pair):
    """Once an extra table empties the pipeline, later tables must charge
    nothing — in both engines."""
    idspace, reference = edge_store_pair
    empty = ResultTable(name="empty", variables=("p",), rows=[])
    follow = ResultTable(name="follow", variables=("q",), rows=[(YAGO.term("Alice"),)])
    query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }")
    cold = reference.execute(query, extra_tables=[empty, follow])
    warm = idspace.execute(query, extra_tables=[empty, follow])
    assert_identical(warm, cold, "empty extra table")
    assert warm.counters.rows_scanned == len(empty)  # the second table never charged


# --------------------------------------------------------------------------- #
# DualStore differential with interleaved physical-design mutations
# --------------------------------------------------------------------------- #
def _fresh_triples(dataset, count: int, salt: str):
    predicate = sorted(dataset.triples.predicates, key=lambda p: p.value)[0]
    return [
        Triple(IRI(f"http://example.org/fresh/{salt}/{i}"), predicate, IRI(f"http://example.org/val/{i}"))
        for i in range(count)
    ]


def test_dualstore_runs_identically_with_interleaved_mutations(watdiv_dataset):
    workload = watdiv_workload(watdiv_dataset, seed=41)
    queries = workload.randomized(seed=3)[:40]

    cold_dual = DualStore(relational_store=RelationalStore(engine="reference")).load(
        watdiv_dataset.triples
    )
    warm_dual = DualStore().load(watdiv_dataset.triples)

    rng = random.Random(7)
    transferable = sorted({p for q in queries for p in q.predicates()}, key=lambda p: p.value)
    transferred: list = []

    for index, query in enumerate(queries):
        cold = cold_dual.run_query(query)
        warm = warm_dual.run_query(query)
        assert warm.record.route == cold.record.route, f"route diverged at query {index}"
        assert_identical(warm.result, cold.result, f"query {index} on route {cold.record.route}")

        # Interleave physical-design changes and inserts between queries; the
        # inserts also age out the idspace store's bound-plan memo, so stale
        # compiled constants would be caught here.
        action = index % 5
        if action == 1 and transferable:
            predicate = transferable.pop(rng.randrange(len(transferable)))
            cold_dual.transfer_partition(predicate)
            warm_dual.transfer_partition(predicate)
            transferred.append(predicate)
        elif action == 3 and transferred:
            predicate = transferred.pop(0)
            cold_dual.evict_partition(predicate)
            warm_dual.evict_partition(predicate)
        elif action == 4:
            fresh = _fresh_triples(watdiv_dataset, 5, salt=str(index))
            cold_dual.insert(fresh)
            warm_dual.insert(fresh)
            assert len(cold_dual.relational) == len(warm_dual.relational)

    assert cold_dual.graph.loaded_predicates == warm_dual.graph.loaded_predicates
    assert cold_dual.partition_sizes() == warm_dual.partition_sizes()


def test_sharded_dualstore_with_mutations_matches_reference(watdiv_dataset, fingerprint):
    """The full stack: reference unsharded vs idspace sharded (N=4), with
    transfers and inserts between queries."""
    workload = watdiv_workload(watdiv_dataset, seed=17)
    queries = workload.randomized(seed=29)[:25]
    cold_dual = DualStore(relational_store=RelationalStore(engine="reference")).load(
        watdiv_dataset.triples
    )
    warm_dual = DualStore(shards=4, sharding=AGGRESSIVE).load(watdiv_dataset.triples)
    transferable = sorted({p for q in queries for p in q.predicates()}, key=lambda p: p.value)

    for index, query in enumerate(queries):
        cold = cold_dual.run_query(query)
        warm = warm_dual.run_query(query)
        assert warm.record.route == cold.record.route, f"route diverged at query {index}"
        assert fingerprint(warm.result) == fingerprint(cold.result), f"bindings diverged at {index}"
        assert warm.result.counters.as_dict() == cold.result.counters.as_dict(), (
            f"work diverged at query {index}"
        )
        if index % 4 == 1 and transferable:
            predicate = transferable.pop(0)
            if cold_dual.graph.fits(cold_dual.relational.partition_size(predicate)):
                cold_dual.transfer_partition(predicate)
                warm_dual.transfer_partition(predicate)
        elif index % 4 == 3:
            fresh = _fresh_triples(watdiv_dataset, 3, salt=f"s{index}")
            cold_dual.insert(fresh)
            warm_dual.insert(fresh)


# --------------------------------------------------------------------------- #
# Columnar engine: the same oracle, through batch kernels
# --------------------------------------------------------------------------- #
def test_columnar_engine_matches_reference_for_every_family(family_workloads, reference_runs):
    """Full family matrix: batch hash joins + mask selection + decode-once
    projection must reproduce the reference byte-for-byte, bit-for-bit."""
    for label, triples, queries in family_workloads:
        store = RelationalStore(engine="columnar")
        store.load(triples)
        for index, (query, cold) in enumerate(zip(queries, reference_runs[label])):
            warm = store.execute(query)
            assert_identical(warm, cold, f"columnar {label}[{index}]")
            assert warm.seconds == pytest.approx(cold.seconds, rel=0, abs=0)


def test_columnar_stdlib_kernels_match_reference(monkeypatch, family_workloads, reference_runs):
    """The numpy fast path is optional: with the kill-switch set the stdlib
    ``array('q')`` kernels must produce the very same answers and work."""
    monkeypatch.setenv("REPRO_COLUMNAR_FORCE_STDLIB", "1")
    label, triples, queries = family_workloads[3]  # watdiv-complex
    store = RelationalStore(engine="columnar")
    store.load(triples)
    assert store.table.kernels.name == "stdlib"
    for index, (query, cold) in enumerate(zip(queries[:15], reference_runs[label])):
        assert_identical(store.execute(query), cold, f"stdlib columnar [{index}]")


def test_columnar_bound_plan_memo_stays_identical(family_workloads, reference_runs):
    label, triples, queries = family_workloads[3]  # watdiv-complex
    store = RelationalStore(engine="columnar")
    store.load(triples)
    first = [store.execute(q) for q in queries[:10]]
    for index, query in enumerate(queries[:10]):
        again = store.execute(query)
        assert_identical(again, first[index], f"columnar memoized re-run [{index}]")
        assert_identical(again, reference_runs[label][index], f"columnar memo vs reference [{index}]")


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_columnar_matches_reference_for_every_family(
    shards, family_workloads, reference_runs, fingerprint
):
    """Sharded columnar: per-shard column fragments concatenated in shard
    order must carry the same multiset of bindings and identical work."""
    for label, triples, queries in family_workloads:
        store = ShardedRelationalStore(shards=shards, config=AGGRESSIVE, engine="columnar")
        store.load(triples)
        for index, (query, cold) in enumerate(zip(queries, reference_runs[label])):
            warm = store.execute(query)
            assert fingerprint(warm) == fingerprint(cold), (
                f"columnar {label}[{index}]: bindings diverged at N={shards}"
            )
            assert warm.counters.as_dict() == cold.counters.as_dict(), (
                f"columnar {label}[{index}]: work diverged at N={shards}"
            )


def test_capped_execution_parity_columnar(watdiv_dataset):
    """Budget aborts must land on the same step boundary in the columnar
    engine — blocks are batched but the charges are per-step identical."""
    reference = RelationalStore(engine="reference")
    reference.load(watdiv_dataset.triples)
    columnar = RelationalStore(engine="columnar")
    columnar.load(watdiv_dataset.triples)
    queries = watdiv_workload(watdiv_dataset, family="complex", seed=5).ordered()[:8]
    for query in queries:
        for budget in (1.0, 50.0, 1e9):
            cold_result, cold_seconds = reference.execute_capped(query, work_budget=budget)
            warm_result, warm_seconds = columnar.execute_capped(query, work_budget=budget)
            assert (warm_result is None) == (cold_result is None)
            assert warm_seconds == pytest.approx(cold_seconds, rel=0, abs=0)
            if warm_result is not None:
                assert_identical(warm_result, cold_result, f"columnar capped {budget}")


@pytest.fixture(scope="module")
def columnar_filter_store(mini_kg):
    store = RelationalStore(engine="columnar")
    store.load(mini_kg)
    return store


@pytest.mark.parametrize("text", FILTER_QUERIES)
def test_columnar_filter_semantics_match_reference(columnar_filter_store, filter_store_pair, text):
    _, reference = filter_store_pair
    query = parse_query(text)
    assert_identical(
        columnar_filter_store.execute(query), reference.execute(query), f"columnar {text}"
    )


def test_columnar_nan_and_malformed_literals_match_reference():
    """The vectorized equal-id selection must defer doubles to the value
    comparison (NaN) and surface the same ValueError on malformed lexicals."""
    age = YAGO.term("hasAge")
    nan = Literal("nan", "http://www.w3.org/2001/XMLSchema#double")
    triples = [
        Triple(YAGO.term("Ann"), age, nan),
        Triple(YAGO.term("Ben"), age, Literal.from_python(30.0)),
    ]
    reference = RelationalStore(engine="reference")
    reference.load(triples)
    columnar = RelationalStore(engine="columnar")
    columnar.load(triples)
    for operator in ("=", "!=", "<", "<=", ">", ">="):
        query = parse_query("SELECT ?p WHERE { ?p y:hasAge ?x . FILTER(?x %s ?x) }" % operator)
        assert_identical(
            columnar.execute(query), reference.execute(query), f"columnar NaN {operator}"
        )
    broken = RelationalStore(engine="columnar")
    broken.load([Triple(YAGO.term("Ann"), age, Literal("abc", "http://www.w3.org/2001/XMLSchema#integer"))])
    with pytest.raises(ValueError):
        broken.execute(parse_query("SELECT ?p WHERE { ?p y:hasAge ?x . FILTER(?x = ?x) }"))


@pytest.fixture(scope="module")
def columnar_edge_store(mini_kg):
    store = RelationalStore(engine="columnar")
    store.load(mini_kg)
    store.insert([Triple(YAGO.term("Narcissus"), YAGO.term("isMarriedTo"), YAGO.term("Narcissus"))])
    return store


@pytest.mark.parametrize("text", EDGE_QUERIES)
def test_columnar_edge_pattern_shapes_match_reference(columnar_edge_store, edge_store_pair, text):
    _, reference = edge_store_pair
    query = parse_query(text)
    assert_identical(columnar_edge_store.execute(query), reference.execute(query), f"columnar {text}")


def test_columnar_extra_tables_match_reference(mini_kg):
    reference = RelationalStore(engine="reference")
    reference.load(mini_kg)
    columnar = RelationalStore(engine="columnar")
    columnar.load(mini_kg)
    shared = ResultTable(
        name="tmp",
        variables=("p", "tag"),
        rows=[
            (YAGO.term("Alice"), Literal("known")),
            (YAGO.term("Eve"), Literal("known")),
            (IRI("http://example.org/ghost"), Literal("phantom")),
        ],
    )
    query = parse_query("SELECT ?p ?n ?tag WHERE { ?p y:hasGivenName ?n . }")
    for tables_are_views in (False, True):
        cold = reference.execute(query, extra_tables=[shared], tables_are_views=tables_are_views)
        warm = columnar.execute(query, extra_tables=[shared], tables_are_views=tables_are_views)
        assert_identical(warm, cold, f"columnar extra table (views={tables_are_views})")
    # Disjoint table -> cartesian; empty first table -> later tables uncharged.
    disjoint = ResultTable(name="tmp", variables=("x",), rows=[(Literal("a"),), (Literal("b"),)])
    cartesian_query = parse_query("SELECT ?p ?x WHERE { ?p y:isMarriedTo ?q . }")
    assert_identical(
        columnar.execute(cartesian_query, extra_tables=[disjoint]),
        reference.execute(cartesian_query, extra_tables=[disjoint]),
        "columnar disjoint extra table",
    )
    empty = ResultTable(name="empty", variables=("p",), rows=[])
    follow = ResultTable(name="follow", variables=("q",), rows=[(YAGO.term("Alice"),)])
    short_query = parse_query("SELECT ?p WHERE { ?p y:wasBornIn ?c . }")
    cold = reference.execute(short_query, extra_tables=[empty, follow])
    warm = columnar.execute(short_query, extra_tables=[empty, follow])
    assert_identical(warm, cold, "columnar empty extra table")
    assert warm.counters.rows_scanned == len(empty)


def test_columnar_dualstore_runs_identically_with_interleaved_mutations(watdiv_dataset):
    """DualStore(engine="columnar") through the mutation gauntlet: partition
    transfers, evictions, and inserts (which invalidate the cached column
    blocks and age the bound-plan memo) between queries."""
    workload = watdiv_workload(watdiv_dataset, seed=41)
    queries = workload.randomized(seed=3)[:40]

    cold_dual = DualStore(relational_store=RelationalStore(engine="reference")).load(
        watdiv_dataset.triples
    )
    warm_dual = DualStore(engine="columnar").load(watdiv_dataset.triples)

    rng = random.Random(7)
    transferable = sorted({p for q in queries for p in q.predicates()}, key=lambda p: p.value)
    transferred: list = []

    for index, query in enumerate(queries):
        cold = cold_dual.run_query(query)
        warm = warm_dual.run_query(query)
        assert warm.record.route == cold.record.route, f"route diverged at query {index}"
        assert_identical(warm.result, cold.result, f"columnar query {index} on route {cold.record.route}")

        action = index % 5
        if action == 1 and transferable:
            predicate = transferable.pop(rng.randrange(len(transferable)))
            cold_dual.transfer_partition(predicate)
            warm_dual.transfer_partition(predicate)
            transferred.append(predicate)
        elif action == 3 and transferred:
            predicate = transferred.pop(0)
            cold_dual.evict_partition(predicate)
            warm_dual.evict_partition(predicate)
        elif action == 4:
            fresh = _fresh_triples(watdiv_dataset, 5, salt=str(index))
            cold_dual.insert(fresh)
            warm_dual.insert(fresh)
            assert len(cold_dual.relational) == len(warm_dual.relational)

    assert cold_dual.graph.loaded_predicates == warm_dual.graph.loaded_predicates
    assert cold_dual.partition_sizes() == warm_dual.partition_sizes()


def test_columnar_sharded_dualstore_with_mutations_matches_reference(watdiv_dataset, fingerprint):
    workload = watdiv_workload(watdiv_dataset, seed=17)
    queries = workload.randomized(seed=29)[:25]
    cold_dual = DualStore(relational_store=RelationalStore(engine="reference")).load(
        watdiv_dataset.triples
    )
    warm_dual = DualStore(shards=4, sharding=AGGRESSIVE, engine="columnar").load(
        watdiv_dataset.triples
    )
    transferable = sorted({p for q in queries for p in q.predicates()}, key=lambda p: p.value)

    for index, query in enumerate(queries):
        cold = cold_dual.run_query(query)
        warm = warm_dual.run_query(query)
        assert warm.record.route == cold.record.route, f"route diverged at query {index}"
        assert fingerprint(warm.result) == fingerprint(cold.result), f"bindings diverged at {index}"
        assert warm.result.counters.as_dict() == cold.result.counters.as_dict(), (
            f"work diverged at query {index}"
        )
        if index % 4 == 1 and transferable:
            predicate = transferable.pop(0)
            if cold_dual.graph.fits(cold_dual.relational.partition_size(predicate)):
                cold_dual.transfer_partition(predicate)
                warm_dual.transfer_partition(predicate)
        elif index % 4 == 3:
            fresh = _fresh_triples(watdiv_dataset, 3, salt=f"s{index}")
            cold_dual.insert(fresh)
            warm_dual.insert(fresh)


@pytest.mark.parametrize("shards", (None, 4))
def test_columnar_engine_survives_a_persist_round_trip(tmp_path, shards, watdiv_dataset, fingerprint):
    """Snapshot/restore keeps engine="columnar" and the restored store's
    answers and logical work stay identical to the pre-snapshot store."""
    from repro.persist import load_snapshot, write_snapshot

    kwargs = {"engine": "columnar"} if shards is None else {
        "engine": "columnar", "shards": shards, "sharding": AGGRESSIVE
    }
    dual = DualStore(**kwargs).load(watdiv_dataset.triples)
    queries = watdiv_workload(watdiv_dataset, seed=61).randomized(seed=67)[:10]
    before = [dual.run_query(q).result for q in queries]

    write_snapshot(dual, tmp_path / "snap")
    restored = load_snapshot(tmp_path / "snap").dual
    assert restored.relational.engine == "columnar"

    for index, query in enumerate(queries):
        after = restored.run_query(query).result
        assert fingerprint(after) == fingerprint(before[index]), f"bindings diverged at {index}"
        assert after.counters.as_dict() == before[index].counters.as_dict(), (
            f"work diverged at query {index}"
        )
