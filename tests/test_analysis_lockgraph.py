"""Lock-order race detector suite.

Pins the detector itself: the seeded two-thread AB/BA scenario must be
flagged as a cycle with both witness stacks, consistent ordering must stay
acyclic, re-entrant acquisition must not self-edge, and the
``instrument()`` patch must capture project lock construction (and fully
restore ``threading`` on exit)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lockgraph import LockGraph, LockOrderError, instrument
from repro.serve.adaptive import ReadWriteLock


def run_thread(target, name):
    thread = threading.Thread(target=target, name=name, daemon=True)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive(), f"{name} wedged"


# --------------------------------------------------------------------------- #
# The seeded AB/BA deadlock
# --------------------------------------------------------------------------- #
def test_seeded_ab_ba_ordering_is_flagged_as_a_cycle():
    graph = LockGraph()
    lock_a = graph.wrap(threading.Lock(), name="A")
    lock_b = graph.wrap(threading.Lock(), name="B")

    def a_then_b():
        with lock_a:
            with lock_b:
                pass

    def b_then_a():
        with lock_b:
            with lock_a:
                pass

    # Sequential threads: the run itself can never wedge, yet the opposite
    # acquisition orders are exactly the latent deadlock the graph catches.
    run_thread(a_then_b, name="ab-thread")
    run_thread(b_then_a, name="ba-thread")

    cycles = graph.cycles()
    assert len(cycles) == 1
    assert {graph.name_of(node) for node in cycles[0]} == {"A", "B"}
    with pytest.raises(LockOrderError):
        graph.assert_acyclic()


def test_cycle_report_carries_both_witness_stacks_and_threads():
    graph = LockGraph()
    lock_a = graph.wrap(threading.Lock(), name="A")
    lock_b = graph.wrap(threading.Lock(), name="B")

    def a_then_b():
        with lock_a:
            with lock_b:
                pass

    def b_then_a():
        with lock_b:
            with lock_a:
                pass

    run_thread(a_then_b, name="ab-thread")
    run_thread(b_then_a, name="ba-thread")

    report = graph.report_cycles()
    assert "potential deadlock" in report
    assert "edge A -> B" in report and "edge B -> A" in report
    assert "'ab-thread'" in report and "'ba-thread'" in report
    # Both stacks per edge: where the held lock was taken, and where the
    # second was taken on top of it — pointing into this very test.
    assert report.count("was acquired at:") >= 4
    assert "a_then_b" in report and "b_then_a" in report


def test_consistent_ordering_stays_acyclic():
    graph = LockGraph()
    lock_a = graph.wrap(threading.Lock(), name="A")
    lock_b = graph.wrap(threading.Lock(), name="B")

    def a_then_b():
        with lock_a:
            with lock_b:
                pass

    run_thread(a_then_b, name="first")
    run_thread(a_then_b, name="second")

    assert graph.edge_names() == {("A", "B")}
    assert graph.cycles() == []
    assert "acyclic" in graph.report_cycles()
    graph.assert_acyclic()  # must not raise


def test_three_lock_rotation_is_flagged():
    graph = LockGraph()
    locks = {name: graph.wrap(threading.Lock(), name=name) for name in "ABC"}

    def nested(first, second):
        def body():
            with locks[first]:
                with locks[second]:
                    pass

        return body

    run_thread(nested("A", "B"), name="ab")
    run_thread(nested("B", "C"), name="bc")
    run_thread(nested("C", "A"), name="ca")

    cycles = graph.cycles()
    assert len(cycles) == 1
    assert {graph.name_of(node) for node in cycles[0]} == {"A", "B", "C"}


# --------------------------------------------------------------------------- #
# Held-set bookkeeping
# --------------------------------------------------------------------------- #
def test_reentrant_rlock_acquisition_does_not_self_edge():
    graph = LockGraph()
    lock = graph.wrap(threading.RLock(), name="R")

    with lock:
        with lock:
            pass
    with lock:  # still releasable after the nested exit
        pass

    assert graph.edges == {}
    assert graph.cycles() == []


def test_sequential_acquisitions_create_no_edges():
    graph = LockGraph()
    lock_a = graph.wrap(threading.Lock(), name="A")
    lock_b = graph.wrap(threading.Lock(), name="B")

    with lock_a:
        pass
    with lock_b:
        pass

    assert graph.edges == {}


def test_wrapped_lock_keeps_the_lock_contract():
    graph = LockGraph()
    lock = graph.wrap(threading.Lock(), name="L")
    assert lock.acquire() is True
    assert lock.locked()
    assert lock.acquire(blocking=False) is False  # a failed try-acquire
    lock.release()
    assert not lock.locked()
    assert graph.edges == {}


# --------------------------------------------------------------------------- #
# instrument(): patching project lock construction
# --------------------------------------------------------------------------- #
def test_instrument_tracks_locks_created_by_project_code():
    from repro.core import DualStore

    graph = LockGraph()
    raw_lock, raw_rlock = threading.Lock, threading.RLock
    with instrument(graph) as active:
        assert active is graph
        DualStore()
        assert graph.locks, "project lock construction was not captured"
        assert any("@" in info.name for info in graph.locks.values())
        # Locks created by non-project code (this test file) stay raw.
        assert type(threading.Lock()).__name__ != "_InstrumentedLock"
    assert threading.Lock is raw_lock and threading.RLock is raw_rlock


def test_instrument_is_exclusive():
    graph = LockGraph()
    with instrument(graph):
        with pytest.raises(RuntimeError):
            with instrument(LockGraph()):
                pass  # pragma: no cover - never reached
    # The failed nested install must not have torn down the outer state.
    assert threading.Lock is not None


def test_read_write_lock_orders_against_plain_locks():
    graph = LockGraph()
    with instrument(graph):
        gate = ReadWriteLock()
        inner = graph.wrap(threading.Lock(), name="inner")

        def read_then_inner():
            with gate.read_locked():
                with inner:
                    pass

        def inner_then_write():
            with inner:
                with gate.write_locked():
                    pass

        run_thread(read_then_inner, name="reader")
        run_thread(inner_then_write, name="writer")

        cycles = graph.cycles()
        assert len(cycles) == 1
        names = {graph.name_of(node) for node in cycles[0]}
        assert "inner" in names
        assert any(name.startswith("ReadWriteLock@") for name in names)
    # Patched methods are restored on exit.
    assert "acquire_read" not in vars(ReadWriteLock()) and ReadWriteLock.acquire_read


def test_read_write_lock_same_direction_stays_acyclic():
    graph = LockGraph()
    with instrument(graph):
        gate = ReadWriteLock()
        inner = graph.wrap(threading.Lock(), name="inner")

        def read_then_inner():
            with gate.read_locked():
                with inner:
                    pass

        def write_then_inner():
            with gate.write_locked():
                with inner:
                    pass

        run_thread(read_then_inner, name="reader")
        run_thread(write_then_inner, name="writer")
        assert graph.cycles() == []
        assert len(graph.edges) == 1  # both sides are one gate node
