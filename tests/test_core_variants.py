"""Integration-level tests for the store variants and the workload runner."""

import pytest

from repro.core import (
    Dotil,
    DotilConfig,
    RDBGDB,
    RDBOnly,
    RDBViews,
    StaticTuner,
    improvement_percent,
    run_workload,
    run_workload_repeated,
)
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def batches(yago_queries):
    return yago_queries.batches("ordered")


class TestRDBOnly:
    def test_processes_every_query_relationally(self, yago_dataset, batches):
        variant = RDBOnly().load(yago_dataset.triples)
        result = run_workload(variant, batches)
        assert result.record_count() == sum(len(b) for b in batches)
        assert all(r.route == "relational" for batch in result.batches for r in batch.records)
        assert result.total_tti > 0

    def test_flags_complex_queries(self, yago_dataset, batches):
        variant = RDBOnly().load(yago_dataset.triples)
        batch = variant.run_batch(batches[0])
        assert any(record.had_complex_subquery for record in batch.records)


class TestRDBViews:
    def test_views_materialise_after_offline_phase(self, yago_dataset, batches):
        variant = RDBViews().load(yago_dataset.triples)
        variant.run_batch(batches[0])
        variant.offline_phase(batches[0])
        assert variant.store.view_manager is not None
        assert len(variant.store.view_manager) >= 1

    def test_views_respect_budget_fraction(self, yago_dataset, batches):
        variant = RDBViews(view_budget_fraction=0.25).load(yago_dataset.triples)
        variant.offline_phase(batches[0])
        assert variant.store.view_manager.total_rows() <= int(0.25 * len(yago_dataset.triples))

    def test_repeated_identical_batch_hits_views(self, yago_dataset, batches):
        variant = RDBViews().load(yago_dataset.triples)
        variant.run_batch(batches[0])
        variant.offline_phase(batches[0])
        second_pass = variant.run_batch(batches[0])
        assert "view" in second_pass.route_counts()

    def test_answers_match_rdb_only(self, yago_dataset, batches):
        views = RDBViews().load(yago_dataset.triples)
        only = RDBOnly().load(yago_dataset.triples)
        views.run_batch(batches[0])
        views.offline_phase(batches[0])
        for query in batches[0]:
            expected = only.store.execute(query).distinct_rows()
            view = None
            complex_subquery = views.identifier.identify(query)
            if complex_subquery is not None:
                view = views.store.view_manager.match(complex_subquery.patterns)
            if view is not None:
                assert views.store.execute_with_view(query, view).distinct_rows() == expected


class TestRDBGDB:
    def test_offline_phase_transfers_partitions(self, yago_dataset, batches):
        variant = RDBGDB(config=DotilConfig(prob=1.0)).load(yago_dataset.triples)
        variant.run_batch(batches[0])
        report = variant.offline_phase(batches[0])
        assert report is not None
        assert report.transferred
        assert variant.graph_coverage() > 0

    def test_later_batches_use_the_graph_store(self, yago_dataset, batches):
        variant = RDBGDB(config=DotilConfig(prob=1.0)).load(yago_dataset.triples)
        result = run_workload(variant, batches)
        later_routes = set()
        for batch in result.batches[1:]:
            later_routes.update(batch.route_counts())
        assert {"split", "graph"} & later_routes

    def test_answers_match_rdb_only_on_every_route(self, yago_dataset, batches):
        gdb = RDBGDB(config=DotilConfig(prob=1.0)).load(yago_dataset.triples)
        only = RDBOnly().load(yago_dataset.triples)
        run_workload(gdb, batches)  # warm the graph store
        for query in [q for batch in batches for q in batch]:
            expected = only.store.execute(query).distinct_rows()
            assert gdb.dual.run_query(query).result.distinct_rows() == expected

    def test_improves_over_rdb_only_when_warm(self, yago_dataset, batches):
        only = run_workload_repeated(RDBOnly().load(yago_dataset.triples), batches, repetitions=3, discard=1)
        gdb = run_workload_repeated(
            RDBGDB(config=DotilConfig(prob=1.0)).load(yago_dataset.triples),
            batches,
            repetitions=3,
            discard=1,
        )
        assert gdb.total_tti < only.total_tti
        assert improvement_percent(only.total_tti, gdb.total_tti) > 5.0

    def test_custom_tuner_factory(self, yago_dataset, batches):
        variant = RDBGDB(tuner_factory=lambda dual: StaticTuner(dual)).load(yago_dataset.triples)
        run_workload(variant, batches)
        assert variant.graph_coverage() == 0.0
        assert variant.qmatrix_sum() == (0.0, 0.0, 0.0, 0.0)

    def test_qmatrix_sum_grows_with_dotil(self, yago_dataset, batches):
        variant = RDBGDB(config=DotilConfig(prob=1.0)).load(yago_dataset.triples)
        run_workload(variant, batches)
        assert isinstance(variant.tuner, Dotil)
        assert sum(variant.qmatrix_sum()) > 0


class TestRunner:
    def test_run_workload_requires_batches(self, yago_dataset):
        with pytest.raises(WorkloadError):
            run_workload(RDBOnly().load(yago_dataset.triples), [])

    def test_repeated_run_validates_protocol(self, yago_dataset, batches):
        variant = RDBOnly().load(yago_dataset.triples)
        with pytest.raises(WorkloadError):
            run_workload_repeated(variant, batches, repetitions=0)
        with pytest.raises(WorkloadError):
            run_workload_repeated(variant, batches, repetitions=2, discard=2)

    def test_repeated_run_averages_batches(self, yago_dataset, batches):
        variant = RDBOnly().load(yago_dataset.triples)
        averaged = run_workload_repeated(variant, batches, repetitions=3, discard=1)
        single = run_workload(RDBOnly().load(yago_dataset.triples), batches)
        assert len(averaged.batches) == len(single.batches)
        # RDB-only is stateless across repetitions, so the average equals a single pass.
        assert averaged.total_tti == pytest.approx(single.total_tti)

    def test_workload_result_summary(self, yago_dataset, batches):
        result = run_workload(RDBOnly().load(yago_dataset.triples), batches, label="demo")
        summary = result.summary()
        assert summary["batches"] == len(batches)
        assert summary["total_tti"] == pytest.approx(result.total_tti)
        assert result.label == "demo"
