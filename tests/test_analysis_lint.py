"""Invariant-linter suite: one bad/good fixture pair per REP rule, the
suppression grammar, the CLI contract, and the repository gate itself
(``src/`` must lint clean — the same check CI's ``static-analysis`` job
enforces)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import DEFAULT_RULES, lint_paths, lint_source
from repro.analysis.__main__ import main as lint_main
from repro.analysis.lint import PARSE_ERROR_RULE, module_subpath

SRC_ROOT = Path(repro.__file__).resolve().parent  # .../src/repro


def lint(source: str, path: str):
    return lint_source(textwrap.dedent(source), path)


def rules_hit(source: str, path: str):
    return sorted({finding.rule for finding in lint(source, path)})


# --------------------------------------------------------------------------- #
# Framework basics
# --------------------------------------------------------------------------- #
def test_module_subpath_strips_everything_above_the_package():
    assert module_subpath("src/repro/persist/wal.py") == "persist/wal.py"
    assert module_subpath("/x/site-packages/repro/serve/service.py") == "serve/service.py"
    assert module_subpath("tests/test_foo.py") == "tests/test_foo.py"


def test_parse_error_is_reported_as_rep000_and_cannot_be_suppressed():
    findings = lint("def broken(:\n    pass  # repro: allow[ALL]\n", "src/repro/x.py")
    assert [finding.rule for finding in findings] == [PARSE_ERROR_RULE]
    assert "cannot parse" in findings[0].message


def test_findings_carry_file_line_and_column():
    (finding,) = lint(
        """
        import threading

        worker = threading.Thread(target=print)
        """,
        "src/repro/x.py",
    )
    assert finding.rule == "REP002"
    assert finding.line == 4
    assert finding.format().startswith("src/repro/x.py:4:")


# --------------------------------------------------------------------------- #
# REP001 — injected clocks only
# --------------------------------------------------------------------------- #
REP001_BAD = """
    import time

    class Monitor:
        def sweep(self):
            return time.monotonic()
"""

REP001_GOOD = """
    import time

    class Monitor:
        def __init__(self, clock=time.monotonic):
            self._clock = clock

        def sweep(self):
            return self._clock()
"""


def test_rep001_flags_direct_clock_calls_in_resilience():
    assert rules_hit(REP001_BAD, "src/repro/resilience/fake.py") == ["REP001"]


def test_rep001_accepts_the_injected_clock_and_default_arg_reference():
    assert rules_hit(REP001_GOOD, "src/repro/resilience/fake.py") == []


def test_rep001_catches_from_time_import_aliases():
    source = """
        from time import monotonic as now

        def sweep():
            return now()
    """
    assert rules_hit(source, "src/repro/endpoint/client.py") == ["REP001"]


def test_rep001_is_scoped_to_clock_injectable_modules():
    # The serve layer measures real wall-clock on purpose.
    assert rules_hit(REP001_BAD, "src/repro/serve/service.py") == []


# --------------------------------------------------------------------------- #
# REP002 — named, daemon-explicit threads
# --------------------------------------------------------------------------- #
REP002_BAD = """
    import threading

    def start():
        thread = threading.Thread(target=loop, name="repro-loop")
        thread.start()
"""

REP002_GOOD = """
    import threading

    def start():
        thread = threading.Thread(target=loop, name="repro-loop", daemon=True)
        thread.start()
"""


def test_rep002_flags_threads_missing_daemon():
    (finding,) = lint(REP002_BAD, "src/repro/serve/x.py")
    assert finding.rule == "REP002"
    assert "daemon=" in finding.message and "name=" not in finding.message


def test_rep002_flags_threads_missing_both_name_and_daemon():
    (finding,) = lint(
        "import threading\nthread = threading.Thread(target=print)\n",
        "src/repro/serve/x.py",
    )
    assert "name=" in finding.message and "daemon=" in finding.message


def test_rep002_accepts_named_daemon_explicit_threads():
    assert rules_hit(REP002_GOOD, "src/repro/serve/x.py") == []


def test_rep002_sees_through_from_imports():
    source = """
        from threading import Thread as Worker

        worker = Worker(target=print)
    """
    assert rules_hit(source, "src/repro/x.py") == ["REP002"]


def test_rep002_requires_thread_name_prefix_on_executors():
    bad = """
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=4)
    """
    good = """
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=4, thread_name_prefix="repro-pool")
    """
    assert rules_hit(bad, "src/repro/x.py") == ["REP002"]
    assert rules_hit(good, "src/repro/x.py") == []


def test_rep002_skips_opaque_kwargs_forwarding():
    source = """
        import threading

        def spawn(**kwargs):
            return threading.Thread(target=print, **kwargs)
    """
    assert rules_hit(source, "src/repro/x.py") == []


# --------------------------------------------------------------------------- #
# REP003 — durable renames carry an fsync
# --------------------------------------------------------------------------- #
REP003_BAD = """
    import os

    def publish(tmp, final):
        os.replace(tmp, final)
"""

REP003_GOOD = """
    import os

    def publish(tmp, final, root):
        os.replace(tmp, final)
        _fsync_dir(root)
"""


def test_rep003_flags_unfsynced_renames_in_persist():
    (finding,) = lint(REP003_BAD, "src/repro/persist/fake.py")
    assert finding.rule == "REP003"
    assert "os.replace" in finding.message


def test_rep003_accepts_renames_with_an_fsync_in_the_same_function():
    assert rules_hit(REP003_GOOD, "src/repro/persist/fake.py") == []
    direct = """
        import os

        def publish(tmp, final, fd):
            os.rename(tmp, final)
            os.fsync(fd)
    """
    assert rules_hit(direct, "src/repro/persist/fake.py") == []


def test_rep003_fsync_in_another_function_does_not_count():
    source = """
        import os

        def fsynced(root):
            _fsync_dir(root)

        def publish(tmp, final):
            os.rename(tmp, final)
    """
    assert rules_hit(source, "src/repro/persist/fake.py") == ["REP003"]


def test_rep003_is_scoped_to_persist():
    # endpoint/worker.py's announce file is explicitly best-effort.
    assert rules_hit(REP003_BAD, "src/repro/endpoint/worker.py") == []


# --------------------------------------------------------------------------- #
# REP004 — swallowed exceptions leave evidence
# --------------------------------------------------------------------------- #
REP004_BAD = """
    def poll(probe):
        try:
            probe()
        except Exception:
            pass
"""


def test_rep004_flags_silent_broad_swallows():
    assert rules_hit(REP004_BAD, "src/repro/resilience/fake.py") == ["REP004"]


@pytest.mark.parametrize(
    "body",
    [
        "raise",  # re-raises
        "self.last_probe_error = exc",  # records the error slot
        "self.probe_failures += 1",  # increments a counter
        "self.record_failure()",  # recording call
    ],
)
def test_rep004_accepts_handlers_that_leave_evidence(body):
    source = f"""
        def poll(self, probe):
            try:
                probe()
            except Exception as exc:
                {body}
    """
    assert rules_hit(source, "src/repro/resilience/fake.py") == []


def test_rep004_ignores_narrow_handlers():
    source = """
        def poll(probe):
            try:
                probe()
            except (KeyError, ValueError):
                pass
    """
    assert rules_hit(source, "src/repro/x.py") == []


def test_rep004_flags_broad_member_of_a_tuple():
    source = """
        def poll(probe):
            try:
                probe()
            except (ValueError, Exception):
                pass
    """
    assert rules_hit(source, "src/repro/x.py") == ["REP004"]


# --------------------------------------------------------------------------- #
# REP005 — mirrored gauges are assigned at mirror sites only
# --------------------------------------------------------------------------- #
def test_rep005_flags_augmented_writes_to_mirrored_gauges():
    source = """
        class Handler:
            def serve(self):
                self.metrics.counters.shed_load += 1
    """
    (finding,) = lint(source, "src/repro/endpoint/server.py")
    assert finding.rule == "REP005"
    assert "shed_load" in finding.message


def test_rep005_flags_assignment_outside_the_registered_mirror_site():
    source = """
        class Handler:
            def serve(self):
                self.metrics.counters.worker_restarts = 7
    """
    assert rules_hit(source, "src/repro/endpoint/server.py") == ["REP005"]
    # Even in the right file, only the registered function may mirror.
    assert rules_hit(source, "src/repro/serve/service.py") == ["REP005"]


def test_rep005_accepts_assignment_at_the_registered_mirror_site():
    source = """
        class QueryService:
            def record_endpoint(self, *, requests, shed):
                self.metrics.counters.endpoint_requests = requests
                self.metrics.counters.shed_load = shed
    """
    assert rules_hit(source, "src/repro/serve/service.py") == []


def test_rep005_leaves_the_owning_source_counters_alone():
    # The result cache's own cumulative stale_rejections is the mirrored
    # *source*; only ServiceCounters mirrors are governed.
    source = """
        class ResultCache:
            def reject(self):
                self.stale_rejections += 1
    """
    assert rules_hit(source, "src/repro/serve/result_cache.py") == []


# --------------------------------------------------------------------------- #
# REP006 — DualStore mutations fire the listener hook
# --------------------------------------------------------------------------- #
def test_rep006_flags_mutators_that_skip_the_hook():
    source = """
        class DualStore:
            def insert(self, triples):
                self._ops.append(("insert", triples))
    """
    (finding,) = lint(source, "src/repro/core/dualstore.py")
    assert finding.rule == "REP006"
    assert "insert" in finding.message


@pytest.mark.parametrize(
    "body",
    [
        "self._record_op(triples)\n                self._bump_generation()",
        "with self.batch_mutations():\n                    self._apply(triples)",
        "return self.apply_moves(triples)",  # delegation to a hooked mutator
    ],
)
def test_rep006_accepts_hooked_or_delegating_mutators(body):
    source = f"""
        class DualStore:
            def insert(self, triples):
                {body}
    """
    assert rules_hit(source, "src/repro/core/dualstore.py") == []


def test_rep006_only_governs_dualstore_classes():
    source = """
        class SomethingElse:
            def insert(self, triples):
                self._ops.append(triples)
    """
    assert rules_hit(source, "src/repro/core/dualstore.py") == []


# --------------------------------------------------------------------------- #
# REP007 — columnar kernels batch their dictionary round-trips
# --------------------------------------------------------------------------- #
REP007_BAD = """
    def project(space, rows):
        bindings = []
        for row in rows:
            bindings.append(tuple(space.decode(term_id) for term_id in row))
        return bindings
"""

REP007_GOOD = """
    def project(space, rows, width):
        decoded = space.decode_many(sorted({term_id for row in rows for term_id in row}))
        terms = dict(decoded)
        return [tuple(terms[term_id] for term_id in row) for row in rows]
"""


def test_rep007_flags_per_row_decode_inside_loops():
    findings = lint(REP007_BAD, "src/repro/relstore/columnar.py")
    assert [finding.rule for finding in findings] == ["REP007"]
    assert "decode" in findings[0].message


def test_rep007_flags_lookup_in_while_loops_and_comprehension_conditions():
    source = """
        def probe(dictionary, terms):
            index = 0
            while index < len(terms):
                dictionary.lookup(terms[index])
                index += 1
            return [t for t in terms if dictionary.lookup(t) is not None]
    """
    findings = lint(source, "src/repro/relstore/columnar_ext.py")
    assert [finding.rule for finding in findings] == ["REP007", "REP007"]


def test_rep007_accepts_batch_decode_surfaces():
    assert rules_hit(REP007_GOOD, "src/repro/relstore/columnar.py") == []
    batched = """
        def probe(dictionary, terms):
            ids = dictionary.lookup_many(terms)
            return [i for i in ids if i is not None]
    """
    assert rules_hit(batched, "src/repro/relstore/columnar.py") == []


def test_rep007_ignores_decode_outside_loops():
    source = """
        def resolve_constant(space, term):
            return space.decode(space.encode(term))
    """
    assert rules_hit(source, "src/repro/relstore/columnar.py") == []


def test_rep007_is_scoped_to_columnar_modules():
    # Row engines legitimately decode per row; only columnar* is governed.
    assert rules_hit(REP007_BAD, "src/repro/relstore/executor.py") == []
    assert rules_hit(REP007_BAD, "src/repro/core/term_space.py") == []


# --------------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------------- #
def test_inline_suppression_on_the_flagged_line():
    source = """
        def poll(probe):
            try:
                probe()
            except Exception:  # repro: allow[REP004]
                pass
    """
    assert rules_hit(source, "src/repro/x.py") == []


def test_suppression_on_the_line_above():
    source = """
        import threading

        # repro: allow[REP002]
        worker = threading.Thread(target=print)
    """
    assert rules_hit(source, "src/repro/x.py") == []


def test_allow_all_suppresses_every_rule_on_that_line():
    source = """
        import threading

        worker = threading.Thread(target=print)  # repro: allow[ALL]
    """
    assert rules_hit(source, "src/repro/x.py") == []


def test_suppressing_one_rule_does_not_hide_another():
    source = """
        import threading

        worker = threading.Thread(target=print)  # repro: allow[REP001]
    """
    assert rules_hit(source, "src/repro/x.py") == ["REP002"]


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_exits_nonzero_and_prints_findings(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "persist" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import os\n\ndef publish(a, b):\n    os.replace(a, b)\n")
    assert lint_main([str(tmp_path / "src")]) == 1
    output = capsys.readouterr().out
    assert "REP003" in output and "bad.py:4:" in output and "1 finding(s)" in output


def test_cli_exits_zero_on_a_clean_tree_and_writes_the_report(tmp_path, capsys):
    good = tmp_path / "src" / "repro" / "ok.py"
    good.parent.mkdir(parents=True)
    good.write_text("VALUE = 1\n")
    report = tmp_path / "findings.txt"
    assert lint_main([str(tmp_path / "src"), "--output", str(report)]) == 0
    assert "clean" in capsys.readouterr().out
    assert "clean" in report.read_text()


def test_cli_select_narrows_the_rule_set(tmp_path):
    bad = tmp_path / "src" / "repro" / "persist" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import os\n\ndef publish(a, b):\n    os.replace(a, b)\n")
    assert lint_main([str(tmp_path / "src"), "--select", "REP001"]) == 0
    assert lint_main([str(tmp_path / "src"), "--select", "REP003"]) == 1


def test_cli_rejects_unknown_rules(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        lint_main([str(tmp_path), "--select", "REP999"])
    assert excinfo.value.code == 2


def test_cli_list_rules_names_every_default_rule(capsys):
    assert lint_main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in DEFAULT_RULES:
        assert rule.name in output


# --------------------------------------------------------------------------- #
# The repository gate
# --------------------------------------------------------------------------- #
def test_source_tree_lints_clean():
    """The same hard gate CI enforces: zero unsuppressed findings in src/."""
    findings = lint_paths([str(SRC_ROOT)])
    assert findings == [], "\n".join(finding.format() for finding in findings)
