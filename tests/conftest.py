"""Shared fixtures for the test suite.

The fixtures build small, deterministic knowledge graphs and queries that
many test modules reuse: a handful of hand-written YAGO-style triples (so
expected query answers can be enumerated by hand), plus generated synthetic
datasets at test scale.
"""

from __future__ import annotations

import pytest

from repro.core import DualStore
from repro.endpoint import EndpointConfig, SparqlEndpoint
from repro.rdf import IRI, Literal, Triple, TripleSet, YAGO
from repro.serve import QueryService, ServiceConfig
from repro.sparql import parse_query
from repro.workload import generate_yago, yago_workload


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: multi-process / wall-clock-heavy tests (deselect with '-m \"not slow\"')",
    )


def _binding_fingerprint(result):
    """Order-insensitive fingerprint of a result's solution multiset.

    The canonical equality notion of the differential/stress suites: two
    results are "binding-identical" iff these fingerprints match.
    """
    return sorted(
        sorted((name, term.n3()) for name, term in binding.items())
        for binding in result.bindings
    )


@pytest.fixture(scope="session")
def fingerprint():
    """The shared binding-multiset fingerprint helper (as a fixture so the
    one definition serves every test module)."""
    return _binding_fingerprint


# --------------------------------------------------------------------------- #
# Hand-written mini knowledge graph (answers verifiable by hand)
# --------------------------------------------------------------------------- #
def _person(name: str) -> IRI:
    return YAGO.term(name)


def _city(name: str) -> IRI:
    return YAGO.term(name)


@pytest.fixture(scope="session")
def mini_kg() -> TripleSet:
    """Seven people, three cities, advisor/marriage/name facts.

    Designed so the paper's Example 1 style queries have small, hand-checkable
    answers:

    * alice was born in berlin, her advisor bob was also born in berlin.
    * carol was born in paris, her advisor dave was born in berlin (no match).
    * eve and frank are married and both born in rome.
    """
    born = YAGO.term("wasBornIn")
    advisor = YAGO.term("hasAcademicAdvisor")
    married = YAGO.term("isMarriedTo")
    given = YAGO.term("hasGivenName")
    family = YAGO.term("hasFamilyName")

    berlin, paris, rome = _city("Berlin"), _city("Paris"), _city("Rome")
    alice, bob, carol, dave, eve, frank, grace = (
        _person("Alice"),
        _person("Bob"),
        _person("Carol"),
        _person("Dave"),
        _person("Eve"),
        _person("Frank"),
        _person("Grace"),
    )

    triples = [
        Triple(alice, born, berlin),
        Triple(bob, born, berlin),
        Triple(carol, born, paris),
        Triple(dave, born, berlin),
        Triple(eve, born, rome),
        Triple(frank, born, rome),
        Triple(grace, born, paris),
        Triple(alice, advisor, bob),
        Triple(carol, advisor, dave),
        Triple(eve, advisor, grace),
        Triple(eve, married, frank),
        Triple(frank, married, eve),
        Triple(alice, given, Literal("Alice")),
        Triple(alice, family, Literal("Smith")),
        Triple(bob, given, Literal("Bob")),
        Triple(carol, given, Literal("Carol")),
        Triple(eve, given, Literal("Eve")),
        Triple(frank, given, Literal("Frank")),
    ]
    return TripleSet(triples)


@pytest.fixture(scope="session")
def advisor_query():
    """The paper's motivating query: people born where their advisor was born."""
    return parse_query(
        "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
        "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }"
    )


@pytest.fixture(scope="session")
def example1_query():
    """The paper's Example 1 query (names + advisor + spouse birthplaces)."""
    return parse_query(
        "SELECT ?GivenName ?FamilyName WHERE { "
        "?p y:hasGivenName ?GivenName . "
        "?p y:hasFamilyName ?FamilyName . "
        "?p y:wasBornIn ?city . "
        "?p y:hasAcademicAdvisor ?a . "
        "?a y:wasBornIn ?city . "
        "?p y:isMarriedTo ?p2 . "
        "?p2 y:wasBornIn ?city . }"
    )


# --------------------------------------------------------------------------- #
# Generated synthetic data at test scale
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def yago_dataset():
    return generate_yago(2500, seed=7)


@pytest.fixture(scope="session")
def yago_queries(yago_dataset):
    return yago_workload(yago_dataset, seed=13)


# --------------------------------------------------------------------------- #
# Live HTTP endpoint (SPARQL protocol suites)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def endpoint_dataset():
    """A smaller dataset than ``yago_dataset`` — endpoint tests pay HTTP
    round-trips per query, so they keep the store cheap to build and probe."""
    return generate_yago(900, seed=11)


@pytest.fixture(scope="session")
def endpoint_workload(endpoint_dataset):
    return yago_workload(endpoint_dataset, seed=17)


@pytest.fixture
def endpoint_factory(endpoint_dataset):
    """Factory for live in-process endpoints on ephemeral ports.

    Each call builds a fresh ``DualStore`` + ``QueryService`` + started
    ``SparqlEndpoint`` and returns the ``(endpoint, service)`` pair; teardown
    stops every endpoint and closes every service even when a test fails
    mid-request.  Pass ``triples=...`` to serve hand-written data instead of
    the shared synthetic dataset, and ``config=...`` to shape admission.
    """
    cleanups = []

    def build(*, triples=None, config=None, service_config=None):
        dual = DualStore().load(
            triples if triples is not None else endpoint_dataset.triples
        )
        service = QueryService(
            dual, service_config or ServiceConfig(max_workers=1)
        )
        endpoint = SparqlEndpoint(service, config or EndpointConfig())
        endpoint.start()
        cleanups.append((endpoint, service))
        return endpoint, service

    yield build
    for endpoint, service in reversed(cleanups):
        try:
            endpoint.stop()
        finally:
            service.close()


@pytest.fixture
def live_endpoint(endpoint_factory):
    """A started endpoint over the shared synthetic dataset, with its
    backing service (for pinning wire bytes against direct answers)."""
    return endpoint_factory()


# --------------------------------------------------------------------------- #
# Lock-order race detection (repro.analysis.lockgraph)
# --------------------------------------------------------------------------- #
@pytest.fixture
def lock_graph():
    """Runtime lock-order detection for concurrency stress tests.

    Project lock construction (``threading.Lock``/``RLock`` created by
    ``repro`` code, plus :class:`~repro.serve.adaptive.ReadWriteLock`) is
    instrumented for the duration of the test; at teardown the observed
    acquisition-order graph must be **acyclic**, or the test fails with a
    potential-deadlock report carrying both witness stacks per edge.  Build
    the objects under test inside the test body — locks created before the
    fixture entered stay untracked.
    """
    from repro.analysis.lockgraph import LockGraph, instrument

    graph = LockGraph()
    with instrument(graph):
        yield graph
    graph.assert_acyclic()
