"""Benchmark S2 — scatter-gather speedup of the sharded relational store.

Runs the full WatDiv stand-in workload against ``ShardedRelationalStore`` for
1, 2, and 4 shards (plus an unsharded reference) and reports the modelled
batch wall-clock under the scatter-gather cost model.  Two invariants are
asserted:

* **sum-of-work is unchanged** — every shard count performs exactly the work
  the unsharded store performs (the differential suite's property, re-checked
  here over the whole batch), and
* **modelled wall-clock decreases monotonically** from 1 to 4 shards: more
  shards means mega-predicate scans split further, so the per-step
  max-over-shards shrinks while total work stays fixed.

Run with::

    pytest benchmarks/bench_sharding.py --benchmark-only -s
"""

from conftest import run_once

from repro import RelationalStore, ShardedRelationalStore, ShardingConfig, generate_watdiv, watdiv_workload
from repro.relstore.executor import relational_work_units

SHARD_COUNTS = (1, 2, 4)

#: Shard mega-predicates aggressively so the WatDiv stand-in (whose biggest
#: partitions are the per-user attribute predicates) actually splits.
BENCH_SHARDING_CONFIG = ShardingConfig(skew_threshold=0.1, min_subject_shard_rows=16)


def _run_batch(store, queries):
    """Execute the batch; return (modelled wall-clock, total work units)."""
    wall = 0.0
    work = 0.0
    for query in queries:
        result = store.execute(query)
        wall += result.seconds
        work += relational_work_units(result.counters)
    return wall, work


def test_sharded_scatter_gather_speedup(benchmark, bench_settings):
    dataset = generate_watdiv(
        target_triples=bench_settings.watdiv_triples, seed=bench_settings.seed
    )
    workload = watdiv_workload(dataset)
    queries = workload.randomized(seed=bench_settings.seed)

    reference = RelationalStore()
    reference.load(dataset.triples)
    reference_wall, reference_work = _run_batch(reference, queries)

    walls = {}
    print()
    for shards in SHARD_COUNTS:
        store = ShardedRelationalStore(shards=shards, config=BENCH_SHARDING_CONFIG)
        store.load(dataset.triples)
        wall, work = _run_batch(store, queries)
        walls[shards] = wall
        # Sum-of-work is shard-invariant and equals the unsharded store's.
        assert work == reference_work, (
            f"total work changed under sharding: {work} != {reference_work} at N={shards}"
        )
        busy = [entry["busy_seconds"] for entry in store.shard_metrics.snapshot()]
        print(
            f"BENCH_SHARDING shards={shards} modelled_wall={wall * 1000:.1f}ms "
            f"unsharded={reference_wall * 1000:.1f}ms speedup={reference_wall / wall:.2f}x "
            f"work_units={work:.0f} subject_sharded={len(store.subject_sharded_predicates())} "
            f"busiest_shard={max(busy) * 1000:.1f}ms idlest_shard={min(busy) * 1000:.1f}ms"
        )

    # One shard prices like the unsharded store (same serial pipeline; the
    # tolerance covers float summation-order noise over hundreds of queries).
    assert abs(walls[1] - reference_wall) / reference_wall < 1e-4

    # Modelled wall-clock decreases monotonically as shards are added.
    assert walls[1] > walls[2] > walls[4], (
        f"modelled wall-clock must decrease monotonically 1 -> 4 shards, got {walls}"
    )

    # Register the 4-shard batch with pytest-benchmark for the record.
    store = ShardedRelationalStore(shards=4, config=BENCH_SHARDING_CONFIG)
    store.load(dataset.triples)
    run_once(benchmark, _run_batch, store, queries)
