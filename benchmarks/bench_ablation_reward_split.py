"""Ablation bench — reward amortisation: proportional (paper) vs uniform."""

from conftest import run_once

from repro.experiments import run_reward_split_ablation


def test_ablation_reward_split(benchmark, bench_settings):
    result = run_once(benchmark, run_reward_split_ablation, bench_settings)
    print()
    print(
        f"{result.name}: proportional {result.paper_choice:.3f}s, "
        f"uniform {result.ablated:.3f}s ({result.delta_percent:+.1f}%)"
    )
    # Both policies must complete; the proportional split should not be
    # substantially worse than the uniform ablation.
    assert result.paper_choice <= result.ablated * 1.25
