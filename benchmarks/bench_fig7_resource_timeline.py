"""Benchmark E8 — regenerate Figure 7 (IO/CPU consumed by the graph store)."""

from conftest import run_once

from repro.experiments import format_resource_timeline, run_resource_timeline


def test_fig7_resource_timeline(benchmark, bench_settings):
    samples = run_once(benchmark, run_resource_timeline, bench_settings, spare_io=0.4)
    print()
    print(format_resource_timeline(samples))

    assert len(samples) >= 3
    # Consumption fluctuates early (partition migrations) and settles to a
    # small steady-state value by the end of the run.
    peak_io = max(sample.io_percent for sample in samples)
    assert samples[-1].io_percent <= peak_io
    assert all(0.0 <= sample.cpu_percent <= 100.0 for sample in samples)
