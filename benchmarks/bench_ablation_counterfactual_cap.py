"""Ablation bench — the counterfactual cap λ bounds offline tuning cost."""

from conftest import run_once

from repro.experiments import run_counterfactual_cap_ablation


def test_ablation_counterfactual_cap(benchmark, bench_settings):
    result = run_once(benchmark, run_counterfactual_cap_ablation, bench_settings)
    print()
    print(
        f"{result.name}: capped {result.paper_choice:.3f}, "
        f"uncapped {result.ablated:.3f} {result.unit} ({result.delta_percent:+.1f}%)"
    )
    # The λ cap must never make the offline counterfactual more expensive than
    # running the relational queries to completion.
    assert result.paper_choice <= result.ablated + 1e-9
