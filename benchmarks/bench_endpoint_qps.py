"""Benchmark P2 — multi-process endpoint QPS vs a single worker.

The GIL caps one Python process at roughly one core of query execution, so a
single-worker endpoint is the throughput floor however many client threads
push on it.  The multi-process mode (``repro.endpoint.worker``) serves the
same committed snapshot from N OS processes; this benchmark pins the
headline:

1. **N workers beat 1 worker** — under an identical closed-loop many-client
   load, sustained QPS with ``BENCH_ENDPOINT_WORKERS`` workers is strictly
   greater than with a single worker (``BENCH_ENDPOINT_MIN_SPEEDUP`` ratchets
   the required ratio above 1.0 where the host allows).
2. **Replication changes nothing semantically** — every response body from
   every worker, in both fleets, is byte-identical to encoding the leader's
   own direct answer for that query (verified per request, counted exactly).

Workers run with the result cache off: the measured quantity is store
execution throughput, not cache-hit throughput.  Latency percentiles come
from the serving layer's own :class:`LatencyDigest`.  Results land in
``BENCH_endpoint_qps.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_endpoint_qps.py -q -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_endpoint_qps.py

Environment knobs: ``BENCH_ENDPOINT_TRIPLES`` (dataset size),
``BENCH_ENDPOINT_WORKERS`` (fleet size, ≥ 2), ``BENCH_ENDPOINT_CLIENTS``
(closed-loop client threads), ``BENCH_ENDPOINT_REQUESTS`` (requests per
client), ``BENCH_ENDPOINT_REPEATS`` (closed-loop laps per fleet; laps alternate
between fleets and the median lap is scored), ``BENCH_ENDPOINT_MIN_SPEEDUP``
(required multi/single QPS ratio).
"""

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    DualStore,
    EndpointPool,
    QueryService,
    ServiceConfig,
    WorkerSupervisor,
    generate_yago,
    yago_workload,
)
from repro.endpoint import encode_results, sparql_request  # noqa: E402
from repro.serve.metrics import LatencyDigest  # noqa: E402

TRIPLES = int(os.environ.get("BENCH_ENDPOINT_TRIPLES", "4000"))
WORKERS = int(os.environ.get("BENCH_ENDPOINT_WORKERS", "4"))
CLIENTS = int(os.environ.get("BENCH_ENDPOINT_CLIENTS", "16"))
REQUESTS_PER_CLIENT = int(os.environ.get("BENCH_ENDPOINT_REQUESTS", "30"))
REPEATS = int(os.environ.get("BENCH_ENDPOINT_REPEATS", "5"))
MIN_SPEEDUP = float(os.environ.get("BENCH_ENDPOINT_MIN_SPEEDUP", "1.0"))
SEED = 7
WORKLOAD_SEED = 19
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_endpoint_qps.json"


def _closed_loop(urls, queries, expected):
    """CLIENTS threads, each issuing REQUESTS_PER_CLIENT queries back-to-back
    against a shared round-robin pool; returns (qps, digest, mismatches)."""
    pool = EndpointPool(urls, timeout=60)
    digest = LatencyDigest()
    lock = threading.Lock()
    mismatches = []
    barrier = threading.Barrier(CLIENTS + 1)

    def client(index: int) -> None:
        barrier.wait()
        for step in range(REQUESTS_PER_CLIENT):
            query = queries[(index + step) % len(queries)]
            started = time.perf_counter()
            response = pool.query(query)
            elapsed = time.perf_counter() - started
            with lock:
                digest.observe(elapsed)
                if response.status != 200:
                    mismatches.append((query, f"status {response.status}"))
                elif response.body != expected[query]:
                    mismatches.append((query, "body diverged from direct answer"))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = CLIENTS * REQUESTS_PER_CLIENT
    return total / elapsed, digest, mismatches


def _warm(urls, queries):
    # Warm-up lap: every worker parses every template once, so no measured
    # lap pays one-off plan-cache misses.
    for url in urls:
        for query in queries:
            response = sparql_request(url, query, timeout=60)
            assert response.status == 200


def _measure_interleaved(single_urls, multi_urls, queries, expected):
    """Alternate single-fleet and multi-fleet laps; score the median lap.

    Shared hosts drift (CPU throttling, noisy neighbours) on a timescale of
    seconds; measuring one fleet completely and then the other would let the
    drift masquerade as a speedup or mask a real one.  Interleaving samples
    both fleets under near-identical conditions, and the *median* of
    ``REPEATS`` laps discards flukes in both directions (a best-of score
    would let one lucky single-worker lap sink the comparison).
    Byte-identity, by contrast, must hold on *every* lap — mismatches
    accumulate across all of them.
    """
    laps = {"single": [], "multi": []}
    mismatches = {"single": [], "multi": []}
    for _ in range(max(1, REPEATS)):
        for name, urls in (("single", single_urls), ("multi", multi_urls)):
            qps, digest, lap_bad = _closed_loop(urls, queries, expected)
            mismatches[name].extend(lap_bad)
            laps[name].append((qps, digest))
    scored = {}
    for name, results in laps.items():
        results.sort(key=lambda lap: lap[0])
        scored[name] = results[len(results) // 2]  # median lap (qps + digest)
    return scored, laps, mismatches


def test_multi_worker_fleet_outperforms_single_worker():
    assert WORKERS >= 2, "BENCH_ENDPOINT_WORKERS must be at least 2"
    dataset = generate_yago(target_triples=TRIPLES, seed=SEED)
    workload = yago_workload(dataset, seed=WORKLOAD_SEED)
    queries = [entry.query.to_sparql() for entry in workload.queries]

    tmp = Path(tempfile.mkdtemp(prefix="repro-endpoint-qps-"))
    root = tmp / "snapshots"
    print()
    try:
        dual = DualStore().load(dataset.triples)
        with QueryService(dual, ServiceConfig(max_workers=1)) as leader:
            leader.checkpoint(path=root)
            # The ground truth every response must match, byte for byte.
            expected = {
                query: encode_results(leader.run_query(query).result)
                for query in queries
            }

        # Both fleets live for the whole measurement (idle workers only poll
        # the snapshot root, every 5s — negligible) so their laps interleave.
        # Per-worker admission admits every client (max_inflight=CLIENTS,
        # identical config in both fleets, as replication requires): the
        # closed loop then measures execution throughput, with the single
        # worker carrying all CLIENTS threads on one GIL while the fleet
        # spreads them across processes — precisely the contention the
        # multi-process mode exists to sidestep.
        with WorkerSupervisor(
            root, workers=1, poll_interval=5.0, cache_results=False,
            max_inflight=CLIENTS,
        ) as single_fleet, WorkerSupervisor(
            root, workers=WORKERS, poll_interval=5.0, cache_results=False,
            max_inflight=CLIENTS,
        ) as multi_fleet:
            single_fleet.wait_ready()
            multi_fleet.wait_ready()
            _warm(single_fleet.urls, queries)
            _warm(multi_fleet.urls, queries)
            scored, laps, mismatches = _measure_interleaved(
                single_fleet.urls, multi_fleet.urls, queries, expected
            )
        qps_single, lat_single = scored["single"]
        qps_multi, lat_multi = scored["multi"]
        bad_single, bad_multi = mismatches["single"], mismatches["multi"]
        print(
            f"BENCH_ENDPOINT_QPS single worker: qps={qps_single:.1f} "
            f"p50={lat_single.p50 * 1e3:.1f}ms p95={lat_single.p95 * 1e3:.1f}ms"
        )
        print(
            f"BENCH_ENDPOINT_QPS {WORKERS} workers:  qps={qps_multi:.1f} "
            f"p50={lat_multi.p50 * 1e3:.1f}ms p95={lat_multi.p95 * 1e3:.1f}ms"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    speedup = qps_multi / qps_single if qps_single else float("inf")
    report = {
        "benchmark": "endpoint_qps",
        "workload": "yago",
        "triples": len(dataset.triples),
        "distinct_queries": len(queries),
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "repeats": REPEATS,
        "total_requests_per_fleet": CLIENTS * REQUESTS_PER_CLIENT * max(1, REPEATS),
        "workers": WORKERS,
        "qps_single": qps_single,
        "qps_multi": qps_multi,
        "qps_single_laps": sorted(qps for qps, _ in laps["single"]),
        "qps_multi_laps": sorted(qps for qps, _ in laps["multi"]),
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "latency_single": lat_single.as_dict(),
        "latency_multi": lat_multi.as_dict(),
        "response_mismatches_single": len(bad_single),
        "response_mismatches_multi": len(bad_multi),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"BENCH_ENDPOINT_QPS speedup={speedup:.2f}x "
        f"({WORKERS} workers vs 1; required > {MIN_SPEEDUP:.2f}x)"
    )
    print(f"BENCH_ENDPOINT_QPS wrote {OUTPUT}")

    # Semantics first: replication must not change a single byte.
    assert not bad_single, f"single-worker responses diverged: {bad_single[:3]}"
    assert not bad_multi, f"multi-worker responses diverged: {bad_multi[:3]}"
    # The headline: N processes sustain strictly more QPS than one.
    assert qps_multi > qps_single * MIN_SPEEDUP, (
        f"{WORKERS}-worker fleet reached {qps_multi:.1f} qps vs single-worker "
        f"{qps_single:.1f} qps (speedup {speedup:.2f}x, required > {MIN_SPEEDUP:.2f}x)"
    )


if __name__ == "__main__":
    test_multi_worker_fleet_outperforms_single_worker()
    print("ok")
