"""Benchmark E3 — regenerate Figure 4 (per-batch TTI, random workloads)."""

from conftest import run_once

from repro.experiments import build_suite, format_store_variants, run_store_variants

GROUPS = ["YAGO", "WatDiv-L", "WatDiv-S", "WatDiv-F", "WatDiv-C", "Bio2RDF"]


def test_fig4_random_workloads(benchmark, bench_settings):
    suite = build_suite(bench_settings, groups=GROUPS)
    report = run_once(
        benchmark, run_store_variants, bench_settings, orders=["random"], suite=suite
    )
    print()
    print(format_store_variants(report))

    for comparison in report.comparisons:
        assert comparison.total_tti("RDB-GDB") <= comparison.total_tti("RDB-only") * 1.001
    for group in ("YAGO", "WatDiv-C", "Bio2RDF"):
        comparison = report.find(group, "random")
        assert comparison.total_tti("RDB-GDB") < comparison.total_tti("RDB-only")
