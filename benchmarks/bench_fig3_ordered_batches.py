"""Benchmark E2 — regenerate Figure 3 (per-batch TTI, ordered workloads)."""

from conftest import run_once

from repro.experiments import build_suite, format_store_variants, run_store_variants

GROUPS = ["YAGO", "WatDiv-L", "WatDiv-S", "WatDiv-F", "WatDiv-C", "Bio2RDF"]


def test_fig3_ordered_workloads(benchmark, bench_settings):
    suite = build_suite(bench_settings, groups=GROUPS)
    report = run_once(
        benchmark, run_store_variants, bench_settings, orders=["ordered"], suite=suite
    )
    print()
    print(format_store_variants(report))

    # RDB-GDB never loses to RDB-only, and wins clearly on the groups whose
    # workloads are dominated by complex queries (the paper's Figure 3 shows
    # RDB-GDB lowest in all cases).
    for comparison in report.comparisons:
        assert comparison.total_tti("RDB-GDB") <= comparison.total_tti("RDB-only") * 1.001
    for group in ("YAGO", "WatDiv-C", "Bio2RDF"):
        comparison = report.find(group, "ordered")
        assert comparison.total_tti("RDB-GDB") < comparison.total_tti("RDB-only")
