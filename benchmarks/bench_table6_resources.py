"""Benchmark E7 — regenerate Table 6 (slowdown with limited spare resources)."""

from conftest import run_once

from repro.experiments import format_resource_slowdown, run_resource_slowdown


def test_table6_resource_slowdown(benchmark, bench_settings):
    rows = run_once(benchmark, run_resource_slowdown, bench_settings)
    print()
    print(format_resource_slowdown(rows))

    by_key = {(row.resource, row.spare_fraction): row.slowdown_percent for row in rows}
    # IO limits barely matter (< 2%), CPU limits hurt more, and tighter budgets
    # hurt more than looser ones — the ordering reported in the paper.
    assert by_key[("io", 0.4)] < 2.0
    assert by_key[("io", 0.2)] < 5.0
    assert by_key[("cpu", 0.2)] > by_key[("cpu", 0.4)]
    assert by_key[("cpu", 0.2)] > by_key[("io", 0.2)]
