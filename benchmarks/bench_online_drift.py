"""Benchmark D1 — online adaptive tuning under a drifting WatDiv mix.

The scenario the paper's incremental-tuning claim lives or dies on: template
traffic whose family mix *shifts mid-stream*.  Two identical dual stores are
warmed with a DOTIL pass over the first phase's workload (linear + star
templates), then serve epoch after epoch of traffic:

* the **static** service freezes that placement forever (the pre-adaptive
  serving layer's behaviour);
* the **adaptive** service (``ServiceConfig.adaptive``) harvests served
  complex subqueries into a :class:`WorkloadWindow` and runs a DOTIL tuning
  epoch after every traffic epoch.

Half-way through, the mix flips to the snowflake + complex families.  The
assertions pin the two headline properties:

1. **Recovery** — the adaptive service's final-epoch modelled TTI is strictly
   better than the static service's on the drifted mix, and strictly better
   than its own TTI at the drift epoch (it converges back toward a re-tuned
   optimum instead of staying degraded).
2. **One invalidation per epoch** — however many transfers/evictions an epoch
   applies, the service's result cache is emptied exactly once per epoch
   (``invalidation_events`` equals the epoch count; the moves are batched
   through ``DualStore.batch_mutations``).

Everything asserted is modelled (work counters priced by the deterministic
cost model), so the numbers are machine-independent.  Results land in
``BENCH_online_drift.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_online_drift.py -q -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_online_drift.py

Environment knobs: ``BENCH_DRIFT_TRIPLES`` (dataset size),
``BENCH_DRIFT_EPOCHS`` (total traffic epochs, half per phase).
"""

import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    AdaptiveConfig,
    Dotil,
    DotilConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    generate_watdiv,
    watdiv_workload,
)

TRIPLES = int(os.environ.get("BENCH_DRIFT_TRIPLES", "6000"))
EPOCHS = int(os.environ.get("BENCH_DRIFT_EPOCHS", "8"))
SEED = 7
WORKLOAD_SEED = 19
#: Tight enough that the two phases' partition sets cannot be resident at
#: once — the budget pressure that makes adaptivity matter.
TUNER_CONFIG = DotilConfig(r_bg=0.15, prob=1.0, gamma=0.7, lam=4.5)
PHASE_A_FAMILIES = ("linear", "star")
PHASE_B_FAMILIES = ("snowflake", "complex")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_online_drift.json"


def _family_mix(dataset, families):
    queries = []
    for family in families:
        queries.extend(watdiv_workload(dataset, family=family, seed=WORKLOAD_SEED).ordered())
    return queries


def _warmed_dual(dataset, warmup_subqueries):
    """A loaded dual store whose placement DOTIL tuned for phase A."""
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    Dotil(dual, TUNER_CONFIG).warm_up(warmup_subqueries)
    return dual


def test_adaptive_service_recovers_after_workload_drift():
    assert EPOCHS >= 4 and EPOCHS % 2 == 0, "need at least two epochs per phase"
    dataset = generate_watdiv(target_triples=TRIPLES, seed=SEED)
    phase_a = _family_mix(dataset, PHASE_A_FAMILIES)
    phase_b = _family_mix(dataset, PHASE_B_FAMILIES)
    drift_epoch = EPOCHS // 2

    probe = DualStore(TUNER_CONFIG).load(dataset.triples)
    warmup = [probe.identify(q) for q in phase_a]
    warmup = [sq for sq in warmup if sq is not None]

    adaptive_dual = _warmed_dual(dataset, warmup)
    static_dual = _warmed_dual(dataset, warmup)
    assert adaptive_dual.design.graph_partitions == static_dual.design.graph_partitions

    service_config = ServiceConfig(
        adaptive=AdaptiveConfig(
            window_size=max(len(phase_a), len(phase_b)),
            epoch_queries=0,  # epochs driven explicitly, one per traffic epoch
            tuner_factory=lambda dual: Dotil(dual, TUNER_CONFIG),
        )
    )

    report = {
        "benchmark": "online_drift",
        "workload": (
            f"watdiv {'+'.join(PHASE_A_FAMILIES)} -> {'+'.join(PHASE_B_FAMILIES)} "
            f"at epoch {drift_epoch}"
        ),
        "triples": len(dataset.triples),
        "epochs": EPOCHS,
        "drift_epoch": drift_epoch,
        "r_bg": TUNER_CONFIG.r_bg,
        "timeline": [],
    }

    print()
    adaptive_ttis, static_ttis = [], []
    with QueryService(adaptive_dual, service_config) as adaptive, QueryService(
        static_dual
    ) as static:
        for epoch in range(EPOCHS):
            phase = "A" if epoch < drift_epoch else "B"
            batch = phase_a if phase == "A" else phase_b
            adaptive_tti = adaptive.run_batch(batch).tti
            static_tti = static.run_batch(batch).tti
            epoch_report = adaptive.tune_now()
            adaptive_ttis.append(adaptive_tti)
            static_ttis.append(static_tti)
            report["timeline"].append(
                {
                    "epoch": epoch,
                    "phase": phase,
                    "adaptive_tti": adaptive_tti,
                    "static_tti": static_tti,
                    "moves": epoch_report.moves,
                    "invalidations": epoch_report.invalidations,
                    "window_tti_before": epoch_report.tti_before,
                    "window_tti_after": epoch_report.tti_after,
                }
            )
            print(
                f"BENCH_ONLINE_DRIFT epoch={epoch} phase={phase} "
                f"adaptive_tti={adaptive_tti:.4f} static_tti={static_tti:.4f} "
                f"moves={epoch_report.moves} invalidations={epoch_report.invalidations}"
            )

        counters = adaptive.metrics.counters
        daemon_metrics = adaptive.adaptive_metrics()
        report["adaptive_metrics"] = daemon_metrics
        report["invalidation_events"] = counters.invalidation_events
        report["final_epoch"] = {
            "adaptive_tti": adaptive_ttis[-1],
            "static_tti": static_ttis[-1],
            "improvement_percent": (static_ttis[-1] - adaptive_ttis[-1]) / static_ttis[-1] * 100.0,
        }

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"BENCH_ONLINE_DRIFT final adaptive={adaptive_ttis[-1]:.4f} "
        f"static={static_ttis[-1]:.4f} "
        f"improvement={report['final_epoch']['improvement_percent']:.1f}% "
        f"moves={daemon_metrics['moves_applied']:.0f} "
        f"invalidation_events={counters.invalidation_events} "
        f"invalidations_avoided={daemon_metrics['invalidations_avoided']:.0f}"
    )
    print(f"BENCH_ONLINE_DRIFT wrote {OUTPUT}")

    # 1. Recovery: the adaptive service beats the frozen placement on the
    #    drifted mix, and beats its own TTI at the drift point (convergence).
    assert adaptive_ttis[-1] < static_ttis[-1], (
        f"adaptive final-epoch TTI {adaptive_ttis[-1]:.4f} must be strictly better "
        f"than the static placement's {static_ttis[-1]:.4f} on the drifted mix"
    )
    assert adaptive_ttis[-1] < adaptive_ttis[drift_epoch], (
        f"adaptive TTI must improve after re-tuning: final {adaptive_ttis[-1]:.4f} "
        f"vs drift-epoch {adaptive_ttis[drift_epoch]:.4f}"
    )
    # The static placement really is frozen: identical mix, identical cost.
    assert static_ttis[-1] == static_ttis[drift_epoch]

    # 2. Exactly one result-cache invalidation per tuning epoch, however many
    #    moves each epoch applied.
    for entry in report["timeline"]:
        assert entry["invalidations"] <= 1, entry
        if entry["moves"]:
            assert entry["invalidations"] == 1, entry
    epochs_with_moves = sum(1 for entry in report["timeline"] if entry["moves"])
    assert counters.invalidation_events == epochs_with_moves
    # Batching actually paid: some epoch applied more than one move.
    assert daemon_metrics["moves_applied"] > epochs_with_moves
    assert daemon_metrics["invalidations_avoided"] == (
        daemon_metrics["moves_applied"] - epochs_with_moves
    )


if __name__ == "__main__":
    test_adaptive_service_recovers_after_workload_drift()
    print("ok")
