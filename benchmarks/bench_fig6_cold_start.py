"""Benchmark E6 — regenerate Figure 6 (cold start of the graph store)."""

from conftest import run_once

from repro.experiments import format_cold_start, run_cold_start


def test_fig6_cold_start(benchmark, bench_settings):
    points = run_once(benchmark, run_cold_start, bench_settings)
    print()
    print(format_cold_start(points))

    for order in ("ordered", "random"):
        series = [p for p in points if p.order == order]
        series.sort(key=lambda p: p.batch_index)
        # The very first batch is served almost entirely by the relational
        # store (the graph store starts empty)...
        assert series[0].graph_share < 0.2
        # ...but by the later batches the graph store carries a meaningful
        # share of the cost (the paper's "rises rapidly from the third batch").
        assert max(p.graph_share for p in series[2:]) > 0.2
