"""Benchmark H1 — real wall-clock of the ID-space engine vs the reference.

Unlike every other benchmark in this directory, the headline number here is
**measured wall-clock**, not the modelled cost: the ID-space engine and the
decode-per-row reference executor charge bit-identical logical work by
construction (the differential suite pins that), so the only honest way to
show the late-materialization speedup is to time both engines on the same
join-heavy workload.

Protocol
--------
For each dataset scale, the join-heavy WatDiv stand-in templates (snowflake +
complex families, ≥ 3 patterns each) run through ``RelationalStore()`` (the
ID-space engine, plan memo warm after the first pass — the serving-layer
reality) and ``RelationalStore(engine="reference")``.  Each engine gets
``BENCH_HOTPATH_REPEATS`` timed passes; the best pass counts.  Before timing,
both engines' results are checked byte-identical (bindings, order, counters,
modelled seconds).

The results land in ``BENCH_hotpath.json`` so future PRs have a wall-clock
trajectory to ratchet against.  At the *largest* scale the ID-space engine
must beat the reference by at least ``BENCH_HOTPATH_MIN_SPEEDUP`` (default
3×; CI's perf-smoke job runs small scales with a conservative 1.2× floor
since shared runners are noisy).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_hotpath.py

Environment knobs: ``BENCH_HOTPATH_SCALES`` (comma-separated triple counts),
``BENCH_HOTPATH_MIN_SPEEDUP``, ``BENCH_HOTPATH_REPEATS``.
"""

import json
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import RelationalStore, generate_watdiv, watdiv_workload  # noqa: E402
from repro.relstore.executor import relational_work_units  # noqa: E402

SCALES = tuple(
    int(s) for s in os.environ.get("BENCH_HOTPATH_SCALES", "2000,6000,14000").split(",")
)
MIN_SPEEDUP = float(os.environ.get("BENCH_HOTPATH_MIN_SPEEDUP", "3.0"))
REPEATS = int(os.environ.get("BENCH_HOTPATH_REPEATS", "3"))
SEED = 7
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _join_heavy_queries(dataset):
    """The join-heavy template set: snowflake + complex, ≥ 3 patterns."""
    queries = []
    for family in ("snowflake", "complex"):
        workload = watdiv_workload(dataset, family=family, seed=SEED)
        queries.extend(q for q in workload.ordered() if len(q.patterns) >= 3)
    return queries


def _timed_pass(store, queries):
    start = time.perf_counter()
    results = [store.execute(query) for query in queries]
    return time.perf_counter() - start, results


def _bench_engine(store, queries):
    """Best-of-N wall-clock plus the (pass-invariant) results."""
    best = float("inf")
    results = None
    for _ in range(max(1, REPEATS)):
        wall, results = _timed_pass(store, queries)
        best = min(best, wall)
    return best, results


def _assert_identical(idspace_results, reference_results, scale):
    for index, (warm, cold) in enumerate(zip(idspace_results, reference_results)):
        assert warm.variables == cold.variables, f"scale {scale}, query {index}: variables diverged"
        assert warm.bindings == cold.bindings, f"scale {scale}, query {index}: bindings diverged"
        assert warm.counters.as_dict() == cold.counters.as_dict(), (
            f"scale {scale}, query {index}: work counters diverged"
        )
        assert warm.seconds == cold.seconds, (
            f"scale {scale}, query {index}: modelled seconds diverged"
        )


def test_idspace_engine_beats_reference_on_join_heavy_templates():
    report = {
        "benchmark": "hotpath",
        "workload": "watdiv snowflake+complex, >=3 patterns",
        "repeats": REPEATS,
        "min_speedup_required_at_largest_scale": MIN_SPEEDUP,
        "scales": [],
    }
    print()
    for scale in SCALES:
        dataset = generate_watdiv(target_triples=scale, seed=SEED)
        queries = _join_heavy_queries(dataset)

        reference = RelationalStore(engine="reference")
        reference.load(dataset.triples)
        idspace = RelationalStore()
        idspace.load(dataset.triples)

        reference_wall, reference_results = _bench_engine(reference, queries)
        idspace_wall, idspace_results = _bench_engine(idspace, queries)
        _assert_identical(idspace_results, reference_results, scale)

        speedup = reference_wall / idspace_wall if idspace_wall > 0 else float("inf")
        work = sum(relational_work_units(r.counters) for r in idspace_results)
        report["scales"].append(
            {
                "triples": len(dataset.triples),
                "queries": len(queries),
                "reference_wall_seconds": reference_wall,
                "idspace_wall_seconds": idspace_wall,
                "speedup": speedup,
                "work_units": work,
                "identical_bindings_and_counters": True,
            }
        )
        print(
            f"BENCH_HOTPATH triples={len(dataset.triples)} queries={len(queries)} "
            f"reference={reference_wall * 1000:.1f}ms idspace={idspace_wall * 1000:.1f}ms "
            f"speedup={speedup:.2f}x work_units={work:.0f}"
        )

    report["largest_scale_speedup"] = report["scales"][-1]["speedup"]
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"BENCH_HOTPATH wrote {OUTPUT}")

    largest = report["scales"][-1]
    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"ID-space engine is only {largest['speedup']:.2f}x faster than the reference "
        f"executor at {largest['triples']} triples (required: {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_idspace_engine_beats_reference_on_join_heavy_templates()
    print("ok")
