"""Benchmark H1 — real wall-clock: reference vs ID-space vs columnar.

Unlike every other benchmark in this directory, the headline number here is
**measured wall-clock**, not the modelled cost: all three engines charge
bit-identical logical work by construction (the differential suite pins
that), so the only honest way to show the late-materialization and
vectorization speedups is to time them on the same join-heavy workload.

Protocol
--------
For each dataset scale, the join-heavy WatDiv stand-in templates (snowflake +
complex families, ≥ 3 patterns each) run through

* ``RelationalStore(engine="reference")`` — decode-per-row baseline,
* ``RelationalStore()`` — the ID-space engine (plan memo warm after the
  first pass, the serving-layer reality),
* ``RelationalStore(engine="columnar")`` — batch kernels over term-id
  columns (numpy when importable), and
* the same columnar engine with ``REPRO_COLUMNAR_FORCE_STDLIB=1`` — the
  pure-stdlib ``array('q')`` kernel path, measured so the optional numpy
  dependency never becomes load-bearing.

Each engine gets ``BENCH_HOTPATH_REPEATS`` timed passes; the best pass
counts.  Before timing, all engines' results are checked byte-identical
(bindings, order, counters, modelled seconds).

The results land in ``BENCH_hotpath.json`` so future PRs have a wall-clock
trajectory to ratchet against.  At the *largest* scale the ID-space engine
must beat the reference by ``BENCH_HOTPATH_MIN_SPEEDUP`` (default 3×), the
columnar engine must beat the *ID-space* engine by
``BENCH_HOTPATH_MIN_COLUMNAR_SPEEDUP`` (default 3×; CI's perf-smoke job runs
small scales with conservative floors since shared runners are noisy), and
the stdlib columnar path must stay at least
``BENCH_HOTPATH_MIN_STDLIB_SPEEDUP`` (default: strictly faster than
ID-space).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_hotpath.py

Environment knobs: ``BENCH_HOTPATH_SCALES`` (comma-separated triple counts),
``BENCH_HOTPATH_MIN_SPEEDUP``, ``BENCH_HOTPATH_MIN_COLUMNAR_SPEEDUP``,
``BENCH_HOTPATH_MIN_STDLIB_SPEEDUP``, ``BENCH_HOTPATH_REPEATS``.
"""

import json
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import RelationalStore, generate_watdiv, watdiv_workload  # noqa: E402
from repro.relstore.columnar import FORCE_STDLIB_ENV, numpy_available  # noqa: E402
from repro.relstore.executor import relational_work_units  # noqa: E402

SCALES = tuple(
    int(s) for s in os.environ.get("BENCH_HOTPATH_SCALES", "2000,8000,30000").split(",")
)
MIN_SPEEDUP = float(os.environ.get("BENCH_HOTPATH_MIN_SPEEDUP", "3.0"))
MIN_COLUMNAR_SPEEDUP = float(os.environ.get("BENCH_HOTPATH_MIN_COLUMNAR_SPEEDUP", "3.0"))
MIN_STDLIB_SPEEDUP = float(os.environ.get("BENCH_HOTPATH_MIN_STDLIB_SPEEDUP", "1.0"))
REPEATS = int(os.environ.get("BENCH_HOTPATH_REPEATS", "3"))
SEED = 7
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _join_heavy_queries(dataset):
    """The join-heavy template set: snowflake + complex, ≥ 3 patterns."""
    queries = []
    for family in ("snowflake", "complex"):
        workload = watdiv_workload(dataset, family=family, seed=SEED)
        queries.extend(q for q in workload.ordered() if len(q.patterns) >= 3)
    return queries


def _stdlib_columnar_store():
    """A columnar store pinned to the stdlib kernels via the kill switch."""
    os.environ[FORCE_STDLIB_ENV] = "1"
    try:
        return RelationalStore(engine="columnar")
    finally:
        os.environ.pop(FORCE_STDLIB_ENV, None)


def _timed_pass(store, queries):
    start = time.perf_counter()
    results = [store.execute(query) for query in queries]
    return time.perf_counter() - start, results


def _bench_engine(store, queries):
    """Best-of-N wall-clock plus the (pass-invariant) results."""
    best = float("inf")
    results = None
    for _ in range(max(1, REPEATS)):
        wall, results = _timed_pass(store, queries)
        best = min(best, wall)
    return best, results


def _assert_identical(warm_results, reference_results, scale, label):
    for index, (warm, cold) in enumerate(zip(warm_results, reference_results)):
        context = f"scale {scale}, {label}, query {index}"
        assert warm.variables == cold.variables, f"{context}: variables diverged"
        assert warm.bindings == cold.bindings, f"{context}: bindings diverged"
        assert warm.counters.as_dict() == cold.counters.as_dict(), (
            f"{context}: work counters diverged"
        )
        assert warm.seconds == cold.seconds, f"{context}: modelled seconds diverged"


def test_engines_beat_their_baselines_on_join_heavy_templates():
    report = {
        "benchmark": "hotpath",
        "workload": "watdiv snowflake+complex, >=3 patterns",
        "repeats": REPEATS,
        "numpy_available": numpy_available(),
        "min_speedup_required_at_largest_scale": MIN_SPEEDUP,
        "min_columnar_speedup_required_at_largest_scale": MIN_COLUMNAR_SPEEDUP,
        "min_stdlib_columnar_speedup_required_at_largest_scale": MIN_STDLIB_SPEEDUP,
        "scales": [],
    }
    print()
    for scale in SCALES:
        dataset = generate_watdiv(target_triples=scale, seed=SEED)
        queries = _join_heavy_queries(dataset)

        reference = RelationalStore(engine="reference")
        idspace = RelationalStore()
        columnar = RelationalStore(engine="columnar")
        stdlib_columnar = _stdlib_columnar_store()
        for store in (reference, idspace, columnar, stdlib_columnar):
            store.load(dataset.triples)

        reference_wall, reference_results = _bench_engine(reference, queries)
        idspace_wall, idspace_results = _bench_engine(idspace, queries)
        columnar_wall, columnar_results = _bench_engine(columnar, queries)
        stdlib_wall, stdlib_results = _bench_engine(stdlib_columnar, queries)
        _assert_identical(idspace_results, reference_results, scale, "idspace")
        _assert_identical(columnar_results, reference_results, scale, "columnar")
        _assert_identical(stdlib_results, reference_results, scale, "columnar-stdlib")

        speedup = reference_wall / idspace_wall if idspace_wall > 0 else float("inf")
        columnar_speedup = idspace_wall / columnar_wall if columnar_wall > 0 else float("inf")
        stdlib_speedup = idspace_wall / stdlib_wall if stdlib_wall > 0 else float("inf")
        work = sum(relational_work_units(r.counters) for r in idspace_results)
        report["scales"].append(
            {
                "triples": len(dataset.triples),
                "queries": len(queries),
                "reference_wall_seconds": reference_wall,
                "idspace_wall_seconds": idspace_wall,
                "columnar_wall_seconds": columnar_wall,
                "columnar_stdlib_wall_seconds": stdlib_wall,
                "speedup": speedup,
                "columnar_speedup_over_idspace": columnar_speedup,
                "columnar_stdlib_speedup_over_idspace": stdlib_speedup,
                "columnar_kernels": columnar.table.kernels.name,
                "work_units": work,
                "identical_bindings_and_counters": True,
            }
        )
        print(
            f"BENCH_HOTPATH triples={len(dataset.triples)} queries={len(queries)} "
            f"reference={reference_wall * 1000:.1f}ms idspace={idspace_wall * 1000:.1f}ms "
            f"columnar={columnar_wall * 1000:.1f}ms ({columnar.table.kernels.name}) "
            f"columnar-stdlib={stdlib_wall * 1000:.1f}ms "
            f"speedup={speedup:.2f}x columnar={columnar_speedup:.2f}x "
            f"stdlib={stdlib_speedup:.2f}x work_units={work:.0f}"
        )

    largest = report["scales"][-1]
    report["largest_scale_speedup"] = largest["speedup"]
    report["largest_scale_columnar_speedup"] = largest["columnar_speedup_over_idspace"]
    report["largest_scale_columnar_stdlib_speedup"] = largest[
        "columnar_stdlib_speedup_over_idspace"
    ]
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"BENCH_HOTPATH wrote {OUTPUT}")

    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"ID-space engine is only {largest['speedup']:.2f}x faster than the reference "
        f"executor at {largest['triples']} triples (required: {MIN_SPEEDUP}x)"
    )
    assert largest["columnar_speedup_over_idspace"] >= MIN_COLUMNAR_SPEEDUP, (
        f"columnar engine is only {largest['columnar_speedup_over_idspace']:.2f}x faster "
        f"than the ID-space engine at {largest['triples']} triples "
        f"(required: {MIN_COLUMNAR_SPEEDUP}x)"
    )
    assert largest["columnar_stdlib_speedup_over_idspace"] >= MIN_STDLIB_SPEEDUP, (
        f"stdlib columnar path is {largest['columnar_stdlib_speedup_over_idspace']:.2f}x "
        f"vs the ID-space engine at {largest['triples']} triples "
        f"(required: {MIN_STDLIB_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_engines_beat_their_baselines_on_join_heavy_templates()
    print("ok")
