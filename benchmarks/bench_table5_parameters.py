"""Benchmark E5 — regenerate Table 5 (DOTIL parameter sweep)."""

from conftest import run_once

from repro.experiments import format_parameter_sweep, run_parameter_sweep


def test_table5_parameter_sweep(benchmark, bench_settings):
    rows = run_once(benchmark, run_parameter_sweep, bench_settings)
    print()
    print(format_parameter_sweep(rows))

    parameters = {row.parameter for row in rows}
    assert parameters == {"r_bg", "prob", "alpha", "gamma", "lam"}
    # Every configuration completes and produces a finite TTI and a
    # non-negative learned Q-matrix.
    assert all(row.tti > 0 for row in rows)
    assert all(row.qmatrix_total >= 0 for row in rows)

    # TTI is largely insensitive to prob (the paper's observation): the spread
    # across prob values stays within 50% of the best value.
    prob_ttis = [row.tti for row in rows if row.parameter == "prob"]
    assert max(prob_ttis) <= min(prob_ttis) * 1.5
