"""Ablation bench — graph traversal ordering: greedy vs source order."""

from conftest import run_once

from repro.experiments import run_planner_ablation


def test_ablation_traversal_planner(benchmark, bench_settings):
    result = run_once(benchmark, run_planner_ablation, bench_settings)
    print()
    print(
        f"{result.name}: greedy {result.paper_choice:.4f}s, "
        f"source order {result.ablated:.4f}s ({result.delta_percent:+.1f}%)"
    )
    # Greedy ordering must not be slower than naive source order.
    assert result.paper_choice <= result.ablated * 1.05
