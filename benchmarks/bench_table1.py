"""Benchmark E1 — regenerate Table 1 (relational vs graph latency by size)."""

from conftest import run_once

from repro.experiments import format_table1, run_table1


def test_table1_store_scaling(benchmark, bench_settings):
    rows = run_once(benchmark, run_table1, base_triples=800, steps=10, seed=bench_settings.seed)
    print()
    print(format_table1(rows))

    # Shape assertions mirroring the paper: relational grows steeply with the
    # data size (MySQL: 11 s -> 99 s over 10x), the graph store grows far more
    # slowly (Neo4j: 0.6 s -> 4 s), and the gap widens with scale.
    assert rows[-1].relational_seconds > rows[0].relational_seconds * 4
    assert rows[-1].graph_seconds < rows[0].graph_seconds * 8
    assert rows[-1].speedup > rows[0].speedup
    assert all(row.relational_seconds > row.graph_seconds for row in rows)
