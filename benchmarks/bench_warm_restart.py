"""Benchmark P1 — warm restart from a durable snapshot vs the cold start.

The cold-start cost the paper's Section 6 experiments measure is exactly what
a process restart used to pay: re-ingest the dataset from triples and
re-learn the physical design from an untrained tuner.  ``repro.persist``
removes it.  This benchmark pins the headline:

1. **Warm restart is free of re-tuning** — a ``QueryService`` restored from a
   snapshot serves the traffic mix at *exactly* the pre-restart modelled TTI
   (byte-identical bindings, same modelled seconds) with **zero** tuning
   epochs after the restart: the snapshot carried the placement, statistics,
   workload window, and DOTIL's Q-state.
2. **Cold restart pays** — an identically configured service rebuilt from raw
   triples starts at a strictly worse untuned TTI, pays the modelled
   re-ingest again, and needs ≥ 1 tuning epoch (with fresh import seconds)
   to work its way back to the tuned TTI.

Everything asserted is modelled (work counters priced by the deterministic
cost model), so the numbers are machine-independent; restore wall-clock is
reported informationally.  Results land in ``BENCH_warm_restart.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_warm_restart.py -q -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_warm_restart.py

Environment knobs: ``BENCH_RESTART_TRIPLES`` (dataset size),
``BENCH_RESTART_WARMUP_EPOCHS`` (tuning epochs before the snapshot),
``BENCH_RESTART_MAX_RECOVERY_EPOCHS`` (cold-path epoch budget).
"""

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    AdaptiveConfig,
    Dotil,
    DotilConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    SnapshotPolicy,
    generate_watdiv,
    watdiv_workload,
)

TRIPLES = int(os.environ.get("BENCH_RESTART_TRIPLES", "6000"))
WARMUP_EPOCHS = int(os.environ.get("BENCH_RESTART_WARMUP_EPOCHS", "3"))
MAX_RECOVERY_EPOCHS = int(os.environ.get("BENCH_RESTART_MAX_RECOVERY_EPOCHS", "8"))
SEED = 7
WORKLOAD_SEED = 19
TUNER_CONFIG = DotilConfig(r_bg=0.2, prob=1.0, gamma=0.7, lam=4.5)
FAMILIES = ("snowflake", "complex")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_warm_restart.json"


def _traffic(dataset):
    queries = []
    for family in FAMILIES:
        queries.extend(watdiv_workload(dataset, family=family, seed=WORKLOAD_SEED).ordered())
    return queries


def _service_config(snapshot_root=None):
    return ServiceConfig(
        adaptive=AdaptiveConfig(
            window_size=1024,
            epoch_queries=0,  # epochs driven explicitly; a restart adds none
            tuner_factory=lambda dual: Dotil(dual, TUNER_CONFIG),
        ),
        snapshot=SnapshotPolicy(path=snapshot_root, every_mutations=0)
        if snapshot_root is not None
        else None,
    )


def test_warm_restart_reaches_pre_restart_tti_with_zero_tuning_epochs():
    dataset = generate_watdiv(target_triples=TRIPLES, seed=SEED)
    traffic = _traffic(dataset)
    snapshot_root = Path(tempfile.mkdtemp(prefix="repro-warm-restart-")) / "snapshots"
    report = {
        "benchmark": "warm_restart",
        "workload": f"watdiv {'+'.join(FAMILIES)}",
        "triples": len(dataset.triples),
        "r_bg": TUNER_CONFIG.r_bg,
        "warmup_epochs": WARMUP_EPOCHS,
        "warmup_timeline": [],
        "cold_timeline": [],
    }

    print()
    # ---------------------------------------------------------------- #
    # Phase 1: live service — ingest, tune to convergence, snapshot.
    # ---------------------------------------------------------------- #
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    ingest_seconds = dual.relational.total_insert_seconds
    with QueryService(dual, _service_config(snapshot_root)) as live:
        for epoch in range(WARMUP_EPOCHS):
            tti = live.run_batch(traffic).tti
            epoch_report = live.tune_now()
            report["warmup_timeline"].append(
                {"epoch": epoch, "tti": tti, "moves": epoch_report.moves}
            )
            print(f"BENCH_WARM_RESTART warmup epoch={epoch} tti={tti:.4f} moves={epoch_report.moves}")
        pre_batch = live.run_batch(traffic)
        pre_restart_tti = pre_batch.tti
        pre_bindings = [execution.result.bindings for execution in pre_batch]
        live_metrics = live.adaptive_metrics()
        live.checkpoint()
        tuning_seconds = live_metrics["import_seconds"] + live_metrics["evict_seconds"]

    # ---------------------------------------------------------------- #
    # Phase 2: warm restart — restore, serve, zero epochs.
    # ---------------------------------------------------------------- #
    restore_started = time.perf_counter()
    warm = QueryService.restore(snapshot_root, _service_config(snapshot_root))
    restore_wall_seconds = time.perf_counter() - restore_started
    try:
        warm_metrics_before = warm.adaptive_metrics()
        warm_batch = warm.run_batch(traffic)
        warm_tti = warm_batch.tti
        warm_bindings = [execution.result.bindings for execution in warm_batch]
        warm_metrics_after = warm.adaptive_metrics()
        warm_epochs_run = warm_metrics_after["epochs"] - warm_metrics_before["epochs"]
        warm_ingest_seconds = warm.dual.relational.total_insert_seconds
    finally:
        warm.close()

    # ---------------------------------------------------------------- #
    # Phase 3: cold restart — re-ingest, re-tune until recovered.
    # ---------------------------------------------------------------- #
    cold_dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    cold_ingest_seconds = cold_dual.relational.total_insert_seconds
    epochs_to_recover = None
    with QueryService(cold_dual, _service_config()) as cold:
        cold_first_tti = cold.run_batch(traffic).tti
        cold_tti = cold_first_tti
        for epoch in range(MAX_RECOVERY_EPOCHS):
            epoch_report = cold.tune_now()
            cold_tti = cold.run_batch(traffic).tti
            report["cold_timeline"].append(
                {"epoch": epoch, "tti": cold_tti, "moves": epoch_report.moves}
            )
            print(f"BENCH_WARM_RESTART cold epoch={epoch} tti={cold_tti:.4f} moves={epoch_report.moves}")
            if epochs_to_recover is None and cold_tti <= pre_restart_tti * 1.001:
                epochs_to_recover = epoch + 1
                break
        cold_metrics = cold.adaptive_metrics()
        cold_tuning_seconds = cold_metrics["import_seconds"] + cold_metrics["evict_seconds"]

    report.update(
        {
            "pre_restart_tti": pre_restart_tti,
            "warm_tti": warm_tti,
            "warm_epochs_after_restart": warm_epochs_run,
            "warm_modelled_ingest_seconds": warm_ingest_seconds - ingest_seconds
            if warm_ingest_seconds > ingest_seconds
            else 0.0,
            "restore_wall_seconds": restore_wall_seconds,
            "live_ingest_seconds": ingest_seconds,
            "live_tuning_seconds": tuning_seconds,
            "cold_first_tti": cold_first_tti,
            "cold_final_tti": cold_tti,
            "cold_ingest_seconds": cold_ingest_seconds,
            "cold_tuning_seconds": cold_tuning_seconds,
            "cold_epochs_to_recover": epochs_to_recover,
            "cold_extra_modelled_seconds": cold_ingest_seconds + cold_tuning_seconds,
        }
    )
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"BENCH_WARM_RESTART warm tti={warm_tti:.4f} (pre-restart {pre_restart_tti:.4f}) "
        f"epochs_after_restart={warm_epochs_run:.0f} restore_wall={restore_wall_seconds:.3f}s"
    )
    print(
        f"BENCH_WARM_RESTART cold first_tti={cold_first_tti:.4f} "
        f"recover_epochs={epochs_to_recover} "
        f"re-ingest+re-tune={cold_ingest_seconds + cold_tuning_seconds:.4f}s modelled"
    )
    print(f"BENCH_WARM_RESTART wrote {OUTPUT}")

    # Everything needed below is in memory; clean the tempdir up *before*
    # the assertions so a failing ratchet does not leak a full snapshot
    # tree in /tmp on every failing run.
    shutil.rmtree(snapshot_root.parent, ignore_errors=True)

    # 1. Warm restart serves at exactly the pre-restart modelled TTI, with
    #    byte-identical bindings, and ran zero tuning epochs to get there.
    assert warm_epochs_run == 0, "a warm restart must not need tuning epochs"
    assert warm_tti == pre_restart_tti, (
        f"warm-restart TTI {warm_tti!r} must equal the pre-restart TTI {pre_restart_tti!r}"
    )
    assert warm_bindings == pre_bindings, "warm-restart bindings must be byte-identical"
    # The warm path also skipped the modelled re-ingest entirely.
    assert warm_ingest_seconds == ingest_seconds

    # 2. The cold path starts strictly worse and pays to come back.
    assert cold_first_tti > pre_restart_tti, (
        f"untuned cold TTI {cold_first_tti:.4f} should exceed the tuned {pre_restart_tti:.4f}"
    )
    assert epochs_to_recover is not None and epochs_to_recover >= 1, (
        f"cold path never recovered to the tuned TTI within {MAX_RECOVERY_EPOCHS} epochs "
        f"(final {cold_tti:.4f} vs target {pre_restart_tti:.4f})"
    )
    assert cold_ingest_seconds > 0.0 and cold_tuning_seconds > 0.0


if __name__ == "__main__":
    test_warm_restart_reaches_pre_restart_tti_with_zero_tuning_epochs()
    print("ok")
