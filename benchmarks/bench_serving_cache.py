"""Benchmark S1 — repeated-workload serving through the QueryService caches.

A serving trace repeats the same workload batch (template traffic).  The
uncached baseline is the experiments' ``dual.run_query`` loop; the serving
layer's second pass over the same batch must come from the result cache, be
byte-identical to the uncached answers, and run at least 2x faster in
wall-clock terms.  Modelled TTI is asserted *equal* across the two paths:
caching buys wall-clock time, never metric distortion.

Run with::

    pytest benchmarks/bench_serving_cache.py --benchmark-only -s
"""

import time

from conftest import run_once

from repro import DualStore, QueryService, generate_yago, yago_workload


def fingerprint(result):
    return tuple(sorted(tuple(term.n3() for term in row) for row in result.rows()))


def test_serving_repeated_batch_speedup(benchmark, bench_settings):
    dataset = generate_yago(target_triples=bench_settings.yago_triples, seed=bench_settings.seed)
    dual = DualStore().load(dataset.triples)
    workload = yago_workload(dataset)
    batch = workload.batches("random")[0]

    # Uncached baseline: the one-at-a-time run_query loop.
    start = time.perf_counter()
    uncached = [dual.run_query(query) for query in batch]
    uncached_wall = time.perf_counter() - start

    with QueryService(dual) as service:
        service.run_batch(batch)  # first pass fills plan + result caches

        start = time.perf_counter()
        served = service.run_batch(batch)  # second pass over the same batch
        cached_wall = time.perf_counter() - start

        # One record per submitted query, all from the result cache.
        assert len(served.records) == len(batch)
        assert served.cache_hits == len(batch)

        # Cached results are byte-identical to the uncached ones, and the
        # modelled accounting is preserved exactly.
        for cold, warm in zip(uncached, served):
            assert fingerprint(warm.result) == fingerprint(cold.result)
            assert warm.record.seconds == cold.record.seconds
            assert warm.record.route == cold.record.route
        assert served.tti == sum(record.record.seconds for record in uncached)

        speedup = uncached_wall / cached_wall if cached_wall > 0 else float("inf")
        print()
        print(
            f"BENCH_SERVING_CACHE uncached={uncached_wall * 1000:.2f}ms "
            f"cached={cached_wall * 1000:.2f}ms speedup={speedup:.1f}x "
            f"result_hit_rate={service.metrics.counters.result_cache_hit_rate:.2f}"
        )
        assert speedup >= 2.0, (
            f"cached pass must be >= 2x faster than the uncached loop "
            f"(uncached {uncached_wall * 1000:.2f}ms, cached {cached_wall * 1000:.2f}ms)"
        )

        # Register one more cached pass with pytest-benchmark for the record.
        run_once(benchmark, service.run_batch, batch)


def test_serving_stream_hit_rate(benchmark, bench_settings):
    """Serve a 3-pass stream; after the first pass the cache absorbs traffic."""
    dataset = generate_yago(target_triples=bench_settings.yago_triples, seed=bench_settings.seed)
    dual = DualStore().load(dataset.triples)
    workload = yago_workload(dataset)
    trace = workload.stream(order="random", repeats=3)

    def serve_stream():
        with QueryService(dual) as service:
            served = service.run_batch(trace)
            return service.metrics.counters.copy(), service.metrics.queue.peak, served

    counters, peak_depth, served = run_once(benchmark, serve_stream)
    assert len(served.records) == len(trace)
    # Within one batched submission the duplicates coalesce onto one
    # execution per distinct query.
    distinct = len({query.to_sparql() for query in trace})
    assert counters.executions == distinct
    assert counters.duplicates_coalesced == len(trace) - distinct
    print()
    print(
        f"BENCH_SERVING_STREAM queries={len(trace)} distinct={distinct} "
        f"executions={counters.executions} coalesced={counters.duplicates_coalesced} "
        f"peak_queue_depth={peak_depth}"
    )
