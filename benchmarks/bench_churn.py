"""Benchmark P2 — sustained churn: streaming ingest, live serving, and
delta-log follower catch-up vs full-snapshot reloads.

The write-ahead delta log (``repro.persist.wal``, ``docs/architecture.md``
§9) exists so that a mutating leader can keep followers current without
shipping the whole store per generation.  This benchmark drives a sustained
insert/delete stream through a gated leader *while a client thread serves
queries and tuning epochs run*, with two followers racing to stay current:

* **delta follower** — restores once, then tails the committed log with a
  :class:`~repro.persist.WalTailer` and applies each record in place;
* **reload follower** — the pre-log discipline: a
  :class:`~repro.persist.SnapshotWatcher` plus a full ``load_snapshot`` per
  published generation.

Pinned invariants:

1. both followers end **byte-identical** to the leader (bindings and
   bit-identical work counters at the final generation);
2. the delta follower's catch-up traffic is **strictly cheaper in bytes**
   than the reload follower's snapshot traffic;
3. the leader's ingest stream and concurrent serving both make progress
   (non-zero throughput, non-zero queries served mid-churn), and the delta
   follower's staleness stays bounded (it reaches the leader's generation
   every round).

Results land in ``BENCH_churn.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_churn.py -q -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_churn.py

Environment knobs: ``BENCH_CHURN_TRIPLES`` (base dataset size),
``BENCH_CHURN_ROUNDS`` (mutation rounds), ``BENCH_CHURN_BATCH`` (triples per
round), ``BENCH_CHURN_CHECKPOINT_EVERY`` (rounds between snapshot commits).
"""

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import (  # noqa: E402
    AdaptiveConfig,
    Dotil,
    DotilConfig,
    DualStore,
    QueryService,
    ServiceConfig,
    SnapshotPolicy,
    generate_watdiv,
    watdiv_workload,
)
from repro.persist import SnapshotWatcher, WalTailer, apply_record, restore_with_log  # noqa: E402

TRIPLES = int(os.environ.get("BENCH_CHURN_TRIPLES", "4000"))
ROUNDS = int(os.environ.get("BENCH_CHURN_ROUNDS", "12"))
BATCH = int(os.environ.get("BENCH_CHURN_BATCH", "64"))
CHECKPOINT_EVERY = int(os.environ.get("BENCH_CHURN_CHECKPOINT_EVERY", "4"))
SEED = 7
WORKLOAD_SEED = 19
TUNER_CONFIG = DotilConfig(r_bg=0.2, prob=1.0, gamma=0.7, lam=4.5)
FAMILIES = ("linear", "star")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_churn.json"


def _snapshot_bytes(root: Path, name: str) -> int:
    """On-disk size of one committed snapshot directory."""
    total = 0
    for entry in (root / name).rglob("*"):
        if entry.is_file():
            total += entry.stat().st_size
    return total


def _fresh_pool(base_triples, needed: int):
    seen = set(base_triples)
    bigger = generate_watdiv(target_triples=TRIPLES + 4 * needed, seed=SEED)
    pool = [t for t in bigger.triples if t not in seen]
    assert len(pool) >= needed, f"fresh pool too small ({len(pool)} < {needed})"
    return pool


def test_delta_catch_up_is_strictly_cheaper_than_full_reloads():
    dataset = generate_watdiv(target_triples=TRIPLES, seed=SEED)
    traffic = []
    for family in FAMILIES:
        traffic.extend(watdiv_workload(dataset, family=family, seed=WORKLOAD_SEED).ordered())
    pool = _fresh_pool(dataset.triples, ROUNDS * BATCH)
    root = Path(tempfile.mkdtemp(prefix="repro-churn-")) / "snapshots"
    policy = SnapshotPolicy(path=root, every_mutations=0, log=True, keep=2)
    config = ServiceConfig(
        adaptive=AdaptiveConfig(
            window_size=1024,
            epoch_queries=0,  # epochs fired explicitly at checkpoints
            tuner_factory=lambda dual: Dotil(dual, TUNER_CONFIG),
        ),
        snapshot=policy,
    )
    report = {
        "benchmark": "churn",
        "workload": f"watdiv {'+'.join(FAMILIES)}",
        "triples": TRIPLES,
        "rounds": ROUNDS,
        "batch": BATCH,
        "checkpoint_every": CHECKPOINT_EVERY,
        "rounds_timeline": [],
    }

    print()
    dual = DualStore(TUNER_CONFIG).load(dataset.triples)
    with QueryService(dual, config) as leader:
        # Followers boot from the anchor snapshot the leader just committed.
        delta_follower = restore_with_log(root).dual
        tailer = WalTailer(root, delta_follower.generation)
        watcher = SnapshotWatcher(root)
        reload_follower = watcher.load_if_newer().dual
        delta_bytes = 0
        delta_records = 0
        full_bytes = 0
        full_reloads = 0
        max_staleness = 0
        ingested = 0
        deleted = 0
        modelled_ingest_seconds = 0.0

        # Concurrent serving: a client thread runs the query mix against the
        # gated leader for the whole churn window.
        served = {"queries": 0}
        stop_serving = threading.Event()

        def serve() -> None:
            index = 0
            while not stop_serving.is_set():
                leader.run_query(traffic[index % len(traffic)])
                served["queries"] += 1
                index += 1

        client = threading.Thread(target=serve, name="churn-client", daemon=True)
        client.start()

        churn_started = time.perf_counter()
        inserted_so_far = []
        for round_index in range(ROUNDS):
            chunk = pool[round_index * BATCH : (round_index + 1) * BATCH]
            ingest = leader.ingest_stream(
                iter(chunk), chunk_size=max(1, BATCH // 4), refresh_statistics=False
            )
            ingested += ingest.triples
            modelled_ingest_seconds += ingest.modelled_seconds
            inserted_so_far.extend(chunk)
            if round_index % 3 == 2:
                doomed = inserted_so_far[: BATCH // 4]
                del inserted_so_far[: BATCH // 4]
                deleted += leader.delete(doomed)
            if round_index % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1:
                leader.tune_now()
                leader.checkpoint()  # publishes + rotates the log

            # Delta follower: tail and apply; staleness is how many
            # generations behind it was when it started catching up.
            staleness = dual.generation - tailer.generation
            max_staleness = max(max_staleness, staleness)
            for record in tailer.poll():
                apply_record(delta_follower, record)
                delta_records += 1
                delta_bytes += record.nbytes

            # Reload follower: the old discipline, one full restore per
            # published snapshot.
            newer = watcher.load_if_newer()
            if newer is not None:
                reload_follower = newer.dual
                full_reloads += 1
                full_bytes += _snapshot_bytes(root, newer.manifest.name)
            report["rounds_timeline"].append(
                {
                    "round": round_index,
                    "leader_generation": dual.generation,
                    "delta_generation": delta_follower.generation,
                    "staleness_before_poll": staleness,
                }
            )
        churn_wall_seconds = time.perf_counter() - churn_started
        stop_serving.set()
        client.join(timeout=10)

        # Quiesce: one final publish so the reload follower can reach the
        # leader, and one final tail poll for the delta follower.
        leader.checkpoint()
        for record in tailer.poll():
            apply_record(delta_follower, record)
            delta_records += 1
            delta_bytes += record.nbytes
        final = watcher.load_if_newer()
        if final is not None:
            reload_follower = final.dual
            full_reloads += 1
            full_bytes += _snapshot_bytes(root, final.manifest.name)

        assert delta_follower.generation == dual.generation
        assert reload_follower.generation == dual.generation
        leader_answers = [leader.run_query(q) for q in traffic]

    # Byte-identical serving state on both followers.
    for index, query in enumerate(traffic):
        mine = leader_answers[index].result
        via_delta = delta_follower.run_query(query).result
        via_reload = reload_follower.run_query(query).result
        assert via_delta.bindings == mine.bindings, f"delta bindings diverged at {index}"
        assert via_delta.counters.as_dict() == mine.counters.as_dict(), f"delta work at {index}"
        assert via_reload.bindings == mine.bindings, f"reload bindings diverged at {index}"
        assert via_reload.counters.as_dict() == mine.counters.as_dict(), f"reload work at {index}"

    ingest_rate = ingested / churn_wall_seconds if churn_wall_seconds > 0 else float("inf")
    report.update(
        {
            "ingested_triples": ingested,
            "deleted_triples": deleted,
            "modelled_ingest_seconds": modelled_ingest_seconds,
            "churn_wall_seconds": churn_wall_seconds,
            "ingest_triples_per_second": ingest_rate,
            "queries_served_during_churn": served["queries"],
            "delta_records": delta_records,
            "delta_bytes": delta_bytes,
            "full_reloads": full_reloads,
            "full_reload_bytes": full_bytes,
            "delta_to_full_byte_ratio": (delta_bytes / full_bytes) if full_bytes else None,
            "max_staleness_generations": max_staleness,
        }
    )
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"BENCH_CHURN ingest={ingested} triples ({ingest_rate:.0f}/s wall) "
        f"deleted={deleted} served={served['queries']} queries mid-churn"
    )
    print(
        f"BENCH_CHURN delta: {delta_records} records / {delta_bytes} bytes; "
        f"full reloads: {full_reloads} / {full_bytes} bytes "
        f"(ratio {delta_bytes / full_bytes:.4f})"
    )
    print(f"BENCH_CHURN max staleness {max_staleness} generations; wrote {OUTPUT}")
    shutil.rmtree(root.parent, ignore_errors=True)

    # The tentpole ratchet: catching up by deltas moves strictly fewer bytes
    # than catching up by reloading snapshots.
    assert delta_records > 0 and delta_bytes > 0
    assert full_reloads >= 2 and full_bytes > 0
    assert delta_bytes < full_bytes, (
        f"delta catch-up ({delta_bytes} bytes) must be strictly cheaper than "
        f"full reloads ({full_bytes} bytes)"
    )
    # Churn made real progress while serving stayed live.
    assert ingested == ROUNDS * BATCH and deleted > 0
    assert served["queries"] > 0, "the client thread never got a query through the gate"


if __name__ == "__main__":
    test_delta_catch_up_is_strictly_cheaper_than_full_reloads()
    print("ok")
