"""Benchmark E4 — regenerate Figure 5 (total TTI per workload group).

This also checks the paper's headline claims: RDB-GDB improves noticeably
over both RDB-only (paper: up to average 43.72%) and RDB-views (paper: up to
average 63.01%), and ordered vs random workloads make little difference to
RDB-GDB's total TTI.
"""

from conftest import run_once

from repro.experiments import build_suite, run_store_variants

GROUPS = ["YAGO", "WatDiv-C", "Bio2RDF"]


def test_fig5_total_tti_and_headline_improvements(benchmark, bench_settings):
    suite = build_suite(bench_settings, groups=GROUPS)
    report = run_once(
        benchmark, run_store_variants, bench_settings, orders=["ordered", "random"], suite=suite
    )
    print()
    print("Figure 5 — total TTI per workload group (seconds)")
    for comparison in report.comparisons:
        print(
            f"  {comparison.group:<9} {comparison.order:<8} "
            f"RDB-only {comparison.total_tti('RDB-only'):7.3f}  "
            f"RDB-views {comparison.total_tti('RDB-views'):7.3f}  "
            f"RDB-GDB {comparison.total_tti('RDB-GDB'):7.3f}"
        )
    avg_only = report.average_improvement("RDB-only")
    avg_views = report.average_improvement("RDB-views")
    print(f"  average improvement vs RDB-only : {avg_only:5.1f}%  (paper: 43.72%)")
    print(f"  average improvement vs RDB-views: {avg_views:5.1f}%  (paper: 63.01%)")

    assert avg_only > 10.0
    assert avg_views > 10.0

    # Ordered vs random makes little difference to RDB-GDB (paper, Figure 5).
    for group in GROUPS:
        ordered = report.find(group, "ordered").total_tti("RDB-GDB")
        randomised = report.find(group, "random").total_tti("RDB-GDB")
        assert abs(ordered - randomised) / max(ordered, randomised) < 0.5
