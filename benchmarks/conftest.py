"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper through the
corresponding driver in :mod:`repro.experiments` and prints the same rows /
series the paper reports.  ``pytest-benchmark`` measures the wall-clock cost
of the driver itself; the *reported numbers inside* each experiment come from
the deterministic cost model, so they are stable across machines.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentSettings  # noqa: E402


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """The dataset scale and protocol used by every benchmark."""
    return ExperimentSettings(
        yago_triples=5000,
        watdiv_triples=6000,
        bio2rdf_triples=6000,
        repetitions=3,
        discard=1,
        seed=7,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
