"""Benchmark E9 — regenerate Figure 8 (DOTIL vs one-off, LRU, ideal tuning)."""

from conftest import run_once

from repro.experiments import format_tuner_comparison, run_tuner_comparison


def test_fig8_tuner_comparison(benchmark, bench_settings):
    comparisons = run_once(benchmark, run_tuner_comparison, bench_settings)
    print()
    print(format_tuner_comparison(comparisons))

    for comparison in comparisons:
        dotil = comparison.total_tti("DOTIL")
        # DOTIL should not lose to the static one-off policy or to the LRU
        # heuristic, and should stay within a reasonable factor of the
        # clairvoyant ideal mode.
        assert dotil <= comparison.total_tti("one-off") * 1.05
        assert dotil <= comparison.total_tti("LRU") * 1.05
        assert dotil <= comparison.total_tti("ideal") * 2.0
