"""Watching a snapshot root for newly committed generations.

The multi-process serving mode (:mod:`repro.endpoint.worker`) turns
:mod:`repro.persist` into a replication primitive: a leader process commits
snapshot generations under one root, and N read-only worker processes follow
the ``CURRENT`` pointer.  :class:`SnapshotWatcher` is the follower half —
a cheap poll (one small-file read per tick) that detects a new commit, plus
a restore helper that tolerates the races a live root has by construction:

* ``CURRENT`` is replaced atomically (:func:`os.replace`), so a reader sees
  the old or the new pointer, never a torn one;
* a commit landing *while* a follower loads the previous snapshot can prune
  that snapshot's directory out from under the load (retention keeps
  ``keep`` generations, but a slow follower can lose the race).  The load
  then fails hash verification or file lookup — loudly, per the persist
  contract — and :meth:`SnapshotWatcher.load_if_newer` simply retries
  against the now-newer ``CURRENT``.

Generations are monotonic by the commit protocol
(:func:`repro.persist.snapshot.commit_snapshot` refuses to roll ``CURRENT``
back), so a follower that only ever swaps to a strictly newer generation can
never regress — the property the endpoint's generation-stamped responses
make observable.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Union

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import SnapshotError
from repro.persist.snapshot import (
    RestoredSnapshot,
    SnapshotManifest,
    load_snapshot,
    read_manifest,
)

__all__ = ["SnapshotWatcher"]

_CURRENT = "CURRENT"


class SnapshotWatcher:
    """Follow the committed snapshot under one root directory.

    The watcher keeps a cursor — the snapshot *name* it last saw — and
    reports a change exactly once per committed generation.  Construct it
    with ``seen=<name>`` when the caller already restored a snapshot (the
    worker's boot path), or leave it unset to treat the first committed
    snapshot as news.
    """

    def __init__(self, root: Union[str, Path], seen: Optional[str] = None):
        self.root = Path(root)
        self._seen = seen

    # ------------------------------------------------------------------ #
    # Cheap polling
    # ------------------------------------------------------------------ #
    def committed_name(self) -> Optional[str]:
        """The snapshot name ``CURRENT`` points at, or ``None`` when there is
        no committed snapshot (missing root/pointer — a follower may start
        before its leader's first commit)."""
        try:
            name = (self.root / _CURRENT).read_text(encoding="utf-8").strip()
        except OSError:
            return None
        return name or None

    def poll(self) -> Optional[SnapshotManifest]:
        """The manifest of a newly committed snapshot, or ``None``.

        One small-file read on the no-change path.  The cursor only advances
        when a manifest is actually readable, so a commit observed mid-write
        (pointer flipped, manifest read racing retention) is re-reported on
        the next tick instead of being lost.
        """
        name = self.committed_name()
        if name is None or name == self._seen:
            return None
        try:
            manifest = read_manifest(self.root)
        except SnapshotError:
            return None
        # read_manifest re-resolves CURRENT; track the name it actually read
        # (a concurrent commit between our two reads just means we report the
        # newer snapshot, which is the right answer anyway).
        self._seen = manifest.name
        return manifest

    # ------------------------------------------------------------------ #
    # Restore helpers
    # ------------------------------------------------------------------ #
    def load_if_newer(
        self,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        throttle: Optional[ResourceThrottle] = None,
        attempts: int = 3,
    ) -> Optional[RestoredSnapshot]:
        """Restore the committed snapshot iff it is news to this watcher.

        Retries up to ``attempts`` times when the load loses a race against
        a concurrent commit-and-prune (each retry re-resolves ``CURRENT``
        itself, so it targets the newer snapshot).  Returns ``None`` when
        nothing new is committed.

        When every attempt fails, the cursor is restored to its pre-call
        value before the last error is raised: the generation this call
        never managed to load stays *news*, so the next call retries it
        instead of silently skipping it.
        """
        entry_cursor = self._seen
        if self.poll() is None:
            return None
        last: Optional[SnapshotError] = None
        for _ in range(max(1, attempts)):
            try:
                restored = load_snapshot(self.root, cost_model=cost_model, throttle=throttle)
            except SnapshotError as exc:
                last = exc
                time.sleep(0.01)
                continue
            self._seen = restored.manifest.name
            return restored
        assert last is not None
        self._seen = entry_cursor
        raise last

    def wait_for_generation(
        self, generation: int, *, timeout: float = 30.0, interval: float = 0.05
    ) -> SnapshotManifest:
        """Block until a snapshot with ``manifest.generation >= generation``
        is committed; raises :class:`SnapshotError` on timeout.

        Leader-side convenience for tests and orchestration ("my commit is
        now visible to followers of this root").  Does not move the cursor
        used by :meth:`poll`/:meth:`load_if_newer`.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self.committed_name() is not None:
                try:
                    manifest = read_manifest(self.root)
                except SnapshotError:
                    manifest = None
                if manifest is not None and manifest.generation >= generation:
                    return manifest
            if time.monotonic() >= deadline:
                raise SnapshotError(
                    f"no snapshot with generation >= {generation} committed under "
                    f"{self.root} within {timeout:.1f}s"
                )
            time.sleep(interval)
