"""Write-ahead delta log between snapshots (incremental durability).

:mod:`repro.persist.snapshot` makes durability *full-state*: every checkpoint
serializes the whole dual store.  That is the right primitive for anchoring,
but heavy write traffic needs deltas — both on the leader (a mutation should
cost one small fsync'd append, not a whole-store serialization) and on the
followers (:mod:`repro.endpoint.worker` should catch up by replaying the few
mutations it missed, not by reloading the dataset).

The delta log provides exactly the classic snapshot+log discipline:

* every :class:`~repro.core.dualstore.DualStore` mutation batch — inserts,
  deletes, partition transfers and evictions — is appended as one
  checksummed record carrying the store generation it produced;
* each record is a self-delimiting **frame** (magic + length + CRC32 + JSON
  body), written with a single buffered write, flushed, and fsync'd before
  the mutation is considered logged.  A crash can only tear the *last*
  frame, and a torn frame never checksums — so a reader always stops
  cleanly at the last complete record;
* segments live under ``<snapshot-root>/wal/`` as
  ``wal-<8-digit-seq>-g<base>.log``, where ``base`` is the generation of the
  snapshot the segment is anchored to.  Every snapshot commit **rotates**
  the log: a fresh segment opens at the new snapshot's generation and
  segments older than the retention window are pruned (in lockstep with
  snapshot retention, so every retained snapshot keeps a replayable tail);
* the restore invariant is ``snapshot + replay(tail) = byte-identical
  restore``: :func:`restore_with_log` loads the committed snapshot and
  replays every complete record after its generation, producing a store
  whose answers, work counters, placement, and generation match the live
  one exactly (dictionary ids are assigned in first-seen order, tombstoned
  tables scan like their compacted restores, and statistics are recomputed
  lazily from content — so replaying the op sequence reproduces the bytes).

Followers tail the log with a :class:`WalTailer`: a byte-offset cursor per
segment plus a generation cursor, tolerant of the leader's in-flight appends
(an incomplete frame at the tail is simply retried next tick).  When the log
has rotated past the follower's generation the tailer raises
:class:`~repro.errors.WalGapError` and the follower falls back to a full
restore — the decision ``docs/architecture.md`` §9 specifies.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import WalError, WalGapError, WalReplayError
from repro.persist.snapshot import RestoredSnapshot, _fsync_dir, load_snapshot
from repro.rdf.dictionary import term_from_payload, term_to_payload
from repro.rdf.terms import IRI, Triple
from repro.resilience import faults

__all__ = [
    "WAL_FORMAT_VERSION",
    "WAL_DIR",
    "DeltaLog",
    "WalRecord",
    "WalSegment",
    "WalTailer",
    "apply_record",
    "collect_tail",
    "list_segments",
    "read_segment",
    "restore_with_log",
    "triple_from_payload",
    "triple_to_payload",
]

WAL_FORMAT_VERSION = 1

#: Subdirectory of the snapshot root holding the log segments.
WAL_DIR = "wal"

_MAGIC = b"WAL1"
_HEADER = struct.Struct("<II")  # body length, CRC32 of the body
_SEGMENT_RE = re.compile(r"^wal-(\d{8})-g(\d+)\.log$")


# --------------------------------------------------------------------------- #
# Op payloads (the JSON bodies of mutation records)
# --------------------------------------------------------------------------- #
def triple_to_payload(triple: Triple) -> list:
    """JSON-serializable encoding of one concrete triple (term payloads)."""
    return [
        term_to_payload(triple.subject),
        term_to_payload(triple.predicate),
        term_to_payload(triple.object),
    ]


def triple_from_payload(payload: list) -> Triple:
    """Inverse of :func:`triple_to_payload`."""
    subject, predicate, obj = (term_from_payload(item) for item in payload)
    return Triple(subject, predicate, obj)  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# Frames
# --------------------------------------------------------------------------- #
def _encode_body(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _frame(body: bytes) -> bytes:
    return _MAGIC + _HEADER.pack(len(body), zlib.crc32(body)) + body


def _write_frame(handle, frame: bytes) -> None:
    """Durably append one frame (write + flush + fsync).

    Kept as a module seam so the crash-consistency tests can inject a torn
    write (partial bytes, then the failure) at every append.  Also the
    ``wal.write`` :mod:`~repro.resilience.faults` site: an installed
    FaultPlan can fail the append *before* any bytes land (a clean I/O
    error, as opposed to the torn-write seam)."""
    faults.fire("wal.write")
    handle.write(frame)
    handle.flush()
    os.fsync(handle.fileno())


def _truncate_segment(path: Path, valid_bytes: int) -> None:
    """Durably drop a torn tail before resuming appends (recovery step).

    A module seam for the same reason as :func:`_write_frame`: the property
    suite injects failures at the truncation step too."""
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


# --------------------------------------------------------------------------- #
# Segments on disk
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WalSegment:
    """One on-disk log segment (name-derived metadata only)."""

    path: Path
    name: str
    sequence: int
    base_generation: int


@dataclass
class WalRecord:
    """One complete mutation record read back from the log."""

    generation: int
    ops: List[dict]
    nbytes: int  # framed size on disk (magic + header + body)


@dataclass
class SegmentScan:
    """The readable prefix of one segment.

    ``valid_bytes`` is the offset just past the last complete frame —
    everything after it (if ``clean`` is ``False``) is a torn or corrupt
    tail that a writer must truncate before resuming appends."""

    header: Optional[dict]
    records: List[WalRecord]
    valid_bytes: int
    clean: bool


def list_segments(root: Union[str, Path]) -> List[WalSegment]:
    """All log segments under ``root``, oldest first (by sequence)."""
    directory = Path(root) / WAL_DIR
    if not directory.is_dir():
        return []
    segments = []
    for entry in directory.iterdir():
        match = _SEGMENT_RE.match(entry.name)
        if match:
            segments.append(
                WalSegment(
                    path=entry,
                    name=entry.name,
                    sequence=int(match.group(1)),
                    base_generation=int(match.group(2)),
                )
            )
    segments.sort(key=lambda segment: segment.sequence)
    return segments


def read_segment(segment: WalSegment, start: int = 0) -> SegmentScan:
    """Scan one segment's frames from byte offset ``start``.

    Stops at the first incomplete or corrupt frame (``clean=False``) —
    append-only writing means such a frame is always the tail.  When
    scanning from offset 0 the first frame must be the segment header and
    is validated against the segment's name-derived base generation.
    """
    try:
        data = segment.path.read_bytes()
    except FileNotFoundError:
        raise WalGapError(f"delta-log segment {segment.name} vanished (pruned mid-read)") from None
    except OSError as exc:
        raise WalError(f"delta-log segment {segment.name} is unreadable: {exc}") from exc
    if start > len(data):
        # The file shrank below our cursor: it cannot be the segment we were
        # tailing (e.g. the name was reused after a full prune).
        raise WalGapError(f"delta-log segment {segment.name} shrank below offset {start}")
    prefix = len(_MAGIC) + _HEADER.size
    offset = start
    header: Optional[dict] = None
    records: List[WalRecord] = []
    clean = True
    size = len(data)
    while offset < size:
        frame_body = offset + prefix
        if data[offset : offset + len(_MAGIC)] != _MAGIC or frame_body > size:
            clean = False
            break
        length, crc = _HEADER.unpack(data[offset + len(_MAGIC) : frame_body])
        frame_end = frame_body + length
        if frame_end > size:
            clean = False
            break
        body = data[frame_body:frame_end]
        if zlib.crc32(body) != crc:
            clean = False
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            clean = False
            break
        if offset == 0:
            if (
                not isinstance(payload, dict)
                or payload.get("wal") != WAL_FORMAT_VERSION
                or payload.get("base_generation") != segment.base_generation
            ):
                raise WalError(
                    f"delta-log segment {segment.name} has a malformed or mismatched header"
                )
            header = payload
        else:
            try:
                records.append(
                    WalRecord(
                        generation=int(payload["g"]),
                        ops=list(payload["ops"]),
                        nbytes=frame_end - offset,
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise WalError(
                    f"delta-log segment {segment.name} carries a malformed record: {exc}"
                ) from exc
        offset = frame_end
    return SegmentScan(header=header, records=records, valid_bytes=offset, clean=clean)


def collect_tail(root: Union[str, Path], after_generation: int) -> List[WalRecord]:
    """Every complete record with generation > ``after_generation``, in order.

    Scans all retained segments oldest-first (records later than a rotation
    point can legitimately live in the *older* segment: the leader keeps
    appending between the snapshot capture and the rotation).  Raises
    :class:`~repro.errors.WalGapError` when the surviving records do not
    form a contiguous ``after+1, after+2, …`` chain — the log was rotated
    or truncated past the caller and cannot take it forward.
    """
    records: List[WalRecord] = []
    expected = after_generation
    for segment in list_segments(root):
        scan = read_segment(segment)
        for record in scan.records:
            if record.generation <= expected:
                continue
            if record.generation != expected + 1:
                raise WalGapError(
                    f"delta log jumps from generation {expected} to {record.generation} "
                    f"in {segment.name}; a full restore is required"
                )
            records.append(record)
            expected = record.generation
    return records


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #
def apply_record(dual, record: WalRecord) -> None:
    """Apply one mutation record to ``dual`` under a single generation bump.

    The ops replay through the store's own mutation methods inside
    :meth:`~repro.core.dualstore.DualStore.batch_mutations`, so one record
    costs exactly one bump (matching the bump that produced it) and the
    store's invalidation hooks fire once.  Raises
    :class:`~repro.errors.WalReplayError` if the resulting generation does
    not match the record's — a drifted replay must never be served.
    """
    if not record.ops:
        raise WalReplayError(f"record for generation {record.generation} carries no ops")
    with dual.batch_mutations():
        for op in record.ops:
            kind = op.get("op")
            try:
                if kind == "insert":
                    dual.insert([triple_from_payload(item) for item in op["t"]])
                elif kind == "delete":
                    dual.delete([triple_from_payload(item) for item in op["t"]])
                elif kind == "transfer":
                    dual.transfer_partition(IRI(op["p"]))
                elif kind == "evict":
                    dual.evict_partition(IRI(op["p"]))
                else:
                    raise WalReplayError(f"unknown delta-log op {kind!r}")
            except WalReplayError:
                raise
            except Exception as exc:
                raise WalReplayError(
                    f"replaying {kind!r} for generation {record.generation} failed: {exc}"
                ) from exc
    if dual.generation != record.generation:
        raise WalReplayError(
            f"replay drifted: store reached generation {dual.generation}, "
            f"record promised {record.generation}"
        )


def restore_with_log(
    root: Union[str, Path],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    throttle: Optional[ResourceThrottle] = None,
) -> RestoredSnapshot:
    """Load the committed snapshot and replay the delta-log tail onto it.

    The returned :class:`~repro.persist.snapshot.RestoredSnapshot` keeps the
    *base* snapshot's manifest and extras; ``restored.dual.generation`` is
    the replayed head, which may be ahead of ``manifest.generation``.  A
    root without a log (or with an empty tail) restores exactly like
    :func:`~repro.persist.snapshot.load_snapshot`.
    """
    restored = load_snapshot(root, cost_model=cost_model, throttle=throttle)
    for record in collect_tail(root, after_generation=restored.manifest.generation):
        apply_record(restored.dual, record)
    return restored


# --------------------------------------------------------------------------- #
# The leader-side writer
# --------------------------------------------------------------------------- #
class DeltaLog:
    """Append-only writer over the segments under one snapshot root.

    Thread-safe: appends (fired from the dual store's mutation listener) and
    rotations (fired from the snapshot-commit path) serialize on an internal
    lock.  Any append or rotation failure **closes** the log — a torn tail
    must never be appended past — leaving restores anchored to the last
    complete record until the next successful snapshot commit re-opens a
    fresh segment via :meth:`rotate`.
    """

    def __init__(self, root: Union[str, Path], keep_segments: int = 2):
        self.root = Path(root)
        self.directory = self.root / WAL_DIR
        self.keep_segments = max(1, keep_segments)
        self._lock = threading.Lock()
        self._handle = None
        self._segment: Optional[WalSegment] = None
        self._head_generation: Optional[int] = None
        self._sequence_floor = 0
        #: Cumulative accounting (diagnostics and the churn benchmark).
        self.records_appended = 0
        self.bytes_appended = 0

    # -- introspection ------------------------------------------------- #
    @property
    def is_open(self) -> bool:
        return self._handle is not None

    @property
    def segment_name(self) -> Optional[str]:
        segment = self._segment
        return None if segment is None else segment.name

    @property
    def head_generation(self) -> Optional[int]:
        return self._head_generation

    # -- lifecycle ----------------------------------------------------- #
    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        handle, self._handle = self._handle, None
        self._segment = None
        self._head_generation = None
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - close failures are best-effort
                pass

    # -- writing ------------------------------------------------------- #
    def rotate(self, base_generation: int, snapshot_name: Optional[str] = None) -> WalSegment:
        """Open a fresh segment anchored at ``base_generation`` (the just
        committed snapshot's generation), close the previous one, and prune
        segments beyond the retention window.  The segment is durable (file
        fsync'd, directory entry fsync'd) before this returns."""
        with self._lock:
            if self._segment is not None and self._segment.base_generation >= base_generation:
                # Stale rotation (commits are generation-monotonic; a no-op
                # commit of an older capture must not roll the log back).
                return self._segment
            # Mutations may have been appended between the snapshot capture
            # and this rotation (the gated concurrent leader): the head must
            # carry over, not reset to the capture point — those records stay
            # replayable from the previous segment, and the next append is
            # contiguous with the store, not the snapshot.
            previous_head = self._head_generation if self._handle is not None else None
            self._close_locked()
            self.directory.mkdir(parents=True, exist_ok=True)
            sequence = self._next_sequence_locked()
            name = f"wal-{sequence:08d}-g{base_generation}.log"
            path = self.directory / name
            header = _frame(
                _encode_body(
                    {
                        "wal": WAL_FORMAT_VERSION,
                        "base_generation": base_generation,
                        "snapshot": snapshot_name,
                    }
                )
            )
            handle = open(path, "ab")
            try:
                _write_frame(handle, header)
                _fsync_dir(self.directory)
            except BaseException:
                try:
                    handle.close()
                finally:
                    path.unlink(missing_ok=True)
                raise
            self._handle = handle
            self._segment = WalSegment(
                path=path, name=name, sequence=sequence, base_generation=base_generation
            )
            self._head_generation = (
                base_generation if previous_head is None else max(previous_head, base_generation)
            )
            self._sequence_floor = sequence
            self._prune_locked()
            return self._segment

    def append(self, ops: List[dict], generation: int) -> int:
        """Durably append one mutation record; returns its framed size.

        Raises :class:`~repro.errors.WalError` (closing the log) when no
        segment is open, when ``generation`` is not contiguous with the head
        (a bump escaped the listener — the tail would lie), or when the
        write itself fails (the frame may be torn; readers stop before it).
        """
        with self._lock:
            if self._handle is None:
                raise WalError("delta log has no open segment (rotate first)")
            assert self._head_generation is not None
            if generation != self._head_generation + 1:
                self._close_locked()
                raise WalError(
                    f"append for generation {generation} is not contiguous with the "
                    f"log head {self._head_generation}; closing the segment"
                )
            frame = _frame(_encode_body({"g": generation, "ops": ops}))
            try:
                _write_frame(self._handle, frame)
            except BaseException:
                self._close_locked()
                raise
            self._head_generation = generation
            self.records_appended += 1
            self.bytes_appended += len(frame)
            return len(frame)

    def recover(self, head_generation: int) -> bool:
        """Try to resume appending to the newest on-disk segment.

        Succeeds iff the newest segment's complete records form a contiguous
        chain from its base and end exactly at ``head_generation`` (the
        caller's live store) — the warm-restart path, where the store was
        itself rebuilt via :func:`restore_with_log`.  A torn tail is
        truncated before the append handle reopens.  On any mismatch the
        log stays closed and the caller should anchor a fresh snapshot.
        """
        with self._lock:
            self._close_locked()
            segments = list_segments(self.root)
            if not segments:
                return False
            newest = segments[-1]
            self._sequence_floor = max(self._sequence_floor, newest.sequence)
            try:
                scan = read_segment(newest)
            except WalError:
                return False
            if scan.header is None:
                return False
            expected = newest.base_generation
            for record in scan.records:
                if record.generation != expected + 1:
                    return False
                expected = record.generation
            if expected != head_generation:
                return False
            if not scan.clean:
                try:
                    _truncate_segment(newest.path, scan.valid_bytes)
                except OSError:
                    return False
            self._handle = open(newest.path, "ab")
            self._segment = newest
            self._head_generation = head_generation
            return True

    # -- internals ----------------------------------------------------- #
    def _next_sequence_locked(self) -> int:
        highest = self._sequence_floor
        for segment in list_segments(self.root):
            highest = max(highest, segment.sequence)
        return highest + 1

    def _prune_locked(self) -> None:
        segments = list_segments(self.root)
        if len(segments) <= self.keep_segments:
            return
        for segment in segments[: -self.keep_segments]:
            try:
                segment.path.unlink()
            except OSError:  # pragma: no cover - prune is best-effort
                pass


# --------------------------------------------------------------------------- #
# The follower-side tailer
# --------------------------------------------------------------------------- #
class WalTailer:
    """Incremental reader over a live delta log (the follower cursor).

    Tracks a byte offset per segment plus a generation cursor, so each
    :meth:`poll` reads only the bytes appended since the last one.  An
    incomplete frame at the tail (the leader mid-append, or a torn write) is
    simply left for the next poll — only complete, checksummed records are
    returned.  Raises :class:`~repro.errors.WalGapError` when the log can no
    longer produce ``generation + 1`` (rotated/pruned past this follower, or
    a needed segment vanished): the follower must full-restore and build a
    fresh tailer at the restored generation.
    """

    def __init__(self, root: Union[str, Path], generation: int):
        self.root = Path(root)
        self.generation = generation
        self._offsets: Dict[str, int] = {}

    def poll(self) -> List[WalRecord]:
        """All complete records after the cursor, advancing it past them."""
        segments = list_segments(self.root)
        fresh: List[WalRecord] = []
        for segment in segments:
            start = self._offsets.get(segment.name, 0)
            scan = read_segment(segment, start=start)
            self._offsets[segment.name] = scan.valid_bytes
            for record in scan.records:
                if record.generation <= self.generation:
                    continue
                if record.generation != self.generation + 1:
                    raise WalGapError(
                        f"follower at generation {self.generation} needs "
                        f"{self.generation + 1}, but the log resumes at "
                        f"{record.generation} ({segment.name})"
                    )
                fresh.append(record)
                self.generation = record.generation
        live = {segment.name for segment in segments}
        for name in [name for name in self._offsets if name not in live]:
            del self._offsets[name]
        return fresh
