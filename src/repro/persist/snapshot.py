"""Atomic, versioned snapshot files for :class:`~repro.core.dualstore.DualStore`.

Layout of a snapshot root directory::

    <root>/
      CURRENT                      # text: name of the committed snapshot dir
      snapshot-00000001-g4/        # one immutable directory per snapshot
        MANIFEST.json              # format version, fingerprint, hashes, ...
        dictionary.json            # term payloads in identifier order
        relational.json            # rows (+ per-shard placement) and stats
        graph.json                 # graph-store residency + budget accounting
        design.json                # DualStoreDesign, transfer log, config
        extras.json                # optional opaque payload (serving layer)

Write protocol (the classic temp-dir + fsync + rename commit):

1. every file is written into ``<root>/.tmp-<nonce>`` and fsynced;
2. the temp directory is renamed to its final ``snapshot-...`` name;
3. ``CURRENT`` is atomically replaced to point at the new name — **this is
   the commit point**; a crash before it leaves the previous snapshot (or
   no snapshot) fully intact, a crash after it leaves the new one;
4. superseded snapshot directories beyond the retention count are pruned.

Read protocol: follow ``CURRENT``, parse the manifest, verify the format
version and every data file's SHA-256 against the manifest, then rebuild the
store bottom-up (dictionary → relational backend → graph residency → design).
Any inconsistency raises :class:`~repro.errors.SnapshotIntegrityError` — a
restore never half-loads.

Concurrency: callers must hold the same exclusivity a mutation needs (the
serving layer checkpoints under its writer gate), so a snapshot is always a
consistent cut of the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import time
import uuid
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.config import DotilConfig
from repro.core.partitions import DualStoreDesign
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import SnapshotError, SnapshotIntegrityError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Triple
from repro.relstore.sharded import ShardedRelationalStore
from repro.resilience import faults
from repro.relstore.store import RelationalStore

__all__ = [
    "FORMAT_VERSION",
    "CapturedSnapshot",
    "RestoredSnapshot",
    "SnapshotManifest",
    "SnapshotPolicy",
    "capture_snapshot",
    "commit_snapshot",
    "dataset_fingerprint",
    "list_snapshots",
    "load_snapshot",
    "read_manifest",
    "write_snapshot",
]

FORMAT_VERSION = 1

_CURRENT = "CURRENT"
_MANIFEST = "MANIFEST.json"
_DATA_FILES = ("dictionary.json", "relational.json", "graph.json", "design.json")
_EXTRAS = "extras.json"
_NAME_RE = re.compile(r"^snapshot-(\d{8})-g(\d+)$")


@dataclass(frozen=True)
class SnapshotPolicy:
    """When the serving layer should checkpoint (``ServiceConfig.snapshot``).

    Attributes
    ----------
    path:
        Snapshot root directory (created on first checkpoint).
    every_mutations:
        Checkpoint once this many generation bumps have landed since the
        last snapshot (a batched tuning epoch counts as one).  ``0`` disables
        the mutation-count trigger.
    interval_seconds:
        Also checkpoint when this much wall-clock time has passed since the
        last snapshot.  Checked at the same safe points as the mutation
        trigger (mutation and tuning-epoch boundaries, under the writer
        gate) — an idle, unmutated service does not spin a timer thread.
        ``0`` disables the interval trigger.
    keep:
        Completed snapshots retained in the root; older ones are pruned
        after each successful commit.
    log:
        Enable the write-ahead delta log (:mod:`repro.persist.wal`).  Every
        mutation then appends one cheap fsync'd delta record, and the
        ``every_mutations``/``interval_seconds`` triggers become *rotation*
        thresholds: when one fires, a full snapshot commits and the log
        rotates to a fresh segment anchored at it — so restores replay
        ``snapshot + tail`` and followers catch up from the log instead of
        reloading full snapshots.  The log keeps ``max(2, keep)`` segments,
        in lockstep with snapshot retention.
    """

    path: Union[str, Path]
    every_mutations: int = 0
    interval_seconds: float = 0.0
    keep: int = 2
    log: bool = False

    def __post_init__(self) -> None:
        if self.every_mutations < 0:
            raise SnapshotError("every_mutations must be non-negative")
        if self.interval_seconds < 0:
            raise SnapshotError("interval_seconds must be non-negative")
        if self.keep < 1:
            raise SnapshotError("keep must retain at least one snapshot")


@dataclass
class SnapshotManifest:
    """The self-describing header of one snapshot."""

    format_version: int
    name: str
    created_at: float
    generation: int
    dataset_fingerprint: str
    store_kind: str
    triple_count: int
    config: Dict[str, Any]
    file_hashes: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "format_version": self.format_version,
            "name": self.name,
            "created_at": self.created_at,
            "generation": self.generation,
            "dataset_fingerprint": self.dataset_fingerprint,
            "store_kind": self.store_kind,
            "triple_count": self.triple_count,
            "config": self.config,
            "file_hashes": self.file_hashes,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SnapshotManifest":
        try:
            return cls(
                format_version=int(payload["format_version"]),
                name=str(payload["name"]),
                created_at=float(payload["created_at"]),
                generation=int(payload["generation"]),
                dataset_fingerprint=str(payload["dataset_fingerprint"]),
                store_kind=str(payload["store_kind"]),
                triple_count=int(payload["triple_count"]),
                config=dict(payload["config"]),
                file_hashes=dict(payload["file_hashes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotIntegrityError(f"malformed snapshot manifest: {exc}") from exc


@dataclass
class RestoredSnapshot:
    """What :func:`load_snapshot` hands back."""

    dual: Any  # DualStore; typed loosely to avoid an import cycle at runtime
    manifest: SnapshotManifest
    extras: Optional[Dict[str, Any]]


# --------------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------------- #
#: backend → (content token, fingerprint).  The full fingerprint pass renders
#: and sorts every triple, which is too much to pay inside the writer gate on
#: every checkpoint — placement moves (transfer/evict/epoch) cannot change the
#: logical content, so the digest is reused until a *data* mutation bumps the
#: backend's content token.
_FINGERPRINT_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _sorted_lines_digest(lines: List[str]) -> str:
    """SHA-256 over the sorted lines — the one digest loop both fingerprint
    paths (live backend and captured payloads) share, so they cannot drift."""
    digest = hashlib.sha256()
    for line in sorted(lines):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def dataset_fingerprint(backend) -> str:
    """Order-insensitive SHA-256 of the store's logical triple content.

    Hashes the sorted N-Triples lines, so the same knowledge graph yields the
    same fingerprint no matter the shard count, row order, or insertion
    history — the manifest field that tells two snapshots of one dataset
    apart from snapshots of different data.  Cached per backend until its
    triple content changes (see :meth:`RelationalStore.content_token`).
    """
    token_method = getattr(backend, "content_token", None)
    token = token_method() if callable(token_method) else None
    if token is not None:
        cached = _FINGERPRINT_CACHE.get(backend)
        if cached is not None and cached[0] == token:
            return cached[1]
    lines: List[str] = []
    for predicate in backend.predicates():
        lines.extend(triple.n3() for triple in backend.partition(predicate))
    fingerprint = _sorted_lines_digest(lines)
    if token is not None:
        _FINGERPRINT_CACHE[backend] = (token, fingerprint)
    return fingerprint


# --------------------------------------------------------------------------- #
# Low-level durable-write helpers
# --------------------------------------------------------------------------- #
def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file(path: Path, data: bytes) -> str:
    """Write + fsync one file; returns its SHA-256 hex digest.

    The ``snapshot.write`` fault site: an installed
    :mod:`~repro.resilience.faults` plan can fail any individual snapshot
    file write before its bytes land (the commit point never moves, so a
    failed write can only ever leave an uncommitted temp directory behind).
    """
    faults.fire("snapshot.write")
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    return hashlib.sha256(data).hexdigest()


def _publish_current(root: Path, name: str) -> None:
    """Atomically point ``CURRENT`` at ``name`` — the snapshot commit point.

    Kept as a separate seam so the crash-consistency tests can inject a
    failure between the temp-dir write and the commit.  Also the
    ``snapshot.publish`` :mod:`~repro.resilience.faults` site.
    """
    faults.fire("snapshot.publish")
    pointer = root / f"{_CURRENT}.tmp-{uuid.uuid4().hex[:8]}"
    _write_file(pointer, (name + "\n").encode("utf-8"))
    os.replace(pointer, root / _CURRENT)
    _fsync_dir(root)


def _next_sequence(root: Path) -> int:
    highest = 0
    for entry in root.iterdir() if root.exists() else ():
        match = _NAME_RE.match(entry.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def list_snapshots(root: Union[str, Path]) -> List[str]:
    """Completed snapshot directory names, oldest first."""
    root = Path(root)
    if not root.exists():
        return []
    names = [entry.name for entry in root.iterdir() if _NAME_RE.match(entry.name)]
    return sorted(names)


# --------------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------------- #
def _backend_state(dual) -> Tuple[str, dict, TermDictionary]:
    backend = dual.relational
    if isinstance(backend, ShardedRelationalStore):
        return f"sharded:{backend.shard_count}", backend.snapshot_state(), backend.dictionary
    if isinstance(backend, RelationalStore):
        return "relational", backend.snapshot_state(), backend.table.dictionary
    raise SnapshotError(
        f"relational backend {type(backend).__name__} does not support snapshots "
        "(only RelationalStore and ShardedRelationalStore do)"
    )


def _graph_state(dual, dictionary: TermDictionary) -> dict:
    """Graph-store bookkeeping plus the resident replicas' exact contents.

    A resident partition is the partition *as transferred* — after inserts it
    legitimately lags the relational master copy, so the snapshot must carry
    the replica itself (as ``(subject_id, object_id)`` pairs in edge order),
    not a recipe to refeed it from the master.
    """
    state = dual.graph.snapshot_state()
    lookup = dictionary.lookup
    partition_rows: List[List[int]] = []
    for value in state["resident"]:
        predicate = IRI(value)
        flat: List[int] = []
        for subject, obj in dual.graph.graph.edges(predicate):
            subject_id, object_id = lookup(subject), lookup(obj)
            if subject_id is None or object_id is None:  # pragma: no cover - defensive
                raise SnapshotError(
                    f"graph partition {value!r} holds a term missing from the shared "
                    "dictionary; only partitions transferred from the master copy "
                    "can be snapshotted"
                )
            flat.extend((subject_id, object_id))
        partition_rows.append(flat)
    state["partition_rows"] = partition_rows
    return state


def _sweep_stale_tmp(root: Path) -> None:
    """Drop temp artifacts a crashed writer left behind.

    A hard kill between the temp-dir write and the rename leaks a full-size
    ``.tmp-*`` directory (and possibly a ``CURRENT.tmp-*`` pointer file) that
    retention would otherwise never touch.  Safe under the single-writer
    contract: nothing else can be mid-write while we run.
    """
    for entry in root.glob(".tmp-*"):
        _remove_tree(entry)
    for entry in root.glob(f"{_CURRENT}.tmp-*"):
        entry.unlink()


def _committed_sequence(root: Path) -> int:
    """Sequence number of the committed snapshot, or ``-1`` when none."""
    pointer = root / _CURRENT
    if pointer.exists():
        try:
            match = _NAME_RE.match(pointer.read_text(encoding="utf-8").strip())
        except OSError:
            match = None
        if match:
            return int(match.group(1))
    return -1


def _sweep_uncommitted(root: Path) -> None:
    """Drop ``snapshot-*`` directories that were renamed but never committed.

    A hard kill between the directory rename and the ``CURRENT`` flip leaves
    a full-size snapshot directory that never became current.  Sequences are
    monotonic and ``CURRENT`` always names the highest *committed* one, so
    anything above it is uncommitted garbage — and must be swept **before**
    the next commit takes a higher sequence, or retention would mistake the
    orphan for a committed snapshot and prune a real one in its place.
    """
    committed = _committed_sequence(root)
    for entry in root.iterdir():
        match = _NAME_RE.match(entry.name)
        if match and int(match.group(1)) > committed:
            _remove_tree(entry)


@dataclass
class CapturedSnapshot:
    """An in-memory consistent cut of a dual store, ready to be committed.

    :func:`capture_snapshot` builds it under the caller's mutation
    exclusivity (fast — pure object traversal, no hashing, no I/O);
    :func:`commit_snapshot` serializes, fingerprints, and fsyncs it to disk
    *without* needing that exclusivity, so the serving layer can release its
    writer gate before paying the disk."""

    payloads: Dict[str, Any]
    generation: int
    store_kind: str
    triple_count: int
    config: Dict[str, Any]
    #: ``None`` when the fingerprint cache missed at capture time; the commit
    #: half then derives it from the captured payloads (outside the gate) and
    #: back-fills the cache through ``backend_ref`` if the content is unchanged.
    dataset_fingerprint: Optional[str] = None
    content_token: Optional[int] = None
    backend_ref: Optional[Callable[[], Any]] = None


def capture_snapshot(dual, extras: Optional[Dict[str, Any]] = None) -> CapturedSnapshot:
    """Capture the store's state in memory (the consistency-critical half).

    The caller must guarantee mutation exclusivity for the duration (the
    serving layer holds its writer gate); the returned capture no longer
    aliases any mutable store internals, so committing it later — after the
    gate is released — still writes exactly this cut.  Deliberately does no
    hashing: the dataset fingerprint is either taken from the cache or left
    for :func:`commit_snapshot` to derive from the captured payloads, so a
    data mutation never makes the gated section pay a full-dataset pass."""
    if dual.design is None:
        raise SnapshotError("the dual store has no data; load() before snapshotting")
    store_kind, relational_state, dictionary = _backend_state(dual)
    design = dual.design
    payloads: Dict[str, Any] = {
        "dictionary.json": {"terms": dictionary.to_payload()},
        "relational.json": relational_state,
        "graph.json": _graph_state(dual, dictionary),
        "design.json": {
            "in_graph_store": sorted(p.value for p in design.in_graph_store),
            "storage_budget": design.storage_budget,
            "explicit_budget": dual._explicit_budget,
            "transfer_log": [[kind, predicate.value] for kind, predicate in dual.transfer_log],
        },
    }
    if extras is not None:
        payloads[_EXTRAS] = extras
    backend = dual.relational
    token_method = getattr(backend, "content_token", None)
    token = token_method() if callable(token_method) else None
    fingerprint: Optional[str] = None
    if token is not None:
        cached = _FINGERPRINT_CACHE.get(backend)
        if cached is not None and cached[0] == token:
            fingerprint = cached[1]
    return CapturedSnapshot(
        payloads=payloads,
        generation=dual.generation,
        store_kind=store_kind,
        triple_count=len(dual.relational),
        config={
            "r_bg": dual.config.r_bg,
            "prob": dual.config.prob,
            "alpha": dual.config.alpha,
            "gamma": dual.config.gamma,
            "lam": dual.config.lam,
            "seed": dual.config.seed,
        },
        dataset_fingerprint=fingerprint,
        content_token=token,
        backend_ref=weakref.ref(backend) if token is not None else None,
    )


def _fingerprint_from_payloads(payloads: Dict[str, Any]) -> str:
    """The dataset fingerprint derived from a capture's own payloads.

    Produces exactly what :func:`dataset_fingerprint` computes on the live
    backend — the same ``Triple.n3()`` lines through the same
    :func:`_sorted_lines_digest` — without touching the store; this is how
    the commit half pays the hashing pass outside the caller's exclusivity
    window."""
    dictionary = TermDictionary.from_payload(payloads["dictionary.json"]["terms"])
    state = payloads["relational.json"]
    row_lists = state["shard_rows"] if state["kind"] == "sharded" else [state["rows"]]
    decode = dictionary.decode
    lines: List[str] = []
    for flat in row_lists:
        for offset in range(0, len(flat), 3):
            lines.append(
                Triple(
                    decode(flat[offset]),
                    decode(flat[offset + 1]),  # type: ignore[arg-type]
                    decode(flat[offset + 2]),
                ).n3()
            )
    return _sorted_lines_digest(lines)


def commit_snapshot(
    captured: CapturedSnapshot, root: Union[str, Path], keep: int = 2
) -> SnapshotManifest:
    """Durably write a captured cut under ``root``; returns the manifest.

    All the serialization, hashing, and fsync cost lives here, outside any
    store exclusivity.  Concurrent commits to one root must still be
    serialized by the caller (the serving layer holds a dedicated I/O lock).

    Commits are **monotonic by store generation**: if the committed snapshot
    already carries a newer generation than the capture (two captures raced
    and the younger one committed first), the stale capture is *not*
    written — rolling ``CURRENT`` back would silently lose the newer
    mutations on restore — and the already-committed newer manifest is
    returned instead.
    """
    if keep < 1:
        raise SnapshotError("keep must retain at least one snapshot")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    try:
        existing = read_manifest(root)
    except SnapshotError:
        # No committed snapshot yet, or the committed one is corrupt — in
        # either case writing a fresh snapshot is the right move.
        existing = None
    if existing is not None and existing.generation > captured.generation:
        return existing
    _sweep_stale_tmp(root)
    _sweep_uncommitted(root)

    fingerprint = captured.dataset_fingerprint
    if fingerprint is None:
        fingerprint = _fingerprint_from_payloads(captured.payloads)
        backend = captured.backend_ref() if captured.backend_ref is not None else None
        if backend is not None and backend.content_token() == captured.content_token:
            _FINGERPRINT_CACHE[backend] = (captured.content_token, fingerprint)

    payloads = captured.payloads
    name = f"snapshot-{_next_sequence(root):08d}-g{captured.generation}"
    manifest = SnapshotManifest(
        format_version=FORMAT_VERSION,
        name=name,
        created_at=time.time(),
        generation=captured.generation,
        dataset_fingerprint=fingerprint,
        store_kind=captured.store_kind,
        triple_count=captured.triple_count,
        config=dict(captured.config),
    )

    tmp = root / f".tmp-{uuid.uuid4().hex[:8]}"
    tmp.mkdir()
    try:
        for filename, payload in payloads.items():
            data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            manifest.file_hashes[filename] = _write_file(tmp / filename, data)
        _write_file(tmp / _MANIFEST, json.dumps(manifest.to_json(), indent=2).encode("utf-8"))
        _fsync_dir(tmp)
        os.rename(tmp, root / name)
        _fsync_dir(root)
        _publish_current(root, name)
    except BaseException:
        # Best-effort cleanup of the uncommitted attempt; the previous
        # snapshot (if any) is untouched because CURRENT was never flipped.
        # The attempt may have crashed after the directory rename but before
        # the commit — remove the renamed directory too, but only while
        # CURRENT does not name it (if the flip itself half-succeeded, the
        # directory *is* the committed snapshot and must survive).
        _remove_tree(tmp)
        pointer = root / _CURRENT
        committed: Optional[str] = None
        if pointer.exists():
            try:
                committed = pointer.read_text(encoding="utf-8").strip()
            except OSError:  # pragma: no cover - unreadable pointer
                pass
        if committed != name:
            _remove_tree(root / name)
        raise
    _prune(root, keep=keep, current=name)
    return manifest


def write_snapshot(
    dual,
    root: Union[str, Path],
    extras: Optional[Dict[str, Any]] = None,
    keep: int = 2,
) -> SnapshotManifest:
    """Capture and commit one atomic snapshot of ``dual`` under ``root``.

    The one-call convenience path (used by ``DualStore.snapshot``): the
    caller must hold mutation exclusivity across the whole call.  The
    serving layer uses the split :func:`capture_snapshot` /
    :func:`commit_snapshot` halves instead, so only the in-memory capture
    runs under its writer gate."""
    return commit_snapshot(capture_snapshot(dual, extras=extras), root, keep=keep)


def _remove_tree(path: Path) -> None:
    """Best-effort recursive removal (prune, tmp sweep, abort cleanup).

    ``ignore_errors``: every caller runs *after* the commit point (or on an
    abort path), where a cleanup hiccup must not turn an already-successful
    snapshot into a reported failure."""
    shutil.rmtree(path, ignore_errors=True)


def _prune(root: Path, keep: int, current: str) -> None:
    names = list_snapshots(root)
    if current in names:
        # Never prune the committed snapshot, whatever its sort position.
        names.remove(current)
        names.append(current)
    for name in names[:-keep] if len(names) > keep else []:
        _remove_tree(root / name)


# --------------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------------- #
def _current_snapshot_dir(root: Path) -> Path:
    if not root.exists():
        raise SnapshotError(f"no snapshot root at {root}")
    pointer = root / _CURRENT
    if not pointer.exists():
        raise SnapshotError(f"no committed snapshot under {root} (CURRENT missing)")
    name = pointer.read_text(encoding="utf-8").strip()
    snapshot_dir = root / name
    if not name or not snapshot_dir.is_dir():
        raise SnapshotIntegrityError(
            f"CURRENT points at {name!r}, which is not a snapshot directory under {root}"
        )
    return snapshot_dir


def _read_json(path: Path) -> Any:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"snapshot file {path.name} is missing") from None
    except (OSError, ValueError) as exc:
        raise SnapshotIntegrityError(f"snapshot file {path.name} is unreadable: {exc}") from exc


def _manifest_from_dir(snapshot_dir: Path) -> SnapshotManifest:
    manifest = SnapshotManifest.from_json(_read_json(snapshot_dir / _MANIFEST))
    if manifest.format_version != FORMAT_VERSION:
        raise SnapshotIntegrityError(
            f"snapshot format v{manifest.format_version} is not supported "
            f"(this build reads v{FORMAT_VERSION})"
        )
    return manifest


def read_manifest(root: Union[str, Path]) -> SnapshotManifest:
    """The committed snapshot's manifest (no data files are read)."""
    return _manifest_from_dir(_current_snapshot_dir(Path(root)))


def _verified_payload(snapshot_dir: Path, manifest: SnapshotManifest, filename: str) -> Any:
    expected = manifest.file_hashes.get(filename)
    if expected is None:
        raise SnapshotIntegrityError(f"manifest lists no hash for {filename}")
    try:
        data = (snapshot_dir / filename).read_bytes()
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"snapshot file {filename} is missing") from None
    actual = hashlib.sha256(data).hexdigest()
    if actual != expected:
        raise SnapshotIntegrityError(
            f"snapshot file {filename} is corrupt (sha256 {actual[:12]}… != manifest {expected[:12]}…)"
        )
    try:
        return json.loads(data.decode("utf-8"))
    except ValueError as exc:
        raise SnapshotIntegrityError(f"snapshot file {filename} is not valid JSON: {exc}") from exc


def load_snapshot(
    root: Union[str, Path],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    throttle: Optional[ResourceThrottle] = None,
) -> RestoredSnapshot:
    """Rebuild a :class:`~repro.core.dualstore.DualStore` from the committed
    snapshot under ``root``.

    Every data file is hash-verified against the manifest before anything is
    constructed: either the whole store restores, or a
    :class:`~repro.errors.SnapshotIntegrityError` surfaces and no partially
    initialised object escapes.
    """
    from repro.core.dualstore import DualStore  # local import: persist ← core cycle

    root = Path(root)
    # Resolve CURRENT exactly once: re-reading it for the manifest would open
    # a window where a concurrent commit flips the pointer between the two
    # reads and the manifest hashes get checked against another snapshot's
    # files.
    snapshot_dir = _current_snapshot_dir(root)
    manifest = _manifest_from_dir(snapshot_dir)
    payloads = {name: _verified_payload(snapshot_dir, manifest, name) for name in _DATA_FILES}
    extras: Optional[Dict[str, Any]] = None
    if _EXTRAS in manifest.file_hashes:
        extras = _verified_payload(snapshot_dir, manifest, _EXTRAS)

    dictionary = TermDictionary.from_payload(payloads["dictionary.json"]["terms"])
    relational_state = payloads["relational.json"]
    kind = relational_state.get("kind")
    if kind == "sharded":
        backend = ShardedRelationalStore.restore_state(relational_state, dictionary, cost_model)
    elif kind == "relational":
        backend = RelationalStore.restore_state(relational_state, dictionary, cost_model)
    else:
        raise SnapshotIntegrityError(f"unknown relational backend kind {kind!r} in snapshot")

    design_state = payloads["design.json"]
    config = DotilConfig(**manifest.config)
    dual = DualStore(
        config=config,
        cost_model=cost_model,
        throttle=throttle,
        storage_budget=design_state.get("explicit_budget"),
        relational_store=backend,
    )
    graph_state = payloads["graph.json"]
    replica_rows: Dict[str, List[int]] = dict(
        zip(graph_state["resident"], graph_state["partition_rows"])
    )

    def replica_source(predicate: IRI) -> List[Triple]:
        flat = replica_rows[predicate.value]
        decode = dictionary.decode
        return [
            Triple(decode(flat[offset]), predicate, decode(flat[offset + 1]))
            for offset in range(0, len(flat), 2)
        ]

    dual.graph.restore_state(graph_state, replica_source)
    dual.design = DualStoreDesign.from_sizes(
        backend.partition_sizes(),
        storage_budget=int(design_state["storage_budget"]),
        in_graph_store=[IRI(value) for value in design_state["in_graph_store"]],
    )
    dual.transfer_log = [(kind, IRI(value)) for kind, value in design_state["transfer_log"]]
    dual.generation = manifest.generation
    # Seed the fingerprint cache with the manifest's value: the restored
    # content *is* what that fingerprint hashes, so the first checkpoint
    # after a warm restart (placement-only or not-yet-mutated) skips the
    # full-dataset pass.
    _FINGERPRINT_CACHE[backend] = (backend.content_token(), manifest.dataset_fingerprint)
    return RestoredSnapshot(dual=dual, manifest=manifest, extras=extras)
