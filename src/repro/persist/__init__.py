"""Durable snapshots and warm restarts for the dual-store structure.

The paper's Section 6 experiments price the *cold start*: re-ingesting the
dataset from N-Triples and re-learning the physical design from an untrained
tuner.  A production serving system cannot pay that on every process restart,
so this package persists the entire tuned state of a
:class:`~repro.core.dualstore.DualStore` — term dictionary, relational triple
tables (unsharded or per-shard, preserving shard placement), graph-store
residency and budget accounting, the
:class:`~repro.core.partitions.DualStoreDesign`, table statistics, and
(through the serving layer) the adaptive tuner's window and Q-state — and
restores it with full fidelity: the restored store answers every query with
byte-identical bindings and bit-identical work counters.

Snapshots are *versioned* and written *atomically*: each snapshot is a fresh
directory populated and fsynced before being renamed into place, and a
``CURRENT`` pointer file is atomically replaced as the single commit point.
A crash at any moment leaves either the previous complete snapshot or a
loud :class:`~repro.errors.SnapshotError` — never a half-loaded store.
See ``docs/architecture.md`` §7 for the format.

Snapshots are also the system's **replication primitive**: commits are
generation-monotonic, so read-only follower processes can track a root's
``CURRENT`` pointer with a :class:`SnapshotWatcher` and hot-reload each new
generation the leader publishes — the multi-process serving mode of
:mod:`repro.endpoint.worker` (``docs/architecture.md`` §8).

Between snapshots, the **write-ahead delta log** (:mod:`repro.persist.wal`,
``docs/architecture.md`` §9) makes durability and replication incremental:
every mutation batch appends one checksummed, fsync'd record, each snapshot
commit rotates the log, ``snapshot + replay(tail)`` restores byte-identically
(:func:`restore_with_log`), and followers catch up by tailing committed
records (:class:`WalTailer`) instead of reloading full snapshots.
"""

from repro.persist.snapshot import (
    FORMAT_VERSION,
    CapturedSnapshot,
    RestoredSnapshot,
    SnapshotManifest,
    SnapshotPolicy,
    capture_snapshot,
    commit_snapshot,
    dataset_fingerprint,
    list_snapshots,
    load_snapshot,
    read_manifest,
    write_snapshot,
)
from repro.persist.wal import (
    WAL_FORMAT_VERSION,
    DeltaLog,
    WalRecord,
    WalSegment,
    WalTailer,
    apply_record,
    collect_tail,
    list_segments,
    restore_with_log,
)
from repro.persist.watch import SnapshotWatcher

__all__ = [
    "SnapshotWatcher",
    "WAL_FORMAT_VERSION",
    "DeltaLog",
    "WalRecord",
    "WalSegment",
    "WalTailer",
    "apply_record",
    "collect_tail",
    "list_segments",
    "restore_with_log",
    "FORMAT_VERSION",
    "CapturedSnapshot",
    "RestoredSnapshot",
    "SnapshotManifest",
    "SnapshotPolicy",
    "capture_snapshot",
    "commit_snapshot",
    "dataset_fingerprint",
    "list_snapshots",
    "load_snapshot",
    "read_manifest",
    "write_snapshot",
]
