"""repro — reproduction of "A Dual-Store Structure for Knowledge Graphs".

The package implements the paper's dual-store structure (a relational master
store plus a native-graph accelerator), its reinforcement-learning physical
design tuner DOTIL, the query processor that spans both stores, and every
substrate the evaluation needs: an RDF data model, a SPARQL subset, a
work-accounted relational engine, an adjacency-list graph engine, a
deterministic cost model, and synthetic YAGO/WatDiv/Bio2RDF-like datasets and
workloads.

Quickstart
----------
>>> from repro import DualStore, Dotil, generate_yago, yago_workload
>>> dataset = generate_yago(target_triples=2000)
>>> dual = DualStore().load(dataset.triples)
>>> tuner = Dotil(dual)
>>> workload = yago_workload(dataset)
>>> batch = workload.batches("ordered")[0]
>>> records = [dual.run_query(q) for q in batch]
"""

from repro.core import (
    DEFAULT_CONFIG,
    PAPER_TUNED_CONFIG,
    BaseTuner,
    BatchResult,
    ComplexSubquery,
    ComplexSubqueryIdentifier,
    Dotil,
    DotilConfig,
    DualStore,
    DualStoreDesign,
    IdealTuner,
    LRUTuner,
    OneOffTuner,
    QueryProcessor,
    QueryRecord,
    RDBGDB,
    RDBOnly,
    RDBViews,
    StaticTuner,
    StoreVariant,
    TuningReport,
    WorkloadResult,
    improvement_percent,
    run_workload,
    run_workload_repeated,
)
from repro.cost import CostModel, DEFAULT_COST_MODEL, ResourceThrottle, SimulatedClock, WorkCounters
from repro.graphstore import GraphStore, PropertyGraph
from repro.rdf import IRI, Literal, TripleSet, Triple, Variable
from repro.relstore import RelationalStore, SQLiteBackend
from repro.sparql import SelectQuery, TriplePattern, parse_query
from repro.workload import (
    Workload,
    bio2rdf_workload,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    watdiv_workload,
    yago_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DualStore",
    "Dotil",
    "DotilConfig",
    "DEFAULT_CONFIG",
    "PAPER_TUNED_CONFIG",
    "ComplexSubquery",
    "ComplexSubqueryIdentifier",
    "DualStoreDesign",
    "QueryProcessor",
    "BaseTuner",
    "OneOffTuner",
    "LRUTuner",
    "IdealTuner",
    "StaticTuner",
    "TuningReport",
    "StoreVariant",
    "RDBOnly",
    "RDBViews",
    "RDBGDB",
    "QueryRecord",
    "BatchResult",
    "WorkloadResult",
    "improvement_percent",
    "run_workload",
    "run_workload_repeated",
    # stores
    "RelationalStore",
    "SQLiteBackend",
    "GraphStore",
    "PropertyGraph",
    # cost
    "CostModel",
    "DEFAULT_COST_MODEL",
    "WorkCounters",
    "SimulatedClock",
    "ResourceThrottle",
    # rdf / sparql
    "IRI",
    "Literal",
    "Triple",
    "TripleSet",
    "Variable",
    "SelectQuery",
    "TriplePattern",
    "parse_query",
    # workloads
    "Workload",
    "generate_yago",
    "yago_workload",
    "generate_watdiv",
    "watdiv_workload",
    "generate_bio2rdf",
    "bio2rdf_workload",
]
