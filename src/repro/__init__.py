"""repro — reproduction of "A Dual-Store Structure for Knowledge Graphs".

The package implements the paper's dual-store structure (a relational master
store plus a native-graph accelerator), its reinforcement-learning physical
design tuner DOTIL, the query processor that spans both stores, and every
substrate the evaluation needs: an RDF data model, a SPARQL subset, a
work-accounted relational engine, an adjacency-list graph engine, a
deterministic cost model, and synthetic YAGO/WatDiv/Bio2RDF-like datasets and
workloads.  On top of that sits :mod:`repro.serve`: a caching, batching
:class:`~repro.serve.QueryService` for serving whole workloads.

Quickstart
----------
Build a dual store, front it with a :class:`QueryService`, and serve a
workload batch; serving the same batch again is answered from the result
cache (one :class:`QueryRecord` per submitted query either way):

>>> from repro import DualStore, QueryService, generate_yago, yago_workload
>>> dataset = generate_yago(target_triples=2000)
>>> dual = DualStore().load(dataset.triples)
>>> workload = yago_workload(dataset)
>>> batch = workload.batches("ordered")[0]
>>> service = QueryService(dual)
>>> first = service.run_batch(batch)
>>> len(first.records) == len(batch)
True
>>> second = service.run_batch(batch)
>>> second.cache_hits == len(batch)
True
>>> second.tti == first.tti  # cached records keep the modelled seconds
True

Mutating the store invalidates cached results, so a hit can never be stale:

>>> service.insert([]) >= 0.0
True
>>> third = service.run_batch(batch)
>>> third.cache_hits == 0
True
>>> service.close()  # detaches the store hook and stops the worker pool

The uncached path of the paper's experiments is ``dual.run_query``; DOTIL
(:class:`Dotil`) tunes the physical design underneath either path.
"""

from repro.analysis import LockGraph, LockOrderError
from repro.core import (
    DEFAULT_CONFIG,
    PAPER_TUNED_CONFIG,
    BaseTuner,
    BatchResult,
    ComplexSubquery,
    ComplexSubqueryIdentifier,
    Dotil,
    DotilConfig,
    DualStore,
    DualStoreDesign,
    IdealTuner,
    LRUTuner,
    MoveReceipt,
    OneOffTuner,
    QueryProcessor,
    QueryRecord,
    RDBGDB,
    RDBOnly,
    RDBViews,
    StaticTuner,
    StoreVariant,
    TuningReport,
    WorkloadResult,
    improvement_percent,
    run_workload,
    run_workload_repeated,
)
from repro.cost import CostModel, DEFAULT_COST_MODEL, ResourceThrottle, SimulatedClock, WorkCounters
from repro.endpoint import (
    EndpointConfig,
    EndpointPool,
    SparqlEndpoint,
    WorkerSupervisor,
    sparql_request,
)
from repro.graphstore import GraphStore, PropertyGraph
from repro.persist import (
    DeltaLog,
    SnapshotManifest,
    SnapshotPolicy,
    SnapshotWatcher,
    WalTailer,
    load_snapshot,
    read_manifest,
    restore_with_log,
)
from repro.rdf import IRI, Literal, TripleSet, Triple, Variable
from repro.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultSpec,
    FleetMonitor,
    KillSpec,
    MonitorPolicy,
    deadline_scope,
)
from repro.relstore import (
    RelationalBackend,
    RelationalStore,
    ShardedRelationalStore,
    ShardingConfig,
    SQLiteBackend,
)
from repro.serve import (
    AdaptiveConfig,
    QueryService,
    ServedBatch,
    ServiceConfig,
    ServiceMetrics,
    TuningDaemon,
    WorkloadWindow,
)
from repro.sparql import SelectQuery, TriplePattern, canonical_query_text, parse_query
from repro.workload import (
    Workload,
    bio2rdf_workload,
    generate_bio2rdf,
    generate_watdiv,
    generate_yago,
    watdiv_workload,
    yago_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "LockGraph",
    "LockOrderError",
    # core
    "DualStore",
    "MoveReceipt",
    "Dotil",
    "DotilConfig",
    "DEFAULT_CONFIG",
    "PAPER_TUNED_CONFIG",
    "ComplexSubquery",
    "ComplexSubqueryIdentifier",
    "DualStoreDesign",
    "QueryProcessor",
    "BaseTuner",
    "OneOffTuner",
    "LRUTuner",
    "IdealTuner",
    "StaticTuner",
    "TuningReport",
    "StoreVariant",
    "RDBOnly",
    "RDBViews",
    "RDBGDB",
    "QueryRecord",
    "BatchResult",
    "WorkloadResult",
    "improvement_percent",
    "run_workload",
    "run_workload_repeated",
    # stores
    "RelationalBackend",
    "RelationalStore",
    "ShardedRelationalStore",
    "ShardingConfig",
    "SQLiteBackend",
    "GraphStore",
    "PropertyGraph",
    # cost
    "CostModel",
    "DEFAULT_COST_MODEL",
    "WorkCounters",
    "SimulatedClock",
    "ResourceThrottle",
    # rdf / sparql
    "IRI",
    "Literal",
    "Triple",
    "TripleSet",
    "Variable",
    "SelectQuery",
    "TriplePattern",
    "parse_query",
    "canonical_query_text",
    # serving layer
    "QueryService",
    "ServiceConfig",
    "ServedBatch",
    "ServiceMetrics",
    "AdaptiveConfig",
    "TuningDaemon",
    "WorkloadWindow",
    # persistence
    "DeltaLog",
    "SnapshotManifest",
    "SnapshotPolicy",
    "SnapshotWatcher",
    "WalTailer",
    "load_snapshot",
    "read_manifest",
    "restore_with_log",
    # endpoint (network-facing serving)
    "EndpointConfig",
    "EndpointPool",
    "SparqlEndpoint",
    "WorkerSupervisor",
    "sparql_request",
    # resilience (deadlines, breakers, supervision, fault injection)
    "BreakerPolicy",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultSpec",
    "FleetMonitor",
    "KillSpec",
    "MonitorPolicy",
    "deadline_scope",
    # workloads
    "Workload",
    "generate_yago",
    "yago_workload",
    "generate_watdiv",
    "watdiv_workload",
    "generate_bio2rdf",
    "bio2rdf_workload",
]
