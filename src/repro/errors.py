"""Exception hierarchy shared by every subsystem in :mod:`repro`.

Each subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures with a single ``except`` clause while still being able to
distinguish parse errors, storage errors, and tuning errors when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TermError(ReproError):
    """An RDF term was constructed from an invalid value."""


class ParseError(ReproError):
    """A SPARQL query or an N-Triples document could not be parsed.

    Attributes
    ----------
    message:
        Human readable description of the failure.
    line, column:
        Best-effort location of the offending token (1-based).  ``None`` when
        the location is unknown.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class StorageError(ReproError):
    """A store (relational or graph) rejected an operation."""


class StorageBudgetExceeded(StorageError):
    """Loading a partition would exceed the graph store's storage budget."""


class UnknownPartitionError(StorageError):
    """A triple partition (predicate) was referenced but does not exist."""


class SnapshotError(StorageError):
    """A durable snapshot could not be written, found, or restored."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot exists but fails validation (bad version, hash mismatch,
    truncated file).  Restoring must fail loudly rather than half-load."""


class WalError(SnapshotError):
    """The write-ahead delta log could not be written, read, or replayed.

    A subclass of :class:`SnapshotError` because the log is part of the same
    durability subsystem: callers that already fall back on snapshot failures
    (the follower's full-restore path) handle log failures identically."""


class WalGapError(WalError):
    """The delta log no longer covers the generation a reader needs — it was
    rotated/pruned past the reader's cursor.  The reader must fall back to a
    full snapshot restore; the log alone cannot take it forward."""


class WalReplayError(WalError):
    """Replaying a delta record diverged from the generation it promised, or
    carried an operation this build cannot apply.  The replayed store must be
    discarded, never served."""


class QueryExecutionError(ReproError):
    """A query failed during execution in either store."""


class WorkBudgetExceeded(QueryExecutionError):
    """A budgeted (counterfactual) execution hit its work-unit cap.

    The partially accumulated cost is carried on the exception so the caller
    can still use it, mirroring how the paper stops the relational thread at
    ``lambda * c1`` and takes the capped cost as the observed cost.
    """

    def __init__(self, message: str, partial_work: float):
        super().__init__(message)
        self.partial_work = float(partial_work)


class QueryTimeoutError(QueryExecutionError):
    """A served query exceeded its wall-clock deadline and was cancelled
    cooperatively (:mod:`repro.resilience.deadline`).

    Carries the budget, the elapsed time at the probe that tripped, and the
    partial work counters accumulated so far, so the HTTP layer can render a
    machine-readable 504 with exact partial-work accounting.
    """

    def __init__(
        self,
        message: str,
        *,
        budget_seconds: float,
        elapsed_seconds: float,
        partial_work: "dict | None" = None,
    ):
        super().__init__(message)
        self.budget_seconds = float(budget_seconds)
        self.elapsed_seconds = float(elapsed_seconds)
        self.partial_work = dict(partial_work) if partial_work else {}


class TuningError(ReproError):
    """The dual-store tuner was configured or invoked incorrectly."""


class ConfigError(ReproError):
    """A configuration value is outside its valid range."""


class WorkloadError(ReproError):
    """A workload or dataset generator was given inconsistent parameters."""
