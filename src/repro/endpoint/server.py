"""The network-facing SPARQL endpoint: stdlib HTTP over a :class:`QueryService`.

``ROADMAP``'s "millions of users" item needs a wire; this module is that wire,
built entirely on :mod:`http.server` so it adds no dependencies:

* ``GET /sparql`` and ``POST /sparql`` speak the SPARQL 1.1 protocol
  (:mod:`repro.endpoint.protocol`) and answer in
  ``application/sparql-results+json``;
* ``GET /healthz`` is a cheap liveness/role probe;
* ``GET /metrics`` returns the full serving-stack metrics snapshot —
  :class:`~repro.serve.metrics.ServiceMetrics` plus the endpoint's own
  admission accounting — as JSON.

**Admission control.**  Every query request passes the
:class:`AdmissionGate`: at most ``max_inflight`` requests execute at once,
at most ``queue_depth`` more may wait (up to ``admission_timeout_seconds``)
for an execution slot, and everything beyond that is *shed* immediately with
``503`` + ``Retry-After`` and a machine-readable error body.  The gate keeps
exact cumulative counts; they are mirrored into
:attr:`ServiceCounters.endpoint_requests` / :attr:`ServiceCounters.shed_load`
via :meth:`QueryService.record_endpoint`, so one ``/metrics`` snapshot covers
the whole stack and the fault-injection suite can assert shed accounting
exactly.

**Generation stamping.**  Every query response carries the serving store's
generation in the :data:`GENERATION_HEADER` header.  In the multi-process
mode (:mod:`repro.endpoint.worker`) a worker swaps in a whole new
``QueryService`` when the leader commits a new snapshot generation, so the
stamp makes replication staleness *observable*: a sequential client sees a
monotonically non-decreasing generation, and every response body is
consistent with the stamped generation (never a torn store).

The server is deliberately swap-aware rather than restart-based:
:meth:`SparqlEndpoint.swap_service` atomically replaces the service behind
the wire while in-flight requests finish against the service they started
with.  The admission gate and its counters survive the swap — admission is a
property of the endpoint, not of any one store generation.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import urlsplit

from repro.endpoint.protocol import (
    ERROR_JSON,
    RESULTS_JSON,
    ProtocolError,
    SparqlRequest,
    encode_error,
    encode_results,
    negotiate_accept,
    request_from_get,
    request_from_post,
)
from repro.errors import ParseError, QueryTimeoutError, ReproError
from repro.serve.service import QueryService

__all__ = ["EndpointConfig", "AdmissionGate", "SparqlEndpoint", "GENERATION_HEADER"]

#: Response header carrying the store generation that answered the request.
GENERATION_HEADER = "X-Repro-Generation"
#: Response header naming the route (relational/graph/split) the query took.
ROUTE_HEADER = "X-Repro-Route"


@dataclass(frozen=True)
class EndpointConfig:
    """Tunables of one HTTP endpoint.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (the resolved port
        is on :attr:`SparqlEndpoint.port`) — what the test fixtures use.
    max_inflight:
        Query requests executing concurrently; more than this wait.
    queue_depth:
        Requests allowed to *wait* for an execution slot on top of the
        ``max_inflight`` executing ones.  The bounded request queue of the
        admission-control design: total admitted-or-waiting occupancy is
        ``max_inflight + queue_depth`` and everything beyond is shed.
    admission_timeout_seconds:
        How long a queued request may wait for an execution slot before it
        is shed with 503 (``0`` sheds immediately once all slots are busy).
    retry_after_seconds:
        Base value of the ``Retry-After`` header on shed responses.  The
        actual hint scales with queue occupancy at shed time — see
        :meth:`SparqlEndpoint.retry_after_hint`.
    role:
        Free-form label surfaced by ``/healthz`` and ``/metrics``
        (``standalone`` | ``leader`` | ``worker``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    queue_depth: int = 16
    admission_timeout_seconds: float = 2.0
    retry_after_seconds: int = 1
    role: str = "standalone"

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        if self.admission_timeout_seconds < 0:
            raise ValueError("admission_timeout_seconds must be non-negative")


class AdmissionGate:
    """Bounded-queue admission control with exact cumulative accounting.

    Two limits, one invariant: at most ``max_inflight`` holders execute at
    once, and at most ``max_inflight + queue_depth`` requests occupy the gate
    (executing + waiting) at any instant.  A request beyond the occupancy cap
    — or one that waits longer than the admission timeout for an execution
    slot — is **shed**, and every shed increments :attr:`shed` exactly once,
    which is what lets the fault suite assert ``shed_load`` to the request.
    """

    def __init__(self, max_inflight: int, queue_depth: int, timeout_seconds: float):
        self._slots = threading.Semaphore(max_inflight)
        self._capacity = max_inflight + queue_depth
        self._timeout = timeout_seconds
        self._lock = threading.Lock()
        self._occupancy = 0
        #: Requests that acquired an execution slot (cumulative).
        self.admitted = 0
        #: Requests shed with 503 (cumulative; queue-full and wait-timeout).
        self.shed = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Requests currently executing or waiting (≤ :attr:`capacity`)."""
        with self._lock:
            return self._occupancy

    def try_admit(self) -> bool:
        """Enter the gate; ``False`` means the request must be shed."""
        with self._lock:
            if self._occupancy >= self._capacity:
                self.shed += 1
                return False
            self._occupancy += 1
        if not self._slots.acquire(timeout=self._timeout):
            with self._lock:
                self._occupancy -= 1
                self.shed += 1
            return False
        with self._lock:
            self.admitted += 1
        return True

    def release(self) -> None:
        """Leave the gate (must follow a successful :meth:`try_admit`)."""
        self._slots.release()
        with self._lock:
            self._occupancy -= 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "admitted": self.admitted,
                "shed_load": self.shed,
                "occupancy": self._occupancy,
                "capacity": self._capacity,
            }


class _EndpointHTTPServer(ThreadingHTTPServer):
    # One thread per connection; daemonic so a wedged handler can never block
    # process exit, and no join-on-close so stop() stays prompt while shed
    # responses drain.
    daemon_threads = True
    block_on_close = False
    #: Back-pointer installed by SparqlEndpoint before serving starts.
    endpoint: "SparqlEndpoint"


class _Handler(BaseHTTPRequestHandler):
    # Keep HTTP/1.1 keep-alive off the table: every request/response pair is
    # self-contained, which keeps the kill-a-worker fault mode crisp (a dead
    # worker fails the one request on the wire, not a pipelined backlog).
    protocol_version = "HTTP/1.0"
    server: _EndpointHTTPServer

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        """Silence the default stderr access log (the service has metrics)."""

    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[dict] = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, str(value))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing left to tell it

    def _respond_error(
        self, status: int, code: str, message: str, extra_headers: Optional[dict] = None, **extra
    ) -> None:
        self._respond(status, encode_error(code, message, **extra), ERROR_JSON, extra_headers)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        split = urlsplit(self.path)
        if split.path == "/sparql":
            self._handle_sparql(lambda: request_from_get(split.query))
        elif split.path == "/healthz":
            self._handle_healthz()
        elif split.path == "/metrics":
            self._handle_metrics()
        else:
            self._respond_error(404, "not-found", f"no resource at {split.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        split = urlsplit(self.path)
        if split.path != "/sparql":
            if split.path in ("/healthz", "/metrics"):
                self._respond_error(
                    405, "method-not-allowed", f"{split.path} only supports GET", {"Allow": "GET"}
                )
            else:
                self._respond_error(404, "not-found", f"no resource at {split.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            self._respond_error(400, "bad-content-length", "Content-Length is not an integer")
            return
        body = self.rfile.read(length) if length > 0 else b""
        self._handle_sparql(
            lambda: request_from_post(self.headers.get("Content-Type"), body, split.query)
        )

    def _method_not_allowed(self) -> None:
        self._respond_error(
            405,
            "method-not-allowed",
            f"{self.command} is not supported; use GET or POST",
            {"Allow": "GET, POST"},
        )

    do_PUT = do_DELETE = do_PATCH = do_HEAD = _method_not_allowed

    # ------------------------------------------------------------------ #
    # /sparql
    # ------------------------------------------------------------------ #
    def _handle_sparql(self, extract_request: Callable[[], SparqlRequest]) -> None:
        endpoint = self.server.endpoint
        # Protocol validation happens before admission: a malformed request
        # must get its 400 even from a saturated endpoint, and must never
        # consume an execution slot.
        try:
            negotiate_accept(self.headers.get("Accept"))
            request = extract_request()
        except ProtocolError as exc:
            self._respond_error(exc.status, exc.code, exc.message)
            return
        query_text = request.query
        service = endpoint.service
        try:
            service.resolve(query_text)
        except ParseError as exc:
            self._respond_error(
                400, "parse-error", exc.message, line=exc.line, column=exc.column
            )
            return
        except ReproError as exc:
            self._respond_error(400, "invalid-query", str(exc))
            return

        if endpoint.draining:
            # Graceful shutdown: stop admitting, let in-flight finish.  The
            # rejection is counted on the endpoint (not the gate — gate sheds
            # mean overload, this means shutdown) so accounting stays exact.
            endpoint.count_drain_rejection()
            self._respond_error(
                503,
                "draining",
                "endpoint is draining for shutdown",
                {"Retry-After": endpoint.retry_after_hint()},
            )
            return

        gate = endpoint.gate
        if not gate.try_admit():
            self._respond_error(
                503,
                "overloaded",
                "request shed: the admission queue is full",
                {"Retry-After": endpoint.retry_after_hint()},
            )
            endpoint.mirror_admission()
            return
        try:
            # Re-read the service ref inside the gate: the swap (if any)
            # happened-before our read, so generation stamps taken from this
            # ref are exactly the store that executes the query.
            service = endpoint.service
            if endpoint.before_execute is not None:
                endpoint.before_execute(query_text)
            generation = service.dual.generation
            processed = service.run_query(
                query_text, deadline_seconds=request.timeout_seconds
            )
            body = encode_results(processed.result)
        except ParseError as exc:  # pragma: no cover - caught pre-admission
            self._respond_error(400, "parse-error", exc.message, line=exc.line, column=exc.column)
            return
        except QueryTimeoutError as exc:
            # Cooperative cancellation tripped: the slot is already freed by
            # the finally below — 504 with the exact partial-work accounting.
            self._respond_error(
                504,
                "query-timeout",
                str(exc),
                budget_seconds=exc.budget_seconds,
                elapsed_seconds=exc.elapsed_seconds,
                partial_work=exc.partial_work or None,
            )
            return
        except ReproError as exc:
            self._respond_error(500, "execution-failed", str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - last-resort server error
            self._respond_error(500, "internal-error", f"{type(exc).__name__}: {exc}")
            return
        finally:
            gate.release()
            endpoint.mirror_admission()
        self._respond(
            200,
            body,
            RESULTS_JSON,
            {GENERATION_HEADER: generation, ROUTE_HEADER: processed.route},
        )

    # ------------------------------------------------------------------ #
    # /healthz and /metrics
    # ------------------------------------------------------------------ #
    def _handle_healthz(self) -> None:
        endpoint = self.server.endpoint
        payload = {
            "status": "draining" if endpoint.draining else "ok",
            "role": endpoint.config.role,
            "pid": os.getpid(),
            "generation": endpoint.service.dual.generation,
            "reloads": endpoint.reloads,
        }
        self._respond(
            200,
            json.dumps(payload, separators=(",", ":")).encode("utf-8"),
            ERROR_JSON,
            {GENERATION_HEADER: payload["generation"]},
        )

    def _handle_metrics(self) -> None:
        endpoint = self.server.endpoint
        service = endpoint.service
        endpoint.mirror_admission()
        admission = endpoint.gate.snapshot()
        admission["draining"] = endpoint.draining
        admission["drain_rejections"] = endpoint.drain_rejections
        payload = {
            "role": endpoint.config.role,
            "generation": service.dual.generation,
            "reloads": endpoint.reloads,
            "endpoint": admission,
            "service": service.metrics.snapshot(),
        }
        self._respond(
            200,
            json.dumps(payload, separators=(",", ":")).encode("utf-8"),
            ERROR_JSON,
            {GENERATION_HEADER: payload["generation"]},
        )


class SparqlEndpoint:
    """One HTTP SPARQL endpoint over a (swappable) :class:`QueryService`.

    Parameters
    ----------
    service:
        The service to serve from.  The endpoint does **not** own it: closing
        the endpoint stops the HTTP server but leaves the service (and its
        store) to the caller.
    config:
        Bind address, admission limits, role label.
    before_execute:
        Optional fault-injection seam: called with the query text after
        admission, immediately before execution.  The protocol/fault test
        layer uses it to hold requests inside their execution slot (queue
        saturation) and to stretch requests so a worker can be killed
        mid-flight; production configurations leave it ``None``.
    """

    def __init__(
        self,
        service: QueryService,
        config: Optional[EndpointConfig] = None,
        *,
        before_execute: Optional[Callable[[str], None]] = None,
    ):
        self.config = config or EndpointConfig()
        self._service = service
        self._service_lock = threading.Lock()
        self.gate = AdmissionGate(
            self.config.max_inflight,
            self.config.queue_depth,
            self.config.admission_timeout_seconds,
        )
        self.before_execute = before_execute
        #: Times :meth:`swap_service` replaced the serving store (worker mode).
        self.reloads = 0
        #: Draining mode: new /sparql requests are rejected with 503
        #: ``draining`` while in-flight ones finish (see :meth:`drain`).
        self._draining = False
        self._drain_lock = threading.Lock()
        #: Requests rejected because the endpoint was draining (cumulative).
        self.drain_rejections = 0
        self._httpd = _EndpointHTTPServer((self.config.host, self.config.port), _Handler)
        self._httpd.endpoint = self
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound port (resolved even when configured with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint, e.g. ``http://127.0.0.1:43211``."""
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "SparqlEndpoint":
        """Serve in a background thread; returns ``self`` for chaining."""
        if self._started:
            return self
        self._started = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections and release the listening socket.

        Raises :class:`RuntimeError` if the serving thread is still alive
        after a 5-second join — a wedged handler must be loud, not a thread
        silently accumulating across a long test run.  The thread reference
        is kept in that case so a retry can observe (and re-join) it.
        """
        if not self._started:
            self._httpd.server_close()
            return
        self._started = False
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"endpoint thread {self._thread.name!r} did not stop within "
                    "5.0s of shutdown; a handler is wedged"
                )
            self._thread = None

    def __enter__(self) -> "SparqlEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # The swappable service (snapshot hot-reload)
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> QueryService:
        with self._service_lock:
            return self._service

    def swap_service(self, service: QueryService) -> QueryService:
        """Atomically replace the serving store; returns the old service.

        In-flight requests keep executing against the service they grabbed
        before the swap (their responses stay stamped with *its* generation);
        every request admitted afterwards sees the new one — so a sequential
        client observes a monotonic generation, never a torn store.  The old
        service is handed back, not closed: requests may still be inside it.
        Its cumulative counters are folded into the new service's so the
        endpoint's ``/metrics`` stays a process-lifetime view across reloads
        (mirrored gauges take the max, per
        :attr:`~repro.serve.metrics.ServiceCounters.MIRRORED_GAUGES`).
        """
        with self._service_lock:
            old, self._service = self._service, service
        if old is not service:
            self.reloads += 1
            service.metrics.counters.add(old.metrics.counters)
        return old

    # ------------------------------------------------------------------ #
    # Graceful drain (worker shutdown)
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        """Whether the endpoint is refusing new queries ahead of shutdown."""
        with self._drain_lock:
            return self._draining

    def count_drain_rejection(self) -> None:
        with self._drain_lock:
            self.drain_rejections += 1

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting new queries and wait for in-flight ones to finish.

        Returns ``True`` when gate occupancy reached zero within ``timeout``
        seconds, ``False`` if requests were still in flight when it expired
        (the caller may still :meth:`stop`; remaining requests race the
        socket teardown, exactly as an un-drained stop would).  Idempotent —
        once draining, the endpoint stays draining.
        """
        with self._drain_lock:
            self._draining = True
        limit = time.monotonic() + max(0.0, timeout)
        while self.gate.occupancy > 0:
            if time.monotonic() >= limit:
                return False
            time.sleep(0.02)
        return True

    # ------------------------------------------------------------------ #
    # Counter mirroring (serve-layer visibility of admission events)
    # ------------------------------------------------------------------ #
    def mirror_admission(self) -> None:
        """Copy the gate's cumulative totals into the service counters."""
        self.service.record_endpoint(requests=self.gate.admitted, shed=self.gate.shed)

    def retry_after_hint(self) -> int:
        """The ``Retry-After`` seconds for a rejected request, scaled by load.

        The base (:attr:`EndpointConfig.retry_after_seconds`) is multiplied
        by how many *waves* of work the current gate occupancy represents —
        ``ceil(occupancy / max_inflight)`` — so a shed against a deep queue
        tells the client to back off proportionally longer than a shed
        against a briefly-full one.  An idle or lightly-loaded endpoint
        (occupancy within one wave) answers the plain base value.
        """
        occupancy = self.gate.occupancy
        waves = max(1, math.ceil(occupancy / self.config.max_inflight))
        return int(self.config.retry_after_seconds * waves)
