"""SPARQL 1.1 Protocol codec: request parsing and result serialization.

The wire format the endpoint speaks is deliberately the standard one so any
SPARQL client can talk to it:

* **Requests** (`SPARQL 1.1 Protocol`_): ``GET /sparql?query=...`` with the
  query URL-encoded, ``POST /sparql`` with an
  ``application/x-www-form-urlencoded`` body carrying ``query=...``, or
  ``POST /sparql`` with the bare query text as an
  ``application/sparql-query`` body.
* **Responses** (`SPARQL 1.1 Query Results JSON Format`_):
  ``application/sparql-results+json`` documents of the shape
  ``{"head": {"vars": [...]}, "results": {"bindings": [...]}}`` where every
  bound term is rendered as a typed JSON object (``uri`` / ``literal`` with
  optional ``xml:lang`` or ``datatype`` / ``bnode``).
* **Errors**: machine-readable JSON bodies
  ``{"error": {"code": ..., "message": ...}}`` carried on the appropriate
  4xx/5xx status, so clients never have to scrape HTML error pages.

Everything here is pure functions over bytes and :class:`ExecutionResult`
objects — no sockets — so the protocol conformance suite can pin the encoder
byte-for-byte against direct :class:`~repro.serve.service.QueryService`
results, and the HTTP layer (:mod:`repro.endpoint.server`) stays a thin
transport.

.. _SPARQL 1.1 Protocol: https://www.w3.org/TR/sparql11-protocol/
.. _SPARQL 1.1 Query Results JSON Format: https://www.w3.org/TR/sparql11-results-json/
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.errors import ReproError
from repro.execution import ExecutionResult
from repro.rdf.terms import BlankNode, IRI, Literal, TermLike, XSD_STRING

__all__ = [
    "RESULTS_JSON",
    "ERROR_JSON",
    "ProtocolError",
    "term_to_json",
    "results_to_json",
    "encode_results",
    "encode_error",
    "negotiate_accept",
    "SparqlRequest",
    "request_from_get",
    "request_from_post",
    "query_from_get",
    "query_from_post",
]

#: The response media type of every successful query answer.
RESULTS_JSON = "application/sparql-results+json"
#: Error bodies are plain JSON (they are not result sets).
ERROR_JSON = "application/json"

#: Media types a client may list in ``Accept`` and still receive
#: :data:`RESULTS_JSON` (the JSON results format *is* JSON, and wildcard
#: ranges delegate the choice to the server).
_ACCEPTABLE = {
    RESULTS_JSON,
    "application/json",
    "application/*",
    "*/*",
}

_FORM_URLENCODED = "application/x-www-form-urlencoded"
_SPARQL_QUERY = "application/sparql-query"


class ProtocolError(ReproError):
    """A request violated the SPARQL protocol (client error, 4xx).

    Carries everything the HTTP layer needs to render the response: the
    status code, a stable machine-readable ``code`` slug for the JSON error
    body, and the human-readable message.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


# --------------------------------------------------------------------------- #
# Result serialization
# --------------------------------------------------------------------------- #
def term_to_json(term: TermLike) -> Dict[str, str]:
    """One bound term as a SPARQL-results-JSON term object."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, Literal):
        obj = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            obj["xml:lang"] = term.language
        elif term.datatype and term.datatype != XSD_STRING:
            obj["datatype"] = term.datatype
        return obj
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    raise ProtocolError(  # pragma: no cover - executor never binds variables
        500, "unencodable-term", f"cannot serialize term of kind {term.kind!r}"
    )


def results_to_json(result: ExecutionResult) -> Dict[str, object]:
    """The results-JSON document for one execution, as plain dicts.

    Binding keys are emitted in the projection order (``result.variables``),
    not dict-insertion order, so the document is deterministic for a given
    solution sequence no matter how the executor assembled its binding dicts.
    """
    variables = list(result.variables)
    bindings: List[Dict[str, Dict[str, str]]] = []
    for binding in result.bindings:
        bindings.append(
            {name: term_to_json(binding[name]) for name in variables if name in binding}
        )
    return {"head": {"vars": variables}, "results": {"bindings": bindings}}


def encode_results(result: ExecutionResult) -> bytes:
    """The canonical wire bytes of one execution's results.

    This is the single serialization both the live endpoint and the
    conformance tests use, so "byte-identical to a direct
    ``QueryService`` answer" is checkable with ``==`` on bytes.
    """
    return json.dumps(results_to_json(result), separators=(",", ":")).encode("utf-8")


def encode_error(code: str, message: str, **extra) -> bytes:
    """A machine-readable error body: ``{"error": {"code", "message", ...}}``."""
    payload: Dict[str, object] = {"code": code, "message": message}
    for key, value in extra.items():
        if value is not None:
            payload[key] = value
    return json.dumps({"error": payload}, separators=(",", ":")).encode("utf-8")


# --------------------------------------------------------------------------- #
# Request parsing
# --------------------------------------------------------------------------- #
def _media_type(header: str) -> Tuple[str, Dict[str, str]]:
    """Split ``type/subtype; key=value; ...`` into the type and its params."""
    parts = header.split(";")
    params: Dict[str, str] = {}
    for raw in parts[1:]:
        if "=" in raw:
            key, value = raw.split("=", 1)
            params[key.strip().lower()] = value.strip().strip('"')
    return parts[0].strip().lower(), params


def negotiate_accept(header: Optional[str]) -> str:
    """Check an ``Accept`` header and return the response media type.

    The endpoint produces exactly one representation (:data:`RESULTS_JSON`),
    so negotiation reduces to: is that type — or plain JSON, or a wildcard —
    in the client's list?  A missing header means "anything".  Raises a 406
    :class:`ProtocolError` otherwise.
    """
    if header is None or not header.strip():
        return RESULTS_JSON
    for entry in header.split(","):
        media, _params = _media_type(entry)
        if media in _ACCEPTABLE:
            return RESULTS_JSON
    raise ProtocolError(
        406,
        "not-acceptable",
        f"this endpoint only produces {RESULTS_JSON}; "
        f"the Accept header {header!r} excludes it",
    )


def _single_query_param(params: Dict[str, List[str]], where: str) -> str:
    values = params.get("query", [])
    if not values:
        raise ProtocolError(
            400, "missing-query", f"no 'query' parameter in the {where}"
        )
    if len(values) > 1:
        raise ProtocolError(
            400, "duplicate-query", f"multiple 'query' parameters in the {where}"
        )
    query = values[0]
    if not query.strip():
        raise ProtocolError(400, "missing-query", f"empty 'query' parameter in the {where}")
    return query


@dataclass(frozen=True)
class SparqlRequest:
    """One parsed protocol request: the query text plus request options.

    ``timeout_seconds`` is the optional per-request wall-clock deadline
    (the ``timeout`` parameter, in seconds), carried into
    ``QueryService.run_query(deadline_seconds=...)`` by the HTTP layer;
    ``None`` defers to the service's configured default.
    """

    query: str
    timeout_seconds: Optional[float] = None


def _timeout_param(params: Dict[str, List[str]], where: str) -> Optional[float]:
    """The optional ``timeout`` parameter: a positive, finite float."""
    values = params.get("timeout", [])
    if not values:
        return None
    if len(values) > 1:
        raise ProtocolError(
            400, "duplicate-timeout", f"multiple 'timeout' parameters in the {where}"
        )
    try:
        seconds = float(values[0])
    except ValueError:
        raise ProtocolError(
            400, "invalid-timeout", f"'timeout' is not a number: {values[0]!r}"
        )
    if not math.isfinite(seconds) or seconds <= 0:
        raise ProtocolError(
            400, "invalid-timeout", "'timeout' must be a positive number of seconds"
        )
    return seconds


def request_from_get(query_string: str) -> SparqlRequest:
    """Parse a ``GET /sparql?query=...[&timeout=...]`` URL."""
    params = parse_qs(query_string)
    return SparqlRequest(
        query=_single_query_param(params, "query string"),
        timeout_seconds=_timeout_param(params, "query string"),
    )


def request_from_post(
    content_type: Optional[str], body: bytes, query_string: str = ""
) -> SparqlRequest:
    """Parse a ``POST /sparql`` body (plus the URL's own parameters).

    Supports both protocol-mandated request forms: URL-encoded form
    parameters and the direct ``application/sparql-query`` body.  Anything
    else is a 415 (the protocol's "unsupported media type" case, not a 400:
    the request may be perfectly well-formed for a media type this endpoint
    simply does not consume).  The ``timeout`` option is read from the form
    body in the form-encoded case and from the URL query string in the
    direct-body case (the body *is* the query there).
    """
    if content_type is None or not content_type.strip():
        raise ProtocolError(
            415, "missing-content-type", "POST requires a Content-Type header"
        )
    media, params = _media_type(content_type)
    charset = params.get("charset", "utf-8")
    try:
        text = body.decode(charset)
    except (LookupError, UnicodeDecodeError) as exc:
        raise ProtocolError(400, "undecodable-body", f"cannot decode request body: {exc}")
    if media == _FORM_URLENCODED:
        form = parse_qs(text)
        return SparqlRequest(
            query=_single_query_param(form, "form body"),
            timeout_seconds=_timeout_param(form, "form body"),
        )
    if media == _SPARQL_QUERY:
        if not text.strip():
            raise ProtocolError(400, "missing-query", "empty application/sparql-query body")
        return SparqlRequest(
            query=text,
            timeout_seconds=_timeout_param(parse_qs(query_string), "query string"),
        )
    raise ProtocolError(
        415,
        "unsupported-media-type",
        f"POST bodies must be {_FORM_URLENCODED} or {_SPARQL_QUERY}, not {media!r}",
    )


def query_from_get(query_string: str) -> str:
    """Extract just the query text from a GET URL (compat wrapper)."""
    return request_from_get(query_string).query


def query_from_post(content_type: Optional[str], body: bytes) -> str:
    """Extract just the query text from a POST body (compat wrapper)."""
    return request_from_post(content_type, body).query
