"""Minimal SPARQL-protocol HTTP client helpers (stdlib ``urllib`` only).

Used by the benchmarks, the fault-injection suite, and the examples; also a
reasonable starting point for real callers.  Two layers:

* :func:`sparql_request` — one request against one endpoint, returning the
  raw :class:`EndpointResponse` whatever the status (4xx/5xx bodies carry
  the machine-readable error JSON, so they are data, not exceptions).
  Transport-level failures (connection refused/reset, a worker killed
  mid-response) *do* raise — the caller decides whether to retry.
* :class:`EndpointPool` — round-robin over several worker endpoints with
  bounded retry on transport errors and on ``503`` shed responses.  This is
  the client discipline the multi-process fault tests pin: a killed worker
  costs a clean error or a retried success on a surviving worker, never a
  hang (every request carries a timeout).
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.endpoint.protocol import RESULTS_JSON
from repro.endpoint.server import GENERATION_HEADER
from repro.resilience import faults
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker

__all__ = ["EndpointResponse", "TransportError", "sparql_request", "EndpointPool"]

#: Exceptions that mean "the endpoint did not answer this request" (and a
#: retry against another replica is sound): the socket died, the connection
#: was refused, or the response was cut off mid-flight.
TransportError = (urllib.error.URLError, http.client.HTTPException, ConnectionError, TimeoutError)


@dataclass
class EndpointResponse:
    """One HTTP exchange: status, lower-cased headers, raw body bytes."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "")

    @property
    def generation(self) -> int:
        """The stamped store generation, or ``-1`` when absent."""
        return int(self.headers.get(GENERATION_HEADER.lower(), "-1"))

    @property
    def retry_after(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


def _exchange(request: urllib.request.Request, timeout: float) -> EndpointResponse:
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return EndpointResponse(
                status=response.status,
                headers={k.lower(): v for k, v in response.headers.items()},
                body=response.read(),
            )
    except urllib.error.HTTPError as exc:
        # 4xx/5xx: a real response with an error body — surface it as data.
        with exc:
            return EndpointResponse(
                status=exc.code,
                headers={k.lower(): v for k, v in exc.headers.items()},
                body=exc.read(),
            )


def sparql_request(
    base_url: str,
    query: str,
    *,
    method: str = "GET",
    post_form: bool = True,
    accept: Optional[str] = RESULTS_JSON,
    timeout: float = 30.0,
    deadline_seconds: Optional[float] = None,
) -> EndpointResponse:
    """One SPARQL-protocol request against ``base_url``.

    ``method="GET"`` URL-encodes the query; ``method="POST"`` sends either a
    form-encoded body (``post_form=True``, the default) or a direct
    ``application/sparql-query`` body.  Pass ``accept=None`` to omit the
    ``Accept`` header entirely.  ``deadline_seconds`` carries the protocol's
    ``timeout`` parameter — the server-side query deadline (an over-budget
    query answers ``504``), distinct from ``timeout``, the client-side
    socket timeout.
    """
    headers: Dict[str, str] = {}
    if accept is not None:
        headers["Accept"] = accept
    params: Dict[str, str] = {"query": query}
    if deadline_seconds is not None:
        params["timeout"] = str(float(deadline_seconds))
    if method == "GET":
        url = f"{base_url}/sparql?{urllib.parse.urlencode(params)}"
        request = urllib.request.Request(url, headers=headers, method="GET")
    elif method == "POST":
        target = f"{base_url}/sparql"
        if post_form:
            body = urllib.parse.urlencode(params).encode("utf-8")
            headers["Content-Type"] = "application/x-www-form-urlencoded"
        else:
            body = query.encode("utf-8")
            headers["Content-Type"] = "application/sparql-query"
            if deadline_seconds is not None:
                target += "?" + urllib.parse.urlencode({"timeout": params["timeout"]})
        request = urllib.request.Request(target, data=body, headers=headers, method="POST")
    else:
        raise ValueError(f"unsupported method {method!r}; use GET or POST")
    return _exchange(request, timeout)


def fetch_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    """GET a JSON control endpoint (``/healthz`` or ``/metrics``)."""
    request = urllib.request.Request(f"{base_url}{path}", method="GET")
    response = _exchange(request, timeout)
    return response.json()


class EndpointPool:
    """Round-robin client over several endpoint replicas, with bounded retry
    and per-replica circuit breaking.

    Transport errors (dead worker, reset connection) and ``503`` sheds are
    retried against the next replica, up to ``max_attempts`` total tries per
    query; anything else — including 4xx protocol errors — is returned
    as-is.  Thread-safe: benchmark client threads share one pool.

    Retries back off: both transport errors and sheds sleep an exponential
    backoff (``retry_backoff_seconds`` doubled per attempt, capped at
    ``retry_backoff_cap_seconds``) before the next replica is tried, so a
    dead replica cannot spin the client in a tight zero-sleep loop.  A
    ``503``'s ``Retry-After`` hint *overrides* the computed backoff — the
    server knows its queue — honored up to ``retry_after_cap_seconds`` (a
    misconfigured or adversarial server must not stall the client forever).

    **Circuit breaking** (:mod:`repro.resilience.breaker`): each replica URL
    gets its own breaker.  A *failure* is a transport error or a ``5xx``
    response **except 504** — a 504 is the query's own deadline verdict from
    a perfectly healthy worker, so it must never poison the replica.  URL
    selection skips open breakers (round-robin over the allowed ones); a
    half-open breaker admits its probe request; any success re-closes.  If
    *every* breaker is open the pool sends to the next replica anyway —
    breaking sheds load away from a sick replica, it never wedges the client
    with no replica at all.  Pass ``breaker_policy=None`` to disable.

    Fault injection: each attempt passes the ``pool.transport`` site of an
    installed :class:`~repro.resilience.faults.FaultPlan` before touching
    the network, so the chaos suite can inject latency spikes and connection
    errors deterministically without a real sick network.
    """

    def __init__(
        self,
        urls: Sequence[str],
        *,
        timeout: float = 30.0,
        max_attempts: Optional[int] = None,
        retry_backoff_seconds: float = 0.05,
        retry_backoff_cap_seconds: float = 1.0,
        retry_after_cap_seconds: float = 5.0,
        breaker_policy: Optional[BreakerPolicy] = BreakerPolicy(),
        breaker_clock=time.monotonic,
        transport=None,
    ):
        if not urls:
            raise ValueError("EndpointPool needs at least one endpoint URL")
        self.urls = list(urls)
        self.timeout = timeout
        self.max_attempts = max_attempts if max_attempts is not None else 2 * len(self.urls)
        self.retry_backoff_seconds = retry_backoff_seconds
        self.retry_backoff_cap_seconds = retry_backoff_cap_seconds
        self.retry_after_cap_seconds = retry_after_cap_seconds
        self._transport = transport
        self.breakers: Optional[Dict[str, CircuitBreaker]] = (
            None
            if breaker_policy is None
            else {
                url: CircuitBreaker(breaker_policy, clock=breaker_clock)
                for url in self.urls
            }
        )
        self._cursor = itertools.count()
        self._lock = threading.Lock()
        #: Cumulative transport-level failures that were retried.
        self.transport_retries = 0
        #: Cumulative 503 shed responses that were retried.
        self.shed_retries = 0

    def _next_url(self) -> str:
        start = next(self._cursor)
        if self.breakers is None:
            return self.urls[start % len(self.urls)]
        for offset in range(len(self.urls)):
            url = self.urls[(start + offset) % len(self.urls)]
            if self.breakers[url].allow():
                return url
        # Every breaker is open: never wedge — try the next replica anyway.
        # (An open breaker ignores failures, so accounting stays exact.)
        return self.urls[start % len(self.urls)]

    def _record(self, url: str, ok: bool) -> None:
        if self.breakers is None:
            return
        if ok:
            self.breakers[url].record_success()
        else:
            self.breakers[url].record_failure()

    @property
    def breaker_opens(self) -> int:
        """Cumulative closed→open trips summed over every replica breaker."""
        if self.breakers is None:
            return 0
        return sum(breaker.opens for breaker in self.breakers.values())

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff for retry ``attempt`` (0-based), capped."""
        return min(self.retry_backoff_seconds * (2**attempt), self.retry_backoff_cap_seconds)

    def query(self, query: str, **request_kwargs) -> EndpointResponse:
        """Issue one query, retrying across replicas; returns the response.

        Raises the last transport error if every attempt failed to reach an
        endpoint, and returns the last ``503`` if every attempt was shed.
        No sleep follows the final attempt — the caller gets its answer (or
        error) immediately once the budget is spent.
        """
        last_response: Optional[EndpointResponse] = None
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            url = self._next_url()
            # Resolve the transport per call: the default is the *current*
            # module-level sparql_request, so tests stubbing it still apply.
            transport = self._transport if self._transport is not None else sparql_request
            try:
                faults.fire("pool.transport")
                response = transport(url, query, timeout=self.timeout, **request_kwargs)
            except TransportError as exc:
                self._record(url, ok=False)
                last_error = exc
                with self._lock:
                    self.transport_retries += 1
                if attempt + 1 < self.max_attempts:
                    time.sleep(self._backoff(attempt))
                continue
            # A 504 is the query's own deadline outcome from a healthy
            # worker; everything else ≥500 (including 503 sheds) counts
            # against the replica's breaker.
            self._record(url, ok=response.status < 500 or response.status == 504)
            if response.status == 503:
                last_response = response
                with self._lock:
                    self.shed_retries += 1
                if attempt + 1 < self.max_attempts:
                    hint = response.retry_after
                    if hint is not None:
                        time.sleep(min(max(hint, 0.0), self.retry_after_cap_seconds))
                    else:
                        time.sleep(self._backoff(attempt))
                continue
            return response
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error
