"""Minimal SPARQL-protocol HTTP client helpers (stdlib ``urllib`` only).

Used by the benchmarks, the fault-injection suite, and the examples; also a
reasonable starting point for real callers.  Two layers:

* :func:`sparql_request` — one request against one endpoint, returning the
  raw :class:`EndpointResponse` whatever the status (4xx/5xx bodies carry
  the machine-readable error JSON, so they are data, not exceptions).
  Transport-level failures (connection refused/reset, a worker killed
  mid-response) *do* raise — the caller decides whether to retry.
* :class:`EndpointPool` — round-robin over several worker endpoints with
  bounded retry on transport errors and on ``503`` shed responses.  This is
  the client discipline the multi-process fault tests pin: a killed worker
  costs a clean error or a retried success on a surviving worker, never a
  hang (every request carries a timeout).
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.endpoint.protocol import RESULTS_JSON
from repro.endpoint.server import GENERATION_HEADER

__all__ = ["EndpointResponse", "TransportError", "sparql_request", "EndpointPool"]

#: Exceptions that mean "the endpoint did not answer this request" (and a
#: retry against another replica is sound): the socket died, the connection
#: was refused, or the response was cut off mid-flight.
TransportError = (urllib.error.URLError, http.client.HTTPException, ConnectionError, TimeoutError)


@dataclass
class EndpointResponse:
    """One HTTP exchange: status, lower-cased headers, raw body bytes."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "")

    @property
    def generation(self) -> int:
        """The stamped store generation, or ``-1`` when absent."""
        return int(self.headers.get(GENERATION_HEADER.lower(), "-1"))

    @property
    def retry_after(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


def _exchange(request: urllib.request.Request, timeout: float) -> EndpointResponse:
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return EndpointResponse(
                status=response.status,
                headers={k.lower(): v for k, v in response.headers.items()},
                body=response.read(),
            )
    except urllib.error.HTTPError as exc:
        # 4xx/5xx: a real response with an error body — surface it as data.
        with exc:
            return EndpointResponse(
                status=exc.code,
                headers={k.lower(): v for k, v in exc.headers.items()},
                body=exc.read(),
            )


def sparql_request(
    base_url: str,
    query: str,
    *,
    method: str = "GET",
    post_form: bool = True,
    accept: Optional[str] = RESULTS_JSON,
    timeout: float = 30.0,
) -> EndpointResponse:
    """One SPARQL-protocol request against ``base_url``.

    ``method="GET"`` URL-encodes the query; ``method="POST"`` sends either a
    form-encoded body (``post_form=True``, the default) or a direct
    ``application/sparql-query`` body.  Pass ``accept=None`` to omit the
    ``Accept`` header entirely.
    """
    headers: Dict[str, str] = {}
    if accept is not None:
        headers["Accept"] = accept
    if method == "GET":
        url = f"{base_url}/sparql?{urllib.parse.urlencode({'query': query})}"
        request = urllib.request.Request(url, headers=headers, method="GET")
    elif method == "POST":
        if post_form:
            body = urllib.parse.urlencode({"query": query}).encode("utf-8")
            headers["Content-Type"] = "application/x-www-form-urlencoded"
        else:
            body = query.encode("utf-8")
            headers["Content-Type"] = "application/sparql-query"
        request = urllib.request.Request(
            f"{base_url}/sparql", data=body, headers=headers, method="POST"
        )
    else:
        raise ValueError(f"unsupported method {method!r}; use GET or POST")
    return _exchange(request, timeout)


def fetch_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    """GET a JSON control endpoint (``/healthz`` or ``/metrics``)."""
    request = urllib.request.Request(f"{base_url}{path}", method="GET")
    response = _exchange(request, timeout)
    return response.json()


class EndpointPool:
    """Round-robin client over several endpoint replicas, with bounded retry.

    Transport errors (dead worker, reset connection) and ``503`` sheds are
    retried against the next replica, up to ``max_attempts`` total tries per
    query; anything else — including 4xx protocol errors — is returned
    as-is.  Thread-safe: benchmark client threads share one pool.

    Retries back off: both transport errors and sheds sleep an exponential
    backoff (``retry_backoff_seconds`` doubled per attempt, capped at
    ``retry_backoff_cap_seconds``) before the next replica is tried, so a
    dead replica cannot spin the client in a tight zero-sleep loop.  A
    ``503``'s ``Retry-After`` hint *overrides* the computed backoff — the
    server knows its queue — honored up to ``retry_after_cap_seconds`` (a
    misconfigured or adversarial server must not stall the client forever).
    """

    def __init__(
        self,
        urls: Sequence[str],
        *,
        timeout: float = 30.0,
        max_attempts: Optional[int] = None,
        retry_backoff_seconds: float = 0.05,
        retry_backoff_cap_seconds: float = 1.0,
        retry_after_cap_seconds: float = 5.0,
    ):
        if not urls:
            raise ValueError("EndpointPool needs at least one endpoint URL")
        self.urls = list(urls)
        self.timeout = timeout
        self.max_attempts = max_attempts if max_attempts is not None else 2 * len(self.urls)
        self.retry_backoff_seconds = retry_backoff_seconds
        self.retry_backoff_cap_seconds = retry_backoff_cap_seconds
        self.retry_after_cap_seconds = retry_after_cap_seconds
        self._cursor = itertools.count()
        self._lock = threading.Lock()
        #: Cumulative transport-level failures that were retried.
        self.transport_retries = 0
        #: Cumulative 503 shed responses that were retried.
        self.shed_retries = 0

    def _next_url(self) -> str:
        return self.urls[next(self._cursor) % len(self.urls)]

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff for retry ``attempt`` (0-based), capped."""
        return min(self.retry_backoff_seconds * (2**attempt), self.retry_backoff_cap_seconds)

    def query(self, query: str, **request_kwargs) -> EndpointResponse:
        """Issue one query, retrying across replicas; returns the response.

        Raises the last transport error if every attempt failed to reach an
        endpoint, and returns the last ``503`` if every attempt was shed.
        No sleep follows the final attempt — the caller gets its answer (or
        error) immediately once the budget is spent.
        """
        last_response: Optional[EndpointResponse] = None
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            url = self._next_url()
            try:
                response = sparql_request(url, query, timeout=self.timeout, **request_kwargs)
            except TransportError as exc:
                last_error = exc
                with self._lock:
                    self.transport_retries += 1
                if attempt + 1 < self.max_attempts:
                    time.sleep(self._backoff(attempt))
                continue
            if response.status == 503:
                last_response = response
                with self._lock:
                    self.shed_retries += 1
                if attempt + 1 < self.max_attempts:
                    hint = response.retry_after
                    if hint is not None:
                        time.sleep(min(max(hint, 0.0), self.retry_after_cap_seconds))
                    else:
                        time.sleep(self._backoff(attempt))
                continue
            return response
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error
