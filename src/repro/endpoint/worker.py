"""Multi-process snapshot-replicated serving: worker processes + supervisor.

The GIL caps a single Python process at one core of query execution however
many threads serve it.  The multi-process mode sidesteps it with the
leader/follower design the ROADMAP calls for, using :mod:`repro.persist`
snapshots as the replication primitive:

* a **leader** process owns the mutable store — inserts, tuning epochs — and
  *publishes* each new state as a committed snapshot generation (any
  ``QueryService`` with a :class:`~repro.persist.SnapshotPolicy`, or explicit
  ``checkpoint()`` calls, is a leader; there is no special class);
* N **read-only worker** processes each restore the committed snapshot,
  serve it through their own :class:`~repro.endpoint.server.SparqlEndpoint`,
  and follow the root's ``CURRENT`` pointer with a
  :class:`~repro.persist.SnapshotWatcher` — when the leader commits a new
  generation a worker restores it *beside* the serving store and atomically
  swaps it in (:meth:`SparqlEndpoint.swap_service`), so no request ever sees
  a half-loaded store and response generation stamps stay monotonic.

With a delta-log leader (``SnapshotPolicy(log=True)``), workers default to
the **catch-up path**: instead of reloading a full snapshot per published
generation, each worker tails the committed write-ahead log
(:class:`~repro.persist.WalTailer`) and applies new records to its serving
store *in place* under the service's write gate — generations still only
move forward, and each applied batch costs the record's bytes rather than a
full restore.  The worker falls back to a full resync
(:func:`~repro.persist.restore_with_log` + swap) whenever the log is
missing, rotated past its position, or a record fails to apply; a root with
no log at all behaves exactly as before (full reload per commit).  Disable
with ``--no-catch-up``.

The worker is a real OS process with a CLI (``python -m
repro.endpoint.worker --root SNAPROOT ...``) so the fleet can be supervised
by anything; :class:`WorkerSupervisor` is the in-tree supervisor the
benchmarks and fault tests use — it spawns workers as subprocesses, collects
their *announce files* (atomic JSON drops carrying pid/port/generation),
waits for readiness, and can kill/restart individual workers to exercise the
fault paths.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.endpoint.server import EndpointConfig, SparqlEndpoint
from repro.errors import ReproError, SnapshotError
from repro.persist.snapshot import load_snapshot, read_manifest
from repro.persist.wal import WalTailer, restore_with_log
from repro.persist.watch import SnapshotWatcher
from repro.serve.service import QueryService, ServiceConfig

__all__ = ["WorkerOptions", "run_worker", "WorkerSupervisor"]

#: Where the source tree lives, for PYTHONPATH propagation to subprocesses.
_SRC_ROOT = Path(__file__).resolve().parents[2]

DEFAULT_POLL_INTERVAL = 0.25


class WorkerOptions:
    """Parsed configuration of one worker process (CLI-mirrored)."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        announce: Optional[Union[str, Path]] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_inflight: int = 8,
        queue_depth: int = 16,
        admission_timeout: float = 2.0,
        cache_results: bool = True,
        catch_up: bool = True,
        test_delay_seconds: float = 0.0,
        drain_timeout: float = 5.0,
    ):
        self.root = Path(root)
        self.host = host
        self.port = port
        self.announce = Path(announce) if announce is not None else None
        self.poll_interval = poll_interval
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.admission_timeout = admission_timeout
        self.cache_results = cache_results
        self.catch_up = catch_up
        self.test_delay_seconds = test_delay_seconds
        self.drain_timeout = drain_timeout


def _worker_service(restored, cache_results: bool = True, gated: bool = False) -> QueryService:
    # Workers serve read-only: no adaptive tuning, no snapshot policy, and
    # inline execution (the HTTP layer already gives each request its own
    # thread, so a batch pool inside the worker would only add queueing).
    # ``cache_results=False`` is the benchmark mode: measured QPS must be
    # store throughput, not result-cache hit throughput.  ``gated=True`` is
    # the catch-up mode: delta records mutate the serving store in place, so
    # reads and applies must exclude each other through the service's
    # read-write gate.
    return QueryService(
        restored.dual,
        ServiceConfig(max_workers=1, cache_results=cache_results, gated=gated),
    )


def _write_announce(path: Path, payload: Dict[str, object]) -> None:
    """Atomic JSON drop: the supervisor may read it at any moment."""
    tmp = path.with_name(f".{path.name}.tmp-{uuid.uuid4().hex[:8]}")
    tmp.write_text(json.dumps(payload, separators=(",", ":")), encoding="utf-8")
    os.replace(tmp, path)


def run_worker(options: WorkerOptions, stop: Optional[threading.Event] = None) -> None:
    """Boot one worker: restore, serve, follow the snapshot root until told
    to stop (``SIGTERM``/``SIGINT`` or the ``stop`` event)."""
    stop = stop or threading.Event()
    try:  # pragma: no branch - signal wiring only works in the main thread
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
    except ValueError:  # started from a non-main thread (tests)
        pass

    if options.catch_up:
        try:
            restored = restore_with_log(options.root)
        except SnapshotError:
            # A malformed log must not keep the worker down: serve the last
            # full snapshot (and let the tailer/resync path sort the log out).
            restored = load_snapshot(options.root)
    else:
        restored = load_snapshot(options.root)
    service = _worker_service(restored, options.cache_results, gated=options.catch_up)
    before_execute = None
    if options.test_delay_seconds > 0:
        # Fault-injection layer: stretch every request so the harness can
        # kill this worker mid-flight deterministically.
        before_execute = lambda _query: time.sleep(options.test_delay_seconds)  # noqa: E731
    endpoint = SparqlEndpoint(
        service,
        EndpointConfig(
            host=options.host,
            port=options.port,
            max_inflight=options.max_inflight,
            queue_depth=options.queue_depth,
            admission_timeout_seconds=options.admission_timeout,
            role="worker",
        ),
        before_execute=before_execute,
    )
    endpoint.start()
    watcher = SnapshotWatcher(options.root, seen=restored.manifest.name)
    generation = restored.dual.generation
    covered = restored.manifest.name  # newest committed snapshot our state covers
    tailer = WalTailer(options.root, generation) if options.catch_up else None
    delta_records = 0
    delta_bytes = 0
    dirty = False  # a delta batch half-applied: the store MUST be replaced

    def announce() -> None:
        if options.announce is not None:
            _write_announce(
                options.announce,
                {
                    "pid": os.getpid(),
                    "port": endpoint.port,
                    "generation": generation,
                    "reloads": endpoint.reloads,
                    "delta_records": delta_records,
                    "delta_bytes": delta_bytes,
                },
            )

    def resync(forced: bool) -> bool:
        """Full restore (snapshot + log tail) and swap; rebuild the tailer.

        ``forced`` swaps even at an equal generation — the serving store may
        be mid-batch after a failed delta apply and must not keep serving.
        """
        nonlocal generation, covered, tailer
        try:
            newer = restore_with_log(options.root)
        except SnapshotError as exc:
            print(f"worker {os.getpid()}: resync failed: {exc}", file=sys.stderr)
            return False
        if forced or newer.dual.generation > generation:
            endpoint.swap_service(
                _worker_service(newer, options.cache_results, gated=True)
            )
            generation = newer.dual.generation
        covered = newer.manifest.name
        tailer = WalTailer(options.root, generation)
        announce()
        return True

    announce()
    try:
        while not stop.wait(options.poll_interval):
            if tailer is not None:
                if dirty:
                    # A previous apply failed mid-batch; retry the forced
                    # resync every tick until a clean store is swapped in.
                    dirty = not resync(forced=True)
                    continue
                try:
                    records = tailer.poll()
                except SnapshotError as exc:
                    # Log rotated past us (or unreadable): the store is still
                    # intact, so a plain resync (swap only if newer) heals it.
                    print(f"worker {os.getpid()}: delta log gap: {exc}", file=sys.stderr)
                    resync(forced=False)
                    continue
                if records:
                    try:
                        delta_bytes += endpoint.service.apply_wal_records(records)
                    except ReproError as exc:
                        print(f"worker {os.getpid()}: delta apply failed: {exc}", file=sys.stderr)
                        dirty = not resync(forced=True)
                        continue
                    delta_records += len(records)
                    generation = endpoint.service.dual.generation
                    announce()
                    continue
                # No new deltas: check whether a snapshot committed *ahead* of
                # our position (a leader publishing without a readable log).
                name = watcher.committed_name()
                if name is None or name == covered:
                    continue
                try:
                    manifest = read_manifest(options.root)
                except SnapshotError:
                    continue
                if manifest.generation <= generation:
                    covered = manifest.name  # rotation point our deltas reached
                    continue
                resync(forced=False)
                continue
            try:
                newer = watcher.load_if_newer()
            except SnapshotError as exc:
                print(f"worker {os.getpid()}: reload failed: {exc}", file=sys.stderr)
                continue
            if newer is None:
                continue
            if newer.dual.generation <= generation:
                continue  # never regress, whatever the root says
            endpoint.swap_service(_worker_service(newer, options.cache_results))
            generation = newer.dual.generation
            announce()
    finally:
        # Graceful shutdown: stop admitting (503 "draining"), let in-flight
        # requests finish, then tear the socket down.  SIGKILL skips all of
        # this — that is exactly the hard-death fault mode.
        try:
            endpoint.drain(options.drain_timeout)
        finally:
            endpoint.stop()


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.endpoint.worker",
        description="Read-only snapshot-replicated SPARQL endpoint worker.",
    )
    parser.add_argument("--root", required=True, help="snapshot root directory to follow")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    parser.add_argument("--announce", default=None, help="file to write pid/port/generation JSON to")
    parser.add_argument("--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--admission-timeout", type=float, default=2.0)
    parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help="re-execute every request (benchmark mode: measure store QPS, not cache QPS)",
    )
    parser.add_argument(
        "--no-catch-up",
        action="store_true",
        help="never tail the delta log; full-snapshot reload per published generation",
    )
    parser.add_argument(
        "--test-delay-seconds",
        type=float,
        default=0.0,
        help="fault-injection: sleep this long inside every request's execution slot",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to wait for in-flight requests on graceful shutdown",
    )
    args = parser.parse_args(argv)
    run_worker(
        WorkerOptions(
            args.root,
            host=args.host,
            port=args.port,
            announce=args.announce,
            poll_interval=args.poll_interval,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            admission_timeout=args.admission_timeout,
            cache_results=not args.no_result_cache,
            catch_up=not args.no_catch_up,
            test_delay_seconds=args.test_delay_seconds,
            drain_timeout=args.drain_timeout,
        )
    )


class WorkerSupervisor:
    """Spawn, watch, kill, and restart a fleet of worker subprocesses.

    Each worker is a real OS process (``sys.executable -m
    repro.endpoint.worker``) following the same snapshot root, so N workers
    execute queries on N cores.  Readiness and liveness flow through the
    announce files; stderr of each worker lands in ``run_dir/worker-<i>.log``
    for post-mortems.
    """

    def __init__(
        self,
        root: Union[str, Path],
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_inflight: int = 8,
        queue_depth: int = 16,
        admission_timeout: float = 2.0,
        cache_results: bool = True,
        catch_up: bool = True,
        test_delay_seconds: float = 0.0,
        run_dir: Optional[Union[str, Path]] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.root = Path(root)
        self.count = workers
        self.host = host
        self.poll_interval = poll_interval
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.admission_timeout = admission_timeout
        self.cache_results = cache_results
        self.catch_up = catch_up
        self.test_delay_seconds = test_delay_seconds
        self._owns_run_dir = run_dir is None
        self.run_dir = (
            Path(tempfile.mkdtemp(prefix="repro-workers-")) if run_dir is None else Path(run_dir)
        )
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._procs: Dict[int, subprocess.Popen] = {}
        self._logs: Dict[int, object] = {}
        # Last announced port per worker slot.  A restarted worker re-binds
        # its predecessor's port, so the URL a client pool holds stays valid
        # across restarts instead of pointing at a recycled ephemeral port.
        self._ports: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _announce_path(self, index: int) -> Path:
        return self.run_dir / f"worker-{index}.json"

    def _spawn(self, index: int) -> None:
        announce = self._announce_path(index)
        announce.unlink(missing_ok=True)
        cmd = [
            sys.executable,
            "-m",
            "repro.endpoint.worker",
            "--root",
            str(self.root),
            "--host",
            self.host,
            "--port",
            str(self._ports.get(index, 0)),
            "--announce",
            str(announce),
            "--poll-interval",
            str(self.poll_interval),
            "--max-inflight",
            str(self.max_inflight),
            "--queue-depth",
            str(self.queue_depth),
            "--admission-timeout",
            str(self.admission_timeout),
        ]
        if not self.cache_results:
            cmd.append("--no-result-cache")
        if not self.catch_up:
            cmd.append("--no-catch-up")
        if self.test_delay_seconds > 0:
            cmd.extend(["--test-delay-seconds", str(self.test_delay_seconds)])
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            str(_SRC_ROOT) if not existing else f"{_SRC_ROOT}{os.pathsep}{existing}"
        )
        log = open(self.run_dir / f"worker-{index}.log", "ab")
        self._logs[index] = log
        self._procs[index] = subprocess.Popen(
            cmd, stdout=log, stderr=log, env=env, cwd=str(self.run_dir)
        )

    def start(self) -> "WorkerSupervisor":
        for index in range(self.count):
            self._spawn(index)
        return self

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Readiness and observation
    # ------------------------------------------------------------------ #
    def announce(self, index: int) -> Optional[dict]:
        """The worker's latest announce payload, or ``None`` if unreadable."""
        try:
            info = json.loads(self._announce_path(index).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            self._ports[index] = int(info["port"])  # pin for restarts
        except (KeyError, TypeError, ValueError):
            pass
        return info

    def worker_indexes(self) -> List[int]:
        """The worker slots this supervisor manages, in stable order."""
        return sorted(self._procs)

    def is_alive(self, index: int) -> bool:
        proc = self._procs.get(index)
        return proc is not None and proc.poll() is None

    def returncode(self, index: int) -> Optional[int]:
        """The worker's exit status, or ``None`` while it is still running."""
        proc = self._procs.get(index)
        return None if proc is None else proc.poll()

    def wait_ready(self, timeout: float = 60.0) -> "WorkerSupervisor":
        """Block until every worker announced a port; raises on worker death
        or timeout (with the dead worker's log tail for the post-mortem)."""
        deadline = time.monotonic() + timeout
        for index, proc in self._procs.items():
            while self.announce(index) is None:
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"worker {index} exited with {proc.returncode} before becoming "
                        f"ready:\n{self._log_tail(index)}"
                    )
                if time.monotonic() >= deadline:
                    raise TimeoutError(f"worker {index} not ready within {timeout:.0f}s")
                time.sleep(0.02)
        return self

    def _log_tail(self, index: int, lines: int = 20) -> str:
        try:
            text = (self.run_dir / f"worker-{index}.log").read_text(encoding="utf-8")
        except OSError:
            return "<no log>"
        return "\n".join(text.splitlines()[-lines:])

    def url(self, index: int) -> str:
        info = self.announce(index)
        if info is None:
            raise RuntimeError(f"worker {index} has not announced a port yet")
        return f"http://{self.host}:{info['port']}"

    @property
    def urls(self) -> List[str]:
        return [self.url(index) for index in sorted(self._procs)]

    def generation(self, index: int) -> Optional[int]:
        info = self.announce(index)
        return None if info is None else int(info["generation"])

    def delta_stats(self, index: int) -> Optional[Dict[str, int]]:
        """Delta-log catch-up totals from the worker's announce file:
        ``{"records": ..., "bytes": ...}``, or ``None`` if unannounced."""
        info = self.announce(index)
        if info is None:
            return None
        return {
            "records": int(info.get("delta_records", 0)),
            "bytes": int(info.get("delta_bytes", 0)),
        }

    def wait_generation(self, generation: int, timeout: float = 30.0) -> "WorkerSupervisor":
        """Block until every live worker announces ``generation`` or newer —
        i.e. the leader's commit has been hot-reloaded fleet-wide."""
        deadline = time.monotonic() + timeout
        for index in self._procs:
            while True:
                seen = self.generation(index)
                if seen is not None and seen >= generation:
                    break
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"worker {index} still at generation {seen} (< {generation}) "
                        f"after {timeout:.0f}s"
                    )
                time.sleep(0.02)
        return self

    # ------------------------------------------------------------------ #
    # Fault injection and shutdown
    # ------------------------------------------------------------------ #
    def kill(self, index: int) -> None:
        """SIGKILL one worker — the hard-death fault mode (no cleanup runs,
        sockets drop mid-request).

        The stale announce file is removed here (after capturing its port
        for restart pinning): a SIGKILLed worker can't clean up after
        itself, and a stale announce would otherwise point the pool or a
        fresh supervisor at a dead — possibly recycled — port.
        """
        self.announce(index)  # capture the port before removing the file
        proc = self._procs[index]
        proc.kill()
        proc.wait(timeout=10)
        self._announce_path(index).unlink(missing_ok=True)

    def restart(self, index: int) -> None:
        """Replace one worker (killing it first if still alive).

        The replacement re-binds the slot's last announced port, so URLs
        held by clients (and their circuit breakers) stay valid across the
        restart.
        """
        self.announce(index)  # refresh the port pin while the file exists
        proc = self._procs.get(index)
        if proc is not None and proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)
        self._close_log(index)
        self._spawn(index)

    def _close_log(self, index: int) -> None:
        log = self._logs.pop(index, None)
        if log is not None:
            log.close()  # type: ignore[attr-defined]

    def stop(self) -> None:
        """Terminate the fleet (escalating to SIGKILL) and clean up."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for index, proc in list(self._procs.items()):
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                proc.kill()
                proc.wait(timeout=5)
            self._close_log(index)
            self._announce_path(index).unlink(missing_ok=True)
        self._procs.clear()
        if self._owns_run_dir:
            import shutil

            shutil.rmtree(self.run_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
