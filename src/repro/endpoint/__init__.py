"""Network-facing SPARQL endpoint and multi-process replicated serving.

The wire layer over :class:`~repro.serve.service.QueryService`:

* :mod:`repro.endpoint.protocol` — SPARQL 1.1 protocol request parsing and
  ``application/sparql-results+json`` serialization (pure functions, so the
  conformance suite pins the wire bytes against direct service answers);
* :mod:`repro.endpoint.server` — the stdlib HTTP server: ``/sparql`` (GET +
  both POST forms), ``/healthz``, ``/metrics``, bounded-queue admission
  control with exact shed accounting, generation-stamped responses;
* :mod:`repro.endpoint.worker` — the leader/follower multi-process mode:
  read-only worker processes restore :mod:`repro.persist` snapshot
  generations and hot-reload when the leader commits a new one, plus the
  :class:`WorkerSupervisor` that spawns and fault-injects the fleet;
* :mod:`repro.endpoint.client` — stdlib client helpers, including the
  retrying round-robin :class:`EndpointPool` the benchmarks use.
"""

from repro.endpoint.client import EndpointPool, EndpointResponse, fetch_json, sparql_request
from repro.endpoint.protocol import (
    ERROR_JSON,
    RESULTS_JSON,
    ProtocolError,
    SparqlRequest,
    encode_error,
    encode_results,
    request_from_get,
    request_from_post,
    results_to_json,
    term_to_json,
)
from repro.endpoint.server import (
    GENERATION_HEADER,
    AdmissionGate,
    EndpointConfig,
    SparqlEndpoint,
)
from repro.endpoint.worker import WorkerOptions, WorkerSupervisor, run_worker

__all__ = [
    "AdmissionGate",
    "EndpointConfig",
    "EndpointPool",
    "EndpointResponse",
    "ERROR_JSON",
    "GENERATION_HEADER",
    "ProtocolError",
    "RESULTS_JSON",
    "SparqlEndpoint",
    "SparqlRequest",
    "WorkerOptions",
    "WorkerSupervisor",
    "encode_error",
    "encode_results",
    "fetch_json",
    "request_from_get",
    "request_from_post",
    "results_to_json",
    "run_worker",
    "sparql_request",
]
