"""Parsed-query/identifier cache (the serving layer's "plan cache").

Workloads are template-driven: the same query text (or a handful of mutations
of it) arrives again and again.  Parsing and complex-subquery identification
are pure functions of the text, so the service caches their combined output —
a :class:`QueryPlan` — keyed by the canonical query text from
:func:`repro.sparql.parser.canonical_query_text`.  A hit skips both the SPARQL
parser and the :class:`~repro.core.identifier.ComplexSubqueryIdentifier`.

Plans stay valid across physical-design changes (transfers/evictions change
*routing*, which the query processor decides per execution, not the parse or
the complex-subquery decomposition), so this cache never needs invalidation —
only LRU capacity eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.identifier import ComplexSubquery
from repro.sparql.ast import SelectQuery

from repro.serve.lru import LRUCache

__all__ = ["QueryPlan", "PlanCache"]


@dataclass(frozen=True)
class QueryPlan:
    """A query ready for routed execution: parsed AST + complex subquery."""

    key: str
    query: SelectQuery
    complex_subquery: Optional[ComplexSubquery]


class PlanCache(LRUCache[str, QueryPlan]):
    """A thread-safe LRU cache of :class:`QueryPlan` objects."""

    def __init__(self, capacity: int = 1024):
        super().__init__(capacity, what="plan cache")

    def put(self, plan: QueryPlan) -> None:  # type: ignore[override]
        super().put(plan.key, plan)
