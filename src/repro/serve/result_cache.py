"""Generation-validated LRU result cache.

Each entry stores the full routed execution of one query (bindings + the
:class:`~repro.core.metrics.QueryRecord` accounting) together with the
:attr:`DualStore.generation <repro.core.dualstore.DualStore.generation>` the
execution observed.  Correctness rests on two independent mechanisms:

1. **Eager invalidation** — the owning service registers an invalidation hook
   on the dual store, and every answer-changing mutation (``insert``,
   ``transfer_partition``, ``evict_partition``) empties the cache.
2. **Generation check at lookup** — even if no hook were registered (or an
   execution raced with a mutation), :meth:`ResultCache.get` only returns an
   entry whose recorded generation equals the store's *current* generation.

Either mechanism alone prevents stale hits; together they make staleness
impossible by construction rather than by caller discipline.

Note that transfers/evictions are invalidating even though they cannot change
query *answers*: they change routing, so a cached record's ``route`` and
modelled ``seconds`` would misreport how the store would execute the query
now — and the experiments' TTI accounting must stay truthful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.metrics import QueryRecord
from repro.execution import ExecutionResult

from repro.serve.lru import LRUCache

__all__ = ["CachedExecution", "ResultCache"]


@dataclass
class CachedExecution:
    """One cached routed execution, tagged with the generation it observed."""

    key: str
    result: ExecutionResult
    record: QueryRecord
    generation: int


class ResultCache(LRUCache[str, CachedExecution]):
    """A thread-safe LRU cache of :class:`CachedExecution` entries."""

    def __init__(self, capacity: int = 4096):
        super().__init__(capacity, what="result cache")
        #: Entries rejected by the lookup-time generation check (diagnostics).
        self.stale_rejections = 0

    def get(self, key: str, generation: int) -> Optional[CachedExecution]:  # type: ignore[override]
        """The entry for ``key``, or ``None`` if absent or stale.

        A stale entry (recorded under an *older* generation than the caller
        observed) is dropped on sight and counted in
        :attr:`stale_rejections`.  An entry from a *newer* generation than
        the caller's snapshot is a miss but is left in place: it was cached
        by a serve that already saw the mutation, so it is fresh for every
        up-to-date caller and must not be evicted by a straggler.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.generation != generation:
                if entry.generation < generation:
                    del self._entries[key]
                    self.stale_rejections += 1
                return None
            self._entries.move_to_end(key)
            return entry

    def put(self, entry: CachedExecution) -> None:  # type: ignore[override]
        super().put(entry.key, entry)

    def invalidate_all(self) -> int:
        """Drop every entry (mutation hook); returns the number dropped."""
        return self.clear()
