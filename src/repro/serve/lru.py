"""Thread-safe LRU cache shared by the serving layer's caches.

Both the plan cache and the result cache are capacity-bounded LRU maps; the
eviction and locking logic lives here once, and subclasses layer their own
lookup semantics (the result cache's generation check) on top using the
protected ``_lock``/``_entries`` so a compound check-and-drop stays atomic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

__all__ = ["LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Absence sentinel for lookups.  ``get`` must distinguish "key missing" from
#: "key present with a falsy value" — comparing the cached value against
#: ``None`` (as the original implementation did) silently treated 0, "", and
#: empty containers as misses and, worse, skipped their recency bump, so a
#: legitimately-falsy hot entry aged out under capacity pressure.
_MISSING = object()


class LRUCache(Generic[K, V]):
    """A capacity-bounded, thread-safe LRU map over hashable keys."""

    def __init__(self, capacity: int, what: str = "cache"):
        if capacity < 1:
            raise ValueError(f"{what} capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: K) -> Optional[V]:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                return None
            self._entries.move_to_end(key)
            return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> int:
        """Drop every entry; returns the number dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries
