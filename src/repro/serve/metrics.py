"""Service-level metrics for the query-serving layer.

The style mirrors :mod:`repro.cost.counters`: plain counter objects that the
service increments as it works, cheap to merge and to snapshot.  On top of the
counters the serving layer needs two things the store-level counters do not
provide:

* latency *distributions* (p50/p95, not just totals) — :class:`LatencyDigest`,
* an in-flight gauge (current/peak queue depth) — :class:`QueueGauge`.

Everything is aggregated under one :class:`ServiceMetrics` object exposed as
``QueryService.metrics``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields
from typing import Dict, List

__all__ = ["ServiceCounters", "LatencyDigest", "QueueGauge", "ServiceMetrics"]


@dataclass
class ServiceCounters:
    """Accumulated serving-layer events.

    Attributes
    ----------
    queries_served:
        Submissions answered (batch members and single queries alike).
    batches_served:
        ``run_batch`` invocations completed.
    executions:
        Queries actually executed against the stores (cache misses after
        within-batch deduplication).
    plan_cache_hits / plan_cache_misses:
        Parsed-plan cache outcomes (a hit skips the SPARQL parser and the
        complex-subquery identifier).
    result_cache_hits:
        Submissions served straight from the result cache.
    result_cache_misses:
        Distinct queries that had to be executed (equals ``executions``).
    duplicates_coalesced:
        Submissions that shared another submission's execution inside one
        batch (batch deduplication); counted as neither hit nor miss.
    invalidations:
        Result-cache entries dropped because the dual store mutated.
    invalidation_events:
        Times the result cache was emptied (one per invalidation-hook fire,
        however many entries each fire dropped).  A tuning epoch applying k
        moves through :meth:`DualStore.batch_mutations` contributes exactly 1.
    stale_rejections:
        Result-cache entries rejected at lookup time by the generation check
        (the belt-and-braces path; normally the invalidation hook already
        emptied the cache).  **Mirrored gauge**: the service copies the
        cache's own cumulative counter by assignment, so every snapshot
        already carries the full total — see :attr:`MIRRORED_GAUGES`.
    snapshots_taken:
        Durable checkpoints the service committed (``ServiceConfig.snapshot``
        policy triggers plus explicit ``checkpoint()`` calls).
    snapshot_failures:
        Checkpoint commits that failed.  Policy-triggered failures are
        recorded here (and in ``QueryService.last_snapshot_error``) instead
        of raising out of the mutation that triggered them.
    wal_records / wal_bytes:
        Delta-log appends (``SnapshotPolicy.log``): records durably written
        and their total framed bytes.  The churn benchmark compares these
        bytes against full-snapshot reload bytes.
    wal_failures:
        Delta-log appends or rotations that failed (recorded in
        ``QueryService.last_wal_error``; the log closes and the next
        successful snapshot commit re-anchors it — never raised out of the
        mutation that triggered the append).
    endpoint_requests:
        HTTP requests the SPARQL endpoint *admitted* into an execution slot
        (:mod:`repro.endpoint.server`).  **Mirrored gauge**: the endpoint's
        admission gate owns the cumulative total (it survives worker
        hot-reloads) and copies it in by assignment via
        :meth:`QueryService.record_endpoint`.
    shed_load:
        HTTP requests the endpoint shed with ``503`` + ``Retry-After``
        because the bounded admission queue was full (or the queued wait
        timed out).  **Mirrored gauge**, same discipline as
        ``endpoint_requests`` — the fault suite asserts this total matches
        the client-observed 503s exactly.
    query_timeouts:
        Executions cancelled cooperatively because they exceeded their
        deadline (:mod:`repro.resilience.deadline`); each one surfaced as a
        :class:`~repro.errors.QueryTimeoutError` (a 504 at the endpoint).
        Incremented by the service itself, so it sums across merges.
    worker_restarts:
        Worker processes a :class:`~repro.resilience.fleet.FleetMonitor`
        restarted (exits and stuck workers alike).  **Mirrored gauge**: the
        monitor owns the cumulative total and copies it in by assignment via
        :meth:`QueryService.record_resilience`.
    breaker_opens:
        Circuit-breaker trips in the serving path's client pool
        (:class:`~repro.endpoint.client.EndpointPool`).  **Mirrored gauge**,
        assigned via :meth:`QueryService.record_resilience`; the chaos suite
        asserts it exactly equals the injected kill schedule.
    """

    #: Fields the service mirrors *by assignment* from another cumulative
    #: counter instead of incrementing itself.  Two snapshots of one service
    #: both carry the full running total, so ``merge``/``add`` must take the
    #: max of these fields — summing would double-count every shared event.
    MIRRORED_GAUGES = frozenset(
        {
            "stale_rejections",
            "endpoint_requests",
            "shed_load",
            "worker_restarts",
            "breaker_opens",
        }
    )

    queries_served: int = 0
    batches_served: int = 0
    executions: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    duplicates_coalesced: int = 0
    invalidations: int = 0
    invalidation_events: int = 0
    stale_rejections: int = 0
    snapshots_taken: int = 0
    snapshot_failures: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    wal_failures: int = 0
    endpoint_requests: int = 0
    shed_load: int = 0
    query_timeouts: int = 0
    worker_restarts: int = 0
    breaker_opens: int = 0

    def merge(self, other: "ServiceCounters") -> "ServiceCounters":
        """Return a new counter object with both contributions combined
        (summed, except the :attr:`MIRRORED_GAUGES`, which take the max)."""
        merged = ServiceCounters()
        merged.add(self)
        merged.add(other)
        return merged

    def add(self, other: "ServiceCounters") -> None:
        """Accumulate ``other`` into this counter object in place."""
        for f in fields(ServiceCounters):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.name in self.MIRRORED_GAUGES:
                setattr(self, f.name, max(mine, theirs))
            else:
                setattr(self, f.name, mine + theirs)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: int(getattr(self, f.name)) for f in fields(ServiceCounters)}

    def copy(self) -> "ServiceCounters":
        clone = ServiceCounters()
        clone.add(self)
        return clone

    # Derived rates ---------------------------------------------------- #
    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    @property
    def result_cache_hit_rate(self) -> float:
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0


class LatencyDigest:
    """Latency samples with bounded memory and O(1) observation.

    ``count``, ``total``, and ``mean`` are always exact — they are plain
    scalar accumulators.  Percentiles are computed from a bounded sample
    reservoir: up to ``capacity`` observations every sample is retained, so
    percentiles are **exact** under the cap; beyond it, reservoir sampling
    (Algorithm R, seeded so two identically-fed digests agree) keeps a
    uniform sample and percentiles become estimates.  The previous
    implementation kept every sample sorted (`insort` under the service's
    metrics lock), which both leaked memory in a long-running service and
    made the hot path O(n) per observation.
    """

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("LatencyDigest capacity must be at least 1")
        self._capacity = capacity
        self._samples: List[float] = []
        self._count = 0
        self._total = 0.0
        self._rng = random.Random(0x5EED)

    def observe(self, seconds: float) -> None:
        self._count += 1
        self._total += seconds
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            # Algorithm R: keep each of the count observations in the
            # reservoir with probability capacity/count.
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self._samples[slot] = seconds

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sample_size(self) -> int:
        """Samples currently retained for percentile estimation (≤ capacity)."""
        return len(self._samples)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (q in [0, 100]) via nearest-rank over the
        retained samples (exact while ``count <= capacity``).

        Defined on every digest state, including the edges: an empty digest
        answers ``0.0`` for any ``q`` (there is no latency mass to report —
        never an exception), a single-observation digest answers that one
        observation for every ``q``, and ``p0``/``p100`` clamp to the
        smallest/largest retained sample rather than indexing off either end
        of the reservoir.
        """
        return self._rank_in(sorted(self._samples), q)

    @staticmethod
    def _rank_in(ordered: List[float], q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not ordered:
            return 0.0  # an empty digest has a defined (zero) percentile
        if len(ordered) == 1:
            return ordered[0]  # every percentile of one observation is it
        # Nearest rank, clamped to [1, n]: q=0 maps to the minimum instead
        # of ``ordered[-1]`` (rank 0 would wrap) and q=100 to the maximum
        # instead of one past the end.
        rank = min(len(ordered), max(1, math.ceil(q / 100.0 * len(ordered))))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def as_dict(self) -> Dict[str, float]:
        ordered = sorted(self._samples)  # one sort serves all percentiles
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self._rank_in(ordered, 50.0),
            "p95": self._rank_in(ordered, 95.0),
            "p99": self._rank_in(ordered, 99.0),
            "total": self.total,
        }


@dataclass
class QueueGauge:
    """Current and peak number of in-flight executions."""

    current: int = 0
    peak: int = 0

    def enter(self) -> None:
        self.current += 1
        if self.current > self.peak:
            self.peak = self.current

    def leave(self) -> None:
        self.current -= 1

    def as_dict(self) -> Dict[str, int]:
        return {"current": self.current, "peak": self.peak}


class ServiceMetrics:
    """Everything the service measures about itself.

    * ``counters`` — event counts (:class:`ServiceCounters`),
    * ``modelled_latency`` — the cost model's per-submission seconds (the
      paper's TTI currency; unchanged by caching, so it stays comparable to
      the uncached experiments),
    * ``wall_latency`` — wall-clock seconds per store execution (what caching
      actually improves),
    * ``queue`` — in-flight execution gauge.
    """

    def __init__(self) -> None:
        self.counters = ServiceCounters()
        self.modelled_latency = LatencyDigest()
        self.wall_latency = LatencyDigest()
        self.queue = QueueGauge()

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view for logging/printing."""
        return {
            "counters": self.counters.as_dict(),
            "plan_cache_hit_rate": self.counters.plan_cache_hit_rate,
            "result_cache_hit_rate": self.counters.result_cache_hit_rate,
            "modelled_latency": self.modelled_latency.as_dict(),
            "wall_latency": self.wall_latency.as_dict(),
            "queue": self.queue.as_dict(),
        }
