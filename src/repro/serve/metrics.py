"""Service-level metrics for the query-serving layer.

The style mirrors :mod:`repro.cost.counters`: plain counter objects that the
service increments as it works, cheap to merge and to snapshot.  On top of the
counters the serving layer needs two things the store-level counters do not
provide:

* latency *distributions* (p50/p95, not just totals) — :class:`LatencyDigest`,
* an in-flight gauge (current/peak queue depth) — :class:`QueueGauge`.

Everything is aggregated under one :class:`ServiceMetrics` object exposed as
``QueryService.metrics``.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, fields
from typing import Dict, List

__all__ = ["ServiceCounters", "LatencyDigest", "QueueGauge", "ServiceMetrics"]


@dataclass
class ServiceCounters:
    """Accumulated serving-layer events.

    Attributes
    ----------
    queries_served:
        Submissions answered (batch members and single queries alike).
    batches_served:
        ``run_batch`` invocations completed.
    executions:
        Queries actually executed against the stores (cache misses after
        within-batch deduplication).
    plan_cache_hits / plan_cache_misses:
        Parsed-plan cache outcomes (a hit skips the SPARQL parser and the
        complex-subquery identifier).
    result_cache_hits:
        Submissions served straight from the result cache.
    result_cache_misses:
        Distinct queries that had to be executed (equals ``executions``).
    duplicates_coalesced:
        Submissions that shared another submission's execution inside one
        batch (batch deduplication); counted as neither hit nor miss.
    invalidations:
        Result-cache entries dropped because the dual store mutated.
    stale_rejections:
        Result-cache entries rejected at lookup time by the generation check
        (the belt-and-braces path; normally the invalidation hook already
        emptied the cache).
    """

    queries_served: int = 0
    batches_served: int = 0
    executions: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    duplicates_coalesced: int = 0
    invalidations: int = 0
    stale_rejections: int = 0

    def merge(self, other: "ServiceCounters") -> "ServiceCounters":
        """Return a new counter object with both contributions summed."""
        merged = ServiceCounters()
        for f in fields(ServiceCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def add(self, other: "ServiceCounters") -> None:
        """Accumulate ``other`` into this counter object in place."""
        for f in fields(ServiceCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, int]:
        return {f.name: int(getattr(self, f.name)) for f in fields(ServiceCounters)}

    def copy(self) -> "ServiceCounters":
        clone = ServiceCounters()
        clone.add(self)
        return clone

    # Derived rates ---------------------------------------------------- #
    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    @property
    def result_cache_hit_rate(self) -> float:
        total = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / total if total else 0.0


class LatencyDigest:
    """Latency samples with exact percentile queries.

    Samples are kept sorted (insertion via ``bisect``), so ``percentile`` is
    O(1) and ``observe`` is O(n) in the worst case — fine at benchmark scale;
    a production deployment would swap in a t-digest without changing the
    interface.
    """

    def __init__(self) -> None:
        self._sorted: List[float] = []
        self._total = 0.0

    def observe(self, seconds: float) -> None:
        insort(self._sorted, seconds)
        self._total += seconds

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / len(self._sorted) if self._sorted else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (q in [0, 100]) via nearest-rank."""
        if not self._sorted:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        rank = max(1, math.ceil(q / 100.0 * len(self._sorted)))
        return self._sorted[min(rank, len(self._sorted)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "total": self.total,
        }


@dataclass
class QueueGauge:
    """Current and peak number of in-flight executions."""

    current: int = 0
    peak: int = 0

    def enter(self) -> None:
        self.current += 1
        if self.current > self.peak:
            self.peak = self.current

    def leave(self) -> None:
        self.current -= 1

    def as_dict(self) -> Dict[str, int]:
        return {"current": self.current, "peak": self.peak}


class ServiceMetrics:
    """Everything the service measures about itself.

    * ``counters`` — event counts (:class:`ServiceCounters`),
    * ``modelled_latency`` — the cost model's per-submission seconds (the
      paper's TTI currency; unchanged by caching, so it stays comparable to
      the uncached experiments),
    * ``wall_latency`` — wall-clock seconds per store execution (what caching
      actually improves),
    * ``queue`` — in-flight execution gauge.
    """

    def __init__(self) -> None:
        self.counters = ServiceCounters()
        self.modelled_latency = LatencyDigest()
        self.wall_latency = LatencyDigest()
        self.queue = QueueGauge()

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view for logging/printing."""
        return {
            "counters": self.counters.as_dict(),
            "plan_cache_hit_rate": self.counters.plan_cache_hit_rate,
            "result_cache_hit_rate": self.counters.result_cache_hit_rate,
            "modelled_latency": self.modelled_latency.as_dict(),
            "wall_latency": self.wall_latency.as_dict(),
            "queue": self.queue.as_dict(),
        }
