"""Concurrent query-serving layer: caches, batched admission, service metrics.

This package is the serving substrate in front of the paper's dual-store
structure.  :class:`QueryService` fronts a loaded
:class:`~repro.core.dualstore.DualStore` and serves single queries or whole
workload batches with plan caching, generation-validated result caching,
within-batch deduplication, and a thread pool over the read-only stores.  See
``docs/architecture.md`` for the cache-invalidation contract.
"""

from repro.serve.metrics import LatencyDigest, QueueGauge, ServiceCounters, ServiceMetrics
from repro.serve.plan_cache import PlanCache, QueryPlan
from repro.serve.result_cache import CachedExecution, ResultCache
from repro.serve.service import QueryService, ServedBatch, ServiceConfig

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServedBatch",
    "PlanCache",
    "QueryPlan",
    "ResultCache",
    "CachedExecution",
    "ServiceCounters",
    "ServiceMetrics",
    "LatencyDigest",
    "QueueGauge",
]
