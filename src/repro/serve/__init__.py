"""Concurrent query-serving layer: caches, batched admission, service metrics.

This package is the serving substrate in front of the paper's dual-store
structure.  :class:`QueryService` fronts a loaded
:class:`~repro.core.dualstore.DualStore` and serves single queries or whole
workload batches with plan caching, generation-validated result caching,
within-batch deduplication, and a thread pool over the read-only stores.
:mod:`repro.serve.adaptive` adds opt-in online adaptive tuning: a sliding
window of served complex subqueries plus a tuning daemon that re-places
partitions epoch by epoch while serving continues.  See
``docs/architecture.md`` (§3 for the cache-invalidation contract, §6 for the
adaptive subsystem).  Durable checkpointing and warm restarts
(``ServiceConfig.snapshot`` / :meth:`QueryService.restore`) are built on
:mod:`repro.persist` (§7).
"""

from repro.serve.adaptive import (
    AdaptiveConfig,
    AdaptiveMetrics,
    EpochReport,
    ReadWriteLock,
    TuningDaemon,
    WindowEntry,
    WorkloadWindow,
)
from repro.persist.snapshot import SnapshotManifest, SnapshotPolicy
from repro.serve.metrics import LatencyDigest, QueueGauge, ServiceCounters, ServiceMetrics
from repro.serve.plan_cache import PlanCache, QueryPlan
from repro.serve.result_cache import CachedExecution, ResultCache
from repro.serve.service import QueryService, ServedBatch, ServiceConfig

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServedBatch",
    "SnapshotManifest",
    "SnapshotPolicy",
    "AdaptiveConfig",
    "AdaptiveMetrics",
    "EpochReport",
    "ReadWriteLock",
    "TuningDaemon",
    "WindowEntry",
    "WorkloadWindow",
    "PlanCache",
    "QueryPlan",
    "ResultCache",
    "CachedExecution",
    "ServiceCounters",
    "ServiceMetrics",
    "LatencyDigest",
    "QueueGauge",
]
