"""Online adaptive tuning: re-place partitions while the service keeps serving.

The paper's headline property is *incremental* tuning — DOTIL keeps
re-learning which triple partitions deserve the bounded graph store as the
workload drifts.  Until now the tuner only ran in offline experiment scripts;
a :class:`~repro.serve.service.QueryService` served whatever placement it was
given, forever.  This module closes the loop:

* :class:`WorkloadWindow` — a bounded sliding window of the complex
  subqueries recently *served* (harvested per submission, cache hits
  included, so the window reflects traffic frequency, not just cache
  misses).  As the template mix drifts, old-phase entries age out.
* :class:`TuningDaemon` — runs epoch-based tuning: snapshot the window, hand
  it to any :class:`~repro.core.tuner.BaseTuner` (DOTIL by default), and let
  the tuner mutate the dual store — all inside
  :meth:`DualStore.batch_mutations <repro.core.dualstore.DualStore.batch_mutations>`,
  so an epoch of k transfers/evictions bumps the generation **once** and the
  service's result cache is emptied once, not k times.
* :class:`ReadWriteLock` — the concurrency seam.  Store mutations must never
  run concurrently with query execution (the
  :class:`~repro.core.processor.QueryProcessor` contract), so serves hold the
  gate shared and a tuning epoch holds it exclusively.  In-flight serves
  drain, the epoch applies, serving resumes against the new placement.

Epochs can be driven three ways: explicitly (:meth:`TuningDaemon.run_epoch`
/ ``QueryService.tune_now()``), automatically every
:attr:`AdaptiveConfig.epoch_queries` harvested submissions (deterministic —
used by the drift benchmark), or on a wall-clock interval from a background
thread (:meth:`TuningDaemon.start`).

Accounting stays honest: per epoch the daemon records the moves applied, the
modelled import/evict seconds (symmetric — see
:meth:`DualStore.evict_partition`), the modelled TTI of the window before
and after the epoch (so convergence after a drift is measurable), and the
result-cache invalidations *avoided* by batching (k moves − 1 fire).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional

from repro.core.dualstore import DualStore
from repro.core.identifier import ComplexSubquery
from repro.core.tuner import BaseTuner, Dotil, TuningReport
from repro.errors import TuningError
from repro.sparql.ast import SelectQuery

__all__ = [
    "AdaptiveConfig",
    "AdaptiveMetrics",
    "EpochReport",
    "ReadWriteLock",
    "TuningDaemon",
    "WindowEntry",
    "WorkloadWindow",
]


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Readers (query serves) share the lock; a writer (tuning epoch, or any
    mutation routed through the service) is exclusive.  Writer preference —
    arriving writers block *new* readers — keeps an epoch from starving under
    steady traffic.

    The lock is **not** re-entrant: if the thread currently holding the
    write side tries to acquire either side again (e.g. a tuner epoch
    callback that serves a query — or mutates — *through the service*), it
    would wait for itself forever.  Both cases raise
    :class:`~repro.errors.TuningError` immediately instead of wedging the
    whole service.  Known limitation: re-entrant *read* acquisition by a
    reader thread while a writer waits can still deadlock — detecting it
    would need per-thread read tracking on the hot serve path, and no code
    in this repository nests serves.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._writer_thread: Optional[int] = None

    def acquire_read(self) -> None:
        with self._condition:
            if self._writer and self._writer_thread == threading.get_ident():
                raise TuningError(
                    "re-entrant read acquisition: this thread holds the write side of "
                    "the serving gate (a tuning epoch or mutation in progress) and "
                    "cannot serve a query through it without deadlocking; run the "
                    "query after the epoch, or directly against the store"
                )
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            if self._writer and self._writer_thread == threading.get_ident():
                raise TuningError(
                    "re-entrant write acquisition: this thread already holds the write "
                    "side of the serving gate (a tuning epoch or mutation in progress) "
                    "and would wait on itself forever; mutate the dual store directly "
                    "from inside an epoch instead of going through the service"
                )
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            except BaseException:
                # An interrupt mid-wait (e.g. KeyboardInterrupt) must not
                # leave a phantom waiting writer behind — readers spin on the
                # counter forever and the whole service wedges.
                self._writers_waiting -= 1
                self._condition.notify_all()
                raise
            self._writers_waiting -= 1
            self._writer = True
            self._writer_thread = threading.get_ident()

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._writer_thread = None
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass(frozen=True)
class WindowEntry:
    """One harvested submission: the plan key, the full query, and its
    complex subquery (always present — simple queries are not harvested)."""

    key: str
    query: SelectQuery
    complex_subquery: ComplexSubquery


class WorkloadWindow:
    """A bounded, thread-safe sliding window of served complex subqueries.

    One entry per *submission* (cache hits and within-batch duplicates
    included): the tuner's reward amortisation and the baselines' frequency
    ranking both weigh partitions by how often traffic touches them, and a
    cache absorbing a hot template must not hide that heat from the tuner.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("WorkloadWindow capacity must be at least 1")
        self.capacity = capacity
        self._entries: Deque[WindowEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._pending = 0
        self.harvested = 0

    def record(self, key: str, query: SelectQuery, complex_subquery: ComplexSubquery) -> None:
        with self._lock:
            self._entries.append(WindowEntry(key, query, complex_subquery))
            self._pending += 1
            self.harvested += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def pending(self) -> int:
        """Submissions harvested since the last epoch (the auto-epoch trigger)."""
        with self._lock:
            return self._pending

    def snapshot(self) -> List[WindowEntry]:
        """The current window contents, oldest first."""
        with self._lock:
            return list(self._entries)

    def mark_epoch(self) -> List[WindowEntry]:
        """Snapshot the window and reset the pending-submission trigger."""
        with self._lock:
            self._pending = 0
            return list(self._entries)

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """JSON-serializable window state.  Queries persist as their
        deterministic SPARQL rendering; the complex subqueries are re-derived
        on restore (the identifier is a pure function of the query)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "pending": self._pending,
                "harvested": self.harvested,
                "entries": [[entry.key, entry.query.to_sparql()] for entry in self._entries],
            }

    def restore_state(self, state: dict, dual: DualStore) -> None:
        from repro.sparql.parser import parse_query  # local: parser imports nothing of serve

        with self._lock:
            self._entries.clear()
            for key, text in state["entries"]:
                query = parse_query(text)
                complex_subquery = dual.identifier.identify(query)
                if complex_subquery is None:  # pragma: no cover - harvested entries are complex
                    continue
                self._entries.append(WindowEntry(key, query, complex_subquery))
            self._pending = int(state["pending"])
            self.harvested = int(state["harvested"])


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tunables of the online adaptive tuning subsystem.

    Attributes
    ----------
    window_size:
        Sliding-window capacity in harvested submissions.  Size it to roughly
        one traffic epoch so a drifted mix displaces the old phase within an
        epoch or two.
    epoch_queries:
        Run a tuning epoch automatically once this many new submissions have
        been harvested (checked at the end of each serve).  ``0`` disables
        auto epochs — drive them via ``QueryService.tune_now()`` or the
        background thread instead.
    tuner_factory:
        Builds the tuner from the dual store; defaults to DOTIL with the
        store's own config.  Any :class:`~repro.core.tuner.BaseTuner` works —
        the daemon only calls ``tune()``.
    measure_tti:
        Measure the modelled TTI of the window's distinct queries before and
        after each epoch that applied moves (two extra evaluation passes per
        such epoch).  This is the convergence signal the drift benchmark
        plots; disable it to make epochs cheaper.  The measurement passes
        execute through the stores, so *physical* observability — e.g. the
        sharded backend's per-shard probe counts behind
        ``QueryService.shard_metrics()`` — includes them; service-level
        counters (``executions`` etc.) do not.  Disable for strictly
        traffic-only physical metrics.
    """

    window_size: int = 256
    epoch_queries: int = 64
    tuner_factory: Callable[[DualStore], BaseTuner] = Dotil
    measure_tti: bool = True


@dataclass
class EpochReport:
    """What one tuning epoch observed and did."""

    index: int
    window_size: int
    report: Optional[TuningReport]
    generation_before: int
    generation_after: int
    tti_before: Optional[float] = None
    tti_after: Optional[float] = None

    @property
    def moves(self) -> int:
        return self.report.moves if self.report is not None else 0

    @property
    def invalidations(self) -> int:
        """Generation bumps (= result-cache invalidations) this epoch caused.

        At most 1 by construction — the whole epoch runs inside
        ``DualStore.batch_mutations``."""
        return self.generation_after - self.generation_before

    @property
    def tti_delta(self) -> Optional[float]:
        """Modelled window-TTI improvement (positive = epoch helped)."""
        if self.tti_before is None or self.tti_after is None:
            return None
        return self.tti_before - self.tti_after


@dataclass
class AdaptiveMetrics:
    """Cumulative epoch accounting, exposed as
    ``QueryService.adaptive_metrics()``."""

    epochs: int = 0
    epochs_with_moves: int = 0
    epoch_failures: int = 0
    transfers_applied: int = 0
    evictions_applied: int = 0
    import_seconds: float = 0.0
    evict_seconds: float = 0.0
    invalidations_avoided: int = 0
    tti_delta_total: float = 0.0
    last_window_tti_before: float = 0.0
    last_window_tti_after: float = 0.0

    @property
    def moves_applied(self) -> int:
        return self.transfers_applied + self.evictions_applied

    def as_dict(self) -> Dict[str, float]:
        return {
            "epochs": float(self.epochs),
            "epochs_with_moves": float(self.epochs_with_moves),
            "epoch_failures": float(self.epoch_failures),
            "moves_applied": float(self.moves_applied),
            "transfers_applied": float(self.transfers_applied),
            "evictions_applied": float(self.evictions_applied),
            "import_seconds": self.import_seconds,
            "evict_seconds": self.evict_seconds,
            "invalidations_avoided": float(self.invalidations_avoided),
            "tti_delta_total": self.tti_delta_total,
            "last_window_tti_before": self.last_window_tti_before,
            "last_window_tti_after": self.last_window_tti_after,
        }


class TuningDaemon:
    """Runs epoch-based tuning against the live workload window.

    The daemon owns no threads until :meth:`start` is called; `run_epoch` is
    synchronous and safe to call from any thread (epochs are serialized).
    Every epoch:

    1. takes the write side of the gate (in-flight serves drain, new serves
       and the store's caches wait),
    2. snapshots the window and resets the auto-epoch trigger,
    3. optionally prices the window's distinct queries (TTI before),
    4. runs ``tuner.tune(window)`` inside ``dual.batch_mutations()`` — the
       tuner transfers/evicts freely, physical effects are immediate, but the
       generation bumps coalesce into **one** (one result-cache invalidation
       per epoch, however many moves were applied),
    5. re-prices the window if moves were applied (TTI after), and
    6. folds the outcome into :class:`AdaptiveMetrics`.
    """

    def __init__(
        self,
        dual: DualStore,
        tuner: BaseTuner,
        window: WorkloadWindow,
        gate: ReadWriteLock,
        config: AdaptiveConfig,
    ):
        self.dual = dual
        self.tuner = tuner
        self.window = window
        self.gate = gate
        self.config = config
        self.metrics = AdaptiveMetrics()
        self.last_epoch: Optional[EpochReport] = None
        #: Last exception a *background* epoch raised (diagnostics; the
        #: explicit run_epoch path propagates instead).
        self.last_error: Optional[Exception] = None
        #: Invoked (outside the gate) after every *background-thread* epoch.
        #: The owning service points this at its snapshot-policy check, so
        #: daemon-driven epochs hit the same checkpoint boundary as
        #: ``tune_now()`` and auto epochs — without it, a background-driven
        #: service with durability configured would never checkpoint.
        self.post_epoch_hook: Optional[Callable[[], object]] = None
        self._epoch_lock = threading.Lock()
        # Guards metrics/last_epoch for observers: _fold mutates field by
        # field, and a reader overlapping it would see a torn snapshot that
        # breaks the moves-vs-invalidations reconciliation mid-update.
        self._metrics_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Epochs
    # ------------------------------------------------------------------ #
    def run_epoch(self) -> EpochReport:
        """Run one tuning epoch now (blocking until in-flight serves drain)."""
        with self._epoch_lock:
            return self._run_epoch_locked()

    def _run_epoch_locked(self) -> EpochReport:
        with self.gate.write_locked():
            entries = self.window.mark_epoch()
            generation_before = self.dual.generation
            epoch = EpochReport(
                index=self.metrics.epochs,
                window_size=len(entries),
                report=None,
                generation_before=generation_before,
                generation_after=generation_before,
            )
            if not entries:
                with self._metrics_lock:
                    self.metrics.epochs += 1
                    self.last_epoch = epoch
                return epoch

            if self.config.measure_tti:
                epoch.tti_before = self._window_tti(entries)

            log_mark = len(self.dual.transfer_log)
            try:
                with self.dual.batch_mutations():
                    epoch.report = self.tuner.tune([e.complex_subquery for e in entries])
            except BaseException:
                # The tuner may have applied moves before failing — the batch
                # context already fired their (single) invalidation, so the
                # epoch accounting must reflect them or the books stop
                # reconciling (invalidations_avoided == moves − fires).
                epoch.report = self._partial_report(log_mark)
                epoch.generation_after = self.dual.generation
                self._fold(epoch)
                raise
            epoch.generation_after = self.dual.generation

            if self.config.measure_tti:
                # Placement unchanged ⇒ modelled costs unchanged: skip the
                # second evaluation pass instead of re-deriving the same sum.
                epoch.tti_after = (
                    self._window_tti(entries) if epoch.moves else epoch.tti_before
                )

        self._fold(epoch)
        return epoch

    def maybe_run_epoch(self) -> Optional[EpochReport]:
        """Run an epoch if the auto-epoch submission threshold was reached.

        The threshold is re-checked under the epoch lock: concurrent serves
        may both see it crossed, but only the first runs an epoch — the
        second finds the trigger reset and backs off instead of re-tuning an
        unchanged window (and re-invalidating the just-rewarmed cache).
        """
        threshold = self.config.epoch_queries
        if threshold <= 0 or self.window.pending < threshold:
            return None
        with self._epoch_lock:
            if self.window.pending < threshold:
                return None
            return self._run_epoch_locked()

    def _partial_report(self, log_mark: int) -> TuningReport:
        """What a *failed* ``tune()`` physically did, reconstructed from the
        dual store's transfer log (entries appended since ``log_mark``).

        Seconds are re-priced from the current partition sizes — identical to
        what the aborted calls returned, except under a graph-store throttle
        (close enough for failure-path accounting).
        """
        report = TuningReport()
        sizes = self.dual.partition_sizes()
        model = self.dual.cost_model
        for kind, predicate in self.dual.transfer_log[log_mark:]:
            size = sizes.get(predicate, 0)
            if kind == "transfer":
                report.transferred.append(predicate)
                report.import_seconds += model.graph_import_seconds(size)
            else:
                report.evicted.append(predicate)
                report.evict_seconds += model.graph_evict_seconds(size)
        return report

    def _window_tti(self, entries: List[WindowEntry]) -> float:
        """Modelled TTI of the window under the *current* placement.

        Distinct queries are priced once (straight through the processor —
        the serving caches must not mask a placement change) and weighted by
        their multiplicity in the window, so the sum is what serving the
        window's traffic would cost right now.
        """
        priced: Dict[str, float] = {}
        total = 0.0
        for entry in entries:
            seconds = priced.get(entry.key)
            if seconds is None:
                processed = self.dual.processor.process(entry.query, entry.complex_subquery)
                seconds = priced[entry.key] = processed.record.seconds
            total += seconds
        return total

    def _fold(self, epoch: EpochReport) -> None:
        with self._metrics_lock:
            metrics = self.metrics
            metrics.epochs += 1
            report = epoch.report
            if report is not None:
                metrics.transfers_applied += len(report.transferred)
                metrics.evictions_applied += len(report.evicted)
                metrics.import_seconds += report.import_seconds
                metrics.evict_seconds += report.evict_seconds
                if epoch.moves:
                    metrics.epochs_with_moves += 1
                    # Unbatched, every move would have fired the invalidation
                    # hook; batched, the epoch fired it epoch.invalidations
                    # (≤ 1) times.
                    metrics.invalidations_avoided += epoch.moves - epoch.invalidations
            if epoch.tti_delta is not None:
                metrics.tti_delta_total += epoch.tti_delta
                metrics.last_window_tti_before = epoch.tti_before or 0.0
                metrics.last_window_tti_after = epoch.tti_after or 0.0
            self.last_epoch = epoch

    def metrics_as_dict(self) -> Dict[str, float]:
        """A consistent snapshot of the cumulative epoch metrics."""
        with self._metrics_lock:
            return self.metrics.as_dict()

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """The adaptive layer's warm-restart payload: the workload window,
        the tuner's learned state (when the tuner supports it — DOTIL does),
        and the cumulative epoch metrics."""
        state: dict = {"window": self.window.snapshot_state()}
        tuner_snapshot = getattr(self.tuner, "snapshot_state", None)
        if callable(tuner_snapshot):
            state["tuner"] = tuner_snapshot()
        with self._metrics_lock:
            state["metrics"] = self.metrics.as_dict()
        return state

    def restore_state(self, state: dict) -> None:
        self.window.restore_state(state["window"], self.dual)
        tuner_state = state.get("tuner")
        tuner_restore = getattr(self.tuner, "restore_state", None)
        if tuner_state is not None and callable(tuner_restore):
            if tuner_state.get("name") == getattr(self.tuner, "name", None):
                tuner_restore(tuner_state)
        metrics = state.get("metrics")
        if metrics:
            with self._metrics_lock:
                m = self.metrics
                m.epochs = int(metrics.get("epochs", 0))
                m.epochs_with_moves = int(metrics.get("epochs_with_moves", 0))
                m.epoch_failures = int(metrics.get("epoch_failures", 0))
                m.transfers_applied = int(metrics.get("transfers_applied", 0))
                m.evictions_applied = int(metrics.get("evictions_applied", 0))
                m.import_seconds = float(metrics.get("import_seconds", 0.0))
                m.evict_seconds = float(metrics.get("evict_seconds", 0.0))
                m.invalidations_avoided = int(metrics.get("invalidations_avoided", 0))
                m.tti_delta_total = float(metrics.get("tti_delta_total", 0.0))
                m.last_window_tti_before = float(metrics.get("last_window_tti_before", 0.0))
                m.last_window_tti_after = float(metrics.get("last_window_tti_after", 0.0))

    # ------------------------------------------------------------------ #
    # Background operation
    # ------------------------------------------------------------------ #
    def start(self, interval_seconds: float) -> None:
        """Run epochs from a background thread every ``interval_seconds``.

        The thread skips an interval when nothing new was harvested, so an
        idle service does not churn the tuner.  Idempotent stop via
        :meth:`stop` (also called by ``QueryService.close``).
        """
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self._thread is not None:
            raise RuntimeError("the tuning daemon is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, args=(interval_seconds,), name="repro-tuning-daemon", daemon=True
        )
        self._thread.start()

    def _loop(self, interval_seconds: float) -> None:
        while not self._stop.wait(interval_seconds):
            if not self.window.pending:
                continue
            try:
                self.run_epoch()
                hook = self.post_epoch_hook
                if hook is not None:
                    hook()
            except Exception as exc:
                # One failing epoch (a buggy custom tuner, a transient error
                # in TTI pricing) must not silently kill adaptation for the
                # rest of the service's life: record it and retry next tick.
                # The explicit run_epoch()/tune_now() path still propagates.
                with self._metrics_lock:
                    self.last_error = exc
                    self.metrics.epoch_failures += 1

    def stop(self) -> None:
        # Captured locally so concurrent stop() calls (close() racing a
        # direct stop()) both join the same thread instead of one of them
        # dereferencing None; a double join is harmless.
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None
