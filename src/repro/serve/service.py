"""The concurrent query-serving layer in front of a :class:`DualStore`.

``DualStore.run_query`` processes one query at a time and re-parses,
re-identifies, and re-executes from scratch on every call.  That is the right
granularity for the paper's experiments, but not for *serving* a workload:
template-driven traffic repeats the same query texts constantly, and batches
contain outright duplicates.  :class:`QueryService` adds the serving substrate
on top, without changing any store or tuner semantics:

* a **plan cache** (:mod:`repro.serve.plan_cache`) keyed by canonical query
  text, so repeated template instantiations skip the SPARQL parser and the
  complex-subquery identifier;
* a generation-validated **result cache** (:mod:`repro.serve.result_cache`)
  invalidated through :meth:`DualStore.add_invalidation_hook`, so a cached
  answer can never survive an ``insert``/``transfer_partition``/
  ``evict_partition``;
* a **batched admission path** (:meth:`QueryService.run_batch`) that
  deduplicates identical queries within a batch and executes the distinct
  misses concurrently in a thread pool — query processing only reads store
  state, so read-side parallelism is safe (see
  :class:`~repro.core.processor.QueryProcessor`'s concurrency contract);
* **service metrics** (:mod:`repro.serve.metrics`): cache hit rates, p50/p95
  latency, and queue depth — plus per-shard probe/queue-depth metrics
  (:meth:`QueryService.shard_metrics`) when the dual store's relational
  master copy is a :class:`~repro.relstore.sharded.ShardedRelationalStore`
  (the service then also owns a dedicated scatter pool for shard probes);
* opt-in **online adaptive tuning** (:mod:`repro.serve.adaptive`, via
  ``ServiceConfig.adaptive``): served complex subqueries are harvested into
  a sliding :class:`~repro.serve.adaptive.WorkloadWindow` and a
  :class:`~repro.serve.adaptive.TuningDaemon` re-tunes the physical design
  epoch by epoch — exclusive with in-flight serves through a read/write
  gate, each epoch's moves batched into a single result-cache invalidation.

Accounting is preserved: every submitted query yields exactly one
:class:`~repro.core.metrics.QueryRecord`, and cached/deduplicated records keep
the modelled ``seconds`` of the execution they share (flagged via
``record.from_cache``), so TTI computed over served records equals the TTI of
the uncached loop — the caches buy wall-clock time, not metric distortion.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.dualstore import DualStore
from repro.core.metrics import BatchResult, QueryRecord
from repro.core.processor import ProcessedQuery
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import QueryTimeoutError, SnapshotError
from repro.resilience.deadline import Deadline, deadline_scope
from repro.execution import ExecutionResult
from repro.persist.snapshot import (
    CapturedSnapshot,
    SnapshotManifest,
    SnapshotPolicy,
    capture_snapshot,
    commit_snapshot,
    load_snapshot,
)
from repro.persist.wal import DeltaLog, WalRecord, apply_record, restore_with_log
from repro.rdf.terms import IRI, Triple
from repro.relstore.sharded import ShardedRelationalStore
from repro.sparql.ast import SelectQuery
from repro.sparql.parser import canonical_query_text, parse_query

from repro.serve.adaptive import (
    AdaptiveConfig,
    EpochReport,
    ReadWriteLock,
    TuningDaemon,
    WorkloadWindow,
)
from repro.serve.lru import LRUCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.plan_cache import PlanCache, QueryPlan
from repro.serve.result_cache import CachedExecution, ResultCache

__all__ = ["ServiceConfig", "ServedBatch", "IngestReport", "QueryService"]

#: A query may be submitted as raw SPARQL text or as an already-parsed AST.
QueryLike = Union[str, SelectQuery]


def _result_view(result: ExecutionResult) -> ExecutionResult:
    """A fresh :class:`ExecutionResult` shell over shared solution data.

    Served results cross the cache boundary in both directions (stored on a
    miss, returned on a hit), so handing out the cached object itself would
    let one consumer's in-place edit (sorting bindings, merging counters)
    corrupt every other consumer.  The shell gets its own bindings list and
    counters object; the binding dicts themselves are shared and treated as
    immutable, as everywhere else in the codebase.
    """
    return ExecutionResult(
        bindings=list(result.bindings),
        variables=result.variables,
        counters=result.counters.copy(),
        seconds=result.seconds,
        store=result.store,
        truncated=result.truncated,
        scatter=result.scatter,  # frozen, safe to share across views
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer.

    Attributes
    ----------
    plan_cache_size:
        LRU capacity of the parsed-plan cache (entries = distinct texts).
    result_cache_size:
        LRU capacity of the result cache (entries = distinct queries).
    max_workers:
        Thread-pool width for batch execution; ``1`` serves batches inline
        with no pool at all.  With the bundled pure-Python engines the GIL
        serializes the CPU-bound execution, so the pool mainly exercises the
        concurrency seam (and shows up in the queue-depth gauge); it pays off
        for real once a store backend releases the GIL (I/O, native engines).
    cache_results:
        Disable to keep only the plan cache (useful for measuring the two
        caches separately).
    adaptive:
        Opt-in online adaptive tuning (:mod:`repro.serve.adaptive`).  When
        set, the service harvests served complex subqueries into a sliding
        :class:`~repro.serve.adaptive.WorkloadWindow` and owns a
        :class:`~repro.serve.adaptive.TuningDaemon` that re-tunes the dual
        store's physical design epoch by epoch, concurrently-safely with
        in-flight serves.  ``None`` (the default) serves a frozen placement,
        exactly as before.
    snapshot:
        Opt-in durable checkpointing (:mod:`repro.persist`).  When set, the
        service snapshots the dual store (plus the adaptive window/tuner
        state when adaptive tuning is on) under the policy's path whenever
        its mutation-count or interval trigger fires — always under the
        writer gate, so every snapshot is a consistent cut.  Restart with
        :meth:`QueryService.restore`.  ``None`` (the default) keeps the
        service memory-only.  With ``SnapshotPolicy(log=True)`` the service
        also keeps a write-ahead delta log (:mod:`repro.persist.wal`): every
        mutation appends one record, and the policy triggers become full
        snapshot + log rotation thresholds.
    gated:
        Create the read/write gate even without adaptive tuning.  Required
        when mutations (or delta-log catch-up via
        :meth:`QueryService.apply_wal_records`) run concurrently with
        serving — the follower workers and the churn benchmark's leader use
        this.  Implied by ``adaptive``.
    default_deadline_seconds:
        Wall-clock budget applied to every submission that does not carry
        its own ``deadline_seconds`` (:mod:`repro.resilience.deadline`).
        An over-budget execution raises
        :class:`~repro.errors.QueryTimeoutError` and frees its thread;
        ``None`` (the default) serves unbudgeted, exactly as before.
    engine:
        Expected relational execution engine of the fronted dual store
        (``"idspace"``, ``"columnar"``, …).  The service validates it against
        ``dual.relational.engine`` at construction and fails fast on a
        mismatch — deployment config naming one engine while the store runs
        another is a misconfiguration, not something to paper over.  ``None``
        (the default) accepts whatever the store runs.
    """

    plan_cache_size: int = 1024
    result_cache_size: int = 4096
    max_workers: int = 4
    cache_results: bool = True
    adaptive: Optional[AdaptiveConfig] = None
    snapshot: Optional[SnapshotPolicy] = None
    gated: bool = False
    default_deadline_seconds: Optional[float] = None
    engine: Optional[str] = None


@dataclass
class ServedBatch:
    """The outcome of one ``run_batch`` call: one entry per submitted query.

    ``cache_hits`` counts submissions answered by the *result cache*;
    ``coalesced`` counts submissions that shared a batch-mate's execution
    (within-batch dedup).  Both kinds carry ``record.from_cache = True``;
    the remaining ``len(self) - cache_hits - coalesced`` submissions were
    fresh store executions.
    """

    executions: List[ProcessedQuery] = field(default_factory=list)
    cache_hits: int = 0
    coalesced: int = 0

    @property
    def records(self) -> List[QueryRecord]:
        return [execution.record for execution in self.executions]

    @property
    def tti(self) -> float:
        """Modelled time-to-insight of the batch (sum of record seconds)."""
        return sum((execution.record.seconds for execution in self.executions), 0.0)

    def batch_result(self, index: int = 0) -> BatchResult:
        """Adapt to the experiments' :class:`BatchResult` for TTI reporting."""
        return BatchResult(index=index, records=self.records)

    def __len__(self) -> int:
        return len(self.executions)

    def __iter__(self):
        return iter(self.executions)


@dataclass
class IngestReport:
    """What one :meth:`QueryService.ingest_stream` call did."""

    triples: int = 0
    chunks: int = 0
    modelled_seconds: float = 0.0


class QueryService:
    """Serves queries and whole workload batches from a dual store.

    Parameters
    ----------
    dual:
        The (loaded) dual store to front.  The service registers an
        invalidation hook on it; call :meth:`close` (or use the service as a
        context manager) to detach it and stop the worker pool.
    config:
        Serving tunables; defaults are fine for the bundled benchmarks.
    """

    def __init__(self, dual: DualStore, config: Optional[ServiceConfig] = None):
        self.dual = dual
        self.config = config or ServiceConfig()
        if self.config.engine is not None:
            store_engine = getattr(dual.relational, "engine", None)
            if store_engine != self.config.engine:
                raise ValueError(
                    f"ServiceConfig.engine={self.config.engine!r} but the dual store's "
                    f"relational backend runs engine {store_engine!r}"
                )
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.result_cache = ResultCache(self.config.result_cache_size)
        # Memo for parsed-query canonical keys: to_sparql() + re-tokenization
        # is parser-comparable work, so equal queries (not just the same
        # object) share one computation.  Per-service, so the memory lives
        # and dies with the service rather than pinning ASTs process-wide.
        self._key_memo: LRUCache[SelectQuery, str] = LRUCache(
            self.config.plan_cache_size, what="canonical-key memo"
        )
        self.metrics = ServiceMetrics()
        self._metrics_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        self._scatter_pool_denied = False
        self._pool_lock = threading.Lock()
        self._closed = False
        #: The online adaptive tuning subsystem (``None`` unless opted in via
        #: ``ServiceConfig.adaptive``).  The gate serializes tuning epochs
        #: (exclusive) against in-flight serves (shared).
        #: Durable checkpointing (ServiceConfig.snapshot).  The mutation
        #: counter is bumped by the invalidation hook (one per generation
        #: bump, so a batched tuning epoch counts once) and the policy is
        #: evaluated at mutation/epoch boundaries: the in-memory *capture*
        #: happens under the writer gate (the consistent cut), the disk
        #: *commit* happens after the gate is released (serving resumes while
        #: the fsyncs run), serialized by its own I/O lock.
        self._snapshot_policy = self.config.snapshot
        self._mutations_since_snapshot = 0
        self._last_snapshot_monotonic = time.monotonic()
        self._snapshot_io_lock = threading.Lock()
        self.last_snapshot: Optional[SnapshotManifest] = None
        #: Last exception a *policy-triggered* commit raised (diagnostics;
        #: the explicit checkpoint() path propagates instead).
        self.last_snapshot_error: Optional[Exception] = None
        self.adaptive: Optional[TuningDaemon] = None
        self._gate: Optional[ReadWriteLock] = None
        if self.config.adaptive is not None or self.config.gated:
            self._gate = ReadWriteLock()
        if self.config.adaptive is not None:
            adaptive = self.config.adaptive
            self.adaptive = TuningDaemon(
                dual=dual,
                tuner=adaptive.tuner_factory(dual),
                window=WorkloadWindow(adaptive.window_size),
                gate=self._gate,
                config=adaptive,
            )
            # Background-thread epochs (daemon.start) must hit the same
            # snapshot-policy boundary as tune_now() and auto epochs.
            self.adaptive.post_epoch_hook = self._maybe_checkpoint_gated
        #: The write-ahead delta log (SnapshotPolicy.log): mutations append
        #: delta records through the dual store's mutation-listener seam,
        #: snapshot commits rotate.  Append/rotate failures are recorded
        #: here and in ``wal_failures`` — never raised out of a mutation.
        self.delta_log: Optional[DeltaLog] = None
        self.last_wal_error: Optional[Exception] = None
        if self._snapshot_policy is not None and self._snapshot_policy.log:
            self.delta_log = DeltaLog(
                self._snapshot_policy.path, keep_segments=max(2, self._snapshot_policy.keep)
            )
            self._anchor_delta_log()
            dual.add_mutation_listener(self._on_wal_event)
        dual.add_invalidation_hook(self._on_mutation)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach from the dual store and shut the worker pool down.

        A closed service refuses further serving (``RuntimeError``) — its
        invalidation hook is gone, so quietly continuing would re-create the
        worker pool with nobody left to shut it down.
        """
        if self._closed:
            return
        self._closed = True
        if self.adaptive is not None:
            # Stop the daemon first: a background epoch firing after the
            # hook is detached would mutate the store without invalidating
            # anything this service still holds.
            self.adaptive.stop()
        self.dual.remove_invalidation_hook(self._on_mutation)
        if self.delta_log is not None:
            self.dual.remove_mutation_listener(self._on_wal_event)
            self.delta_log.close()
        with self._pool_lock:
            # Query pool first: waiting for it drains in-flight serves whose
            # workers hold a reference to the scatter pool — shutting the
            # scatter pool down first would crash their probe submission.
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._scatter_pool is not None:
                backend = self.dual.relational
                if isinstance(backend, ShardedRelationalStore):
                    backend.detach_scatter_pool(self._scatter_pool)
                self._scatter_pool.shutdown(wait=True)
                self._scatter_pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Plan resolution (text → parsed query + complex subquery)
    # ------------------------------------------------------------------ #
    def resolve(self, query: QueryLike) -> QueryPlan:
        """The cached plan for ``query``, parsing/identifying on a miss.

        Every submission is keyed by :func:`canonical_query_text`, so
        whitespace/comment/keyword-case variants of one template instantiation
        share a plan; pre-parsed queries are canonicalized via their
        deterministic SPARQL rendering, so a parsed query and its
        expanded-IRI text form share one cache entry too.
        """
        if isinstance(query, SelectQuery):
            key = self._key_memo.get(query)
            if key is None:
                key = canonical_query_text(query.to_sparql())
                self._key_memo.put(query, key)
            parsed: Optional[SelectQuery] = query
        else:
            key = canonical_query_text(query)
            parsed = None
        plan = self.plan_cache.get(key)
        if plan is not None:
            with self._metrics_lock:
                self.metrics.counters.plan_cache_hits += 1
            return plan
        if parsed is None:
            parsed = parse_query(query)
        plan = QueryPlan(key=key, query=parsed, complex_subquery=self.dual.identifier.identify(parsed))
        self.plan_cache.put(plan)
        with self._metrics_lock:
            self.metrics.counters.plan_cache_misses += 1
        return plan

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def run_query(
        self, query: QueryLike, *, deadline_seconds: Optional[float] = None
    ) -> ProcessedQuery:
        """Serve one query (cache-aware single-query admission).

        ``deadline_seconds`` caps the wall-clock execution budget
        (overriding ``ServiceConfig.default_deadline_seconds``); an
        over-budget execution raises
        :class:`~repro.errors.QueryTimeoutError` — cooperatively, so the
        executor thread is freed, never left hung.
        """
        return self._serve(
            [query], count_batch=False, deadline_seconds=deadline_seconds
        ).executions[0]

    def run_batch(
        self, queries: Sequence[QueryLike], *, deadline_seconds: Optional[float] = None
    ) -> ServedBatch:
        """Serve a whole batch: dedup within the batch, check the result
        cache per distinct query, execute the misses concurrently, and emit
        one :class:`QueryRecord` per submitted query in submission order.
        ``deadline_seconds`` is one shared budget for the whole batch; the
        first over-budget execution raises
        :class:`~repro.errors.QueryTimeoutError` for the batch."""
        return self._serve(list(queries), count_batch=True, deadline_seconds=deadline_seconds)

    def _serve(
        self,
        queries: List[QueryLike],
        count_batch: bool,
        deadline_seconds: Optional[float] = None,
    ) -> ServedBatch:
        if self._closed:
            raise RuntimeError("QueryService is closed; create a new service to keep serving")
        self.dual._require_loaded()
        if not queries:
            # An empty batch admits nothing: it must not count as a served
            # batch, move the queue gauge, or touch any cache counter —
            # otherwise per-batch averages and hit rates drift on no-op
            # submissions (see tests/test_serve.py::TestRunBatchEdgeCases).
            return ServedBatch()
        plans = [self.resolve(query) for query in queries]

        # One wall-clock budget per submission (shared across a batch): the
        # clock starts here, after resolution, so the budget measures store
        # execution — what the cooperative probes can actually cancel.
        budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.default_deadline_seconds
        )
        deadline = Deadline(budget) if budget is not None else None

        # With adaptive tuning on, serves hold the gate shared so a tuning
        # epoch (exclusive) can never mutate the store between the generation
        # sample and the executions it tags.
        if self._gate is not None:
            self._gate.acquire_read()
        try:
            generation = self.dual.generation

            # First-appearance index per distinct key (within-batch dedup).
            primaries: Dict[str, int] = {}
            for index, plan in enumerate(plans):
                primaries.setdefault(plan.key, index)

            hits: Dict[str, CachedExecution] = {}
            to_execute: List[QueryPlan] = []
            for key, index in primaries.items():
                entry = self.result_cache.get(key, generation) if self.config.cache_results else None
                if entry is not None:
                    hits[key] = entry
                else:
                    to_execute.append(plans[index])

            executed: Dict[str, ProcessedQuery] = {}
            if to_execute:
                for plan, processed in zip(
                    to_execute, self._execute_all(to_execute, deadline)
                ):
                    executed[plan.key] = processed
        finally:
            if self._gate is not None:
                self._gate.release_read()

        # Assemble per-submission entries outside the metrics lock: the
        # result/record copies are O(total bindings) and must not serialize
        # concurrent serves.
        entries: List[ProcessedQuery] = []
        primary_emitted: Set[str] = set()
        hit_count = 0
        coalesced_count = 0
        miss_count = 0
        for plan in plans:
            if plan.key in hits:
                hit = hits[plan.key]
                record = hit.record.replicate(from_cache=True)
                entries.append(ProcessedQuery(result=_result_view(hit.result), record=record))
                hit_count += 1
            else:
                processed = executed[plan.key]
                if plan.key in primary_emitted:
                    record = processed.record.replicate(from_cache=True)
                    entries.append(ProcessedQuery(result=_result_view(processed.result), record=record))
                    coalesced_count += 1
                else:
                    primary_emitted.add(plan.key)
                    entries.append(processed)
                    miss_count += 1

        with self._metrics_lock:
            counters = self.metrics.counters
            # The cache counts rejections cumulatively under its own lock;
            # mirror by assignment (not delta) so concurrent serves cannot
            # cross-count each other's rejections.
            counters.stale_rejections = self.result_cache.stale_rejections
            counters.result_cache_hits += hit_count
            counters.duplicates_coalesced += coalesced_count
            counters.result_cache_misses += miss_count
            counters.queries_served += len(plans)
            for entry in entries:
                self.metrics.modelled_latency.observe(entry.record.seconds)
            if count_batch:
                counters.batches_served += 1

        if self.adaptive is not None:
            # Harvest per submission (hits and duplicates included): the
            # tuner weighs partitions by traffic frequency, and a cache
            # absorbing a hot template must not hide its heat.
            window = self.adaptive.window
            for plan in plans:
                if plan.complex_subquery is not None:
                    window.record(plan.key, plan.query, plan.complex_subquery)
            # Outside the read gate by now, so an auto epoch can take the
            # write side without deadlocking on our own serve.
            if self.adaptive.maybe_run_epoch() is not None:
                self._maybe_checkpoint_gated()
        return ServedBatch(executions=entries, cache_hits=hit_count, coalesced=coalesced_count)

    def _execute_all(
        self, plans: List[QueryPlan], deadline: Optional[Deadline] = None
    ) -> List[ProcessedQuery]:
        if self.config.max_workers > 1:
            # Shard-probe parallelism is independent of batch width: a single
            # run_query over a sharded backend should scatter too.
            self._ensure_scatter_pool()
        if len(plans) == 1 or self.config.max_workers <= 1:
            return [self._execute(plan, deadline) for plan in plans]
        pool = self._ensure_pool()
        return list(pool.map(lambda plan: self._execute(plan, deadline), plans))

    def _execute(self, plan: QueryPlan, deadline: Optional[Deadline] = None) -> ProcessedQuery:
        with self._metrics_lock:
            self.metrics.queue.enter()
        start = time.perf_counter()
        # Sampled *before* execution: if a mutation lands mid-flight, the
        # entry is tagged with the older generation and every later lookup
        # rejects it.
        generation = self.dual.generation
        try:
            # The deadline rides the executing thread as ambient state
            # (thread-local), so the engine hot loops can probe it without
            # any signature change; a trip raises QueryTimeoutError out of
            # the probe, the finally below releases the queue slot, and the
            # result-cache put is skipped (it only runs on success) — a
            # timed-out query is never cached.
            with deadline_scope(deadline):
                processed = self.dual.processor.process(plan.query, plan.complex_subquery)
        except QueryTimeoutError:
            with self._metrics_lock:
                self.metrics.counters.query_timeouts += 1
            raise
        finally:
            wall = time.perf_counter() - start
            with self._metrics_lock:
                self.metrics.queue.leave()
                self.metrics.wall_latency.observe(wall)
                self.metrics.counters.executions += 1
        if self.config.cache_results:
            # Cache snapshots, not the objects handed to the caller: the
            # primary submission's consumer may edit its result in place and
            # must not be able to corrupt later hits.
            self.result_cache.put(
                CachedExecution(
                    key=plan.key,
                    result=_result_view(processed.result),
                    record=processed.record.replicate(from_cache=False),
                    generation=generation,
                )
            )
        return processed

    # ------------------------------------------------------------------ #
    # Mutations (delegated; the dual store's hooks invalidate the cache).
    # With adaptive tuning on, each delegation takes the write side of the
    # gate so it is exclusive with in-flight serves and tuning epochs.
    # ------------------------------------------------------------------ #
    def _gated_mutation(self, mutate: Callable[[], float]) -> float:
        """One delegated mutation: exclusive with serves/epochs via the
        write gate, followed by the snapshot-policy check (capture under the
        gate, commit outside it, failures recorded — never raised out of the
        committed mutation)."""
        with self._write_gated():
            seconds = mutate()
            pending = self._try_capture_locked()
        self._commit_captured(pending, propagate=False)
        return seconds

    def insert(self, triples: Iterable[Triple]) -> float:
        return self._gated_mutation(lambda: self.dual.insert(triples))

    def delete(self, triples: Iterable[Triple]) -> int:
        """Remove triples from the relational master copy (gated like
        :meth:`insert`); returns how many were actually removed."""
        return self._gated_mutation(lambda: self.dual.delete(triples))

    def ingest_stream(
        self,
        triples: Iterable[Triple],
        *,
        chunk_size: int = 1024,
        refresh_statistics: bool = True,
    ) -> IngestReport:
        """Bulk streaming ingest: consume ``triples`` in chunks.

        Each chunk is one gated :meth:`insert` — one generation bump, one
        result-cache invalidation, and (in delta-log mode) one log record —
        so a million-triple stream costs thousands of cheap boundaries, not
        millions.  Statistics refresh is *deferred*: the per-chunk inserts
        only drop the stale statistics (recomputation is lazy), and one
        optional warm pass at the end rebuilds them before query traffic
        pays the rebuild inside a serve.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        report = IngestReport()
        chunk: List[Triple] = []
        for triple in triples:
            chunk.append(triple)
            if len(chunk) >= chunk_size:
                report.modelled_seconds += self.insert(chunk)
                report.triples += len(chunk)
                report.chunks += 1
                chunk = []
        if chunk:
            report.modelled_seconds += self.insert(chunk)
            report.triples += len(chunk)
            report.chunks += 1
        if refresh_statistics and report.chunks:
            self.dual.relational.statistics()
        return report

    def apply_wal_records(self, records: Sequence[WalRecord]) -> int:
        """Apply committed delta-log records to the live store — the
        follower catch-up path (:mod:`repro.endpoint.worker`).

        Runs under the write gate (``ServiceConfig.gated``), so in-flight
        serves never observe a half-applied record; each record fires the
        invalidation hook once, exactly like the leader-side mutation that
        produced it.  Returns the framed bytes applied (the churn
        benchmark's delta-cost measure).  Replay errors propagate — a
        drifted store must be discarded, not served.
        """
        nbytes = 0
        with self._write_gated():
            for record in records:
                apply_record(self.dual, record)
                nbytes += record.nbytes
        return nbytes

    def transfer_partition(self, predicate: IRI) -> float:
        """Replicate one partition into the graph store; returns modelled
        import seconds."""
        return self._gated_mutation(lambda: self.dual.transfer_partition(predicate))

    def evict_partition(self, predicate: IRI) -> float:
        """Remove one partition from the graph store; returns modelled
        eviction seconds (symmetric with :meth:`transfer_partition`)."""
        return self._gated_mutation(lambda: self.dual.evict_partition(predicate))

    @contextmanager
    def _write_gated(self):
        if self._gate is None:
            yield
            return
        with self._gate.write_locked():
            yield

    def record_endpoint(self, *, requests: int, shed: int) -> None:
        """Mirror the HTTP endpoint's cumulative admission accounting.

        The admission gate (:class:`repro.endpoint.server.AdmissionGate`)
        owns the running totals — it outlives worker hot-reloads that replace
        the service — so these are **assigned**, not incremented, exactly
        like the result cache's ``stale_rejections`` (see
        :attr:`~repro.serve.metrics.ServiceCounters.MIRRORED_GAUGES`).  One
        ``metrics.snapshot()`` then covers the whole serving stack, wire to
        store.
        """
        with self._metrics_lock:
            self.metrics.counters.endpoint_requests = requests
            self.metrics.counters.shed_load = shed

    def record_resilience(
        self,
        *,
        worker_restarts: Optional[int] = None,
        breaker_opens: Optional[int] = None,
    ) -> None:
        """Mirror resilience-subsystem cumulative totals into the counters.

        The :class:`~repro.resilience.fleet.FleetMonitor` owns the restart
        total and the :class:`~repro.endpoint.client.EndpointPool` owns the
        breaker-trip total; both are **assigned** (mirrored-gauge
        discipline, like :meth:`record_endpoint`), so one
        ``metrics.snapshot()`` tells the whole resilience story.
        """
        with self._metrics_lock:
            if worker_restarts is not None:
                self.metrics.counters.worker_restarts = worker_restarts
            if breaker_opens is not None:
                self.metrics.counters.breaker_opens = breaker_opens

    def _on_mutation(self, generation: int) -> None:
        dropped = self.result_cache.invalidate_all()
        with self._metrics_lock:
            self.metrics.counters.invalidations += dropped
            self.metrics.counters.invalidation_events += 1
            self._mutations_since_snapshot += 1

    # ------------------------------------------------------------------ #
    # The write-ahead delta log (SnapshotPolicy.log)
    # ------------------------------------------------------------------ #
    def _anchor_delta_log(self) -> None:
        """Make the log resumable before the first serve.

        Warm restart: when the on-disk tail already ends exactly at the live
        store's generation (the store came from :func:`restore_with_log`),
        reopen it — truncating any torn tail — and keep appending.
        Otherwise anchor a fresh full snapshot and rotate onto it, so every
        subsequent mutation has a committed base to replay against.
        """
        assert self.delta_log is not None
        if self.dual.design is None:
            raise SnapshotError(
                "SnapshotPolicy(log=True) needs a loaded store: the delta log must "
                "anchor a full snapshot before mutations can be logged"
            )
        if self.delta_log.recover(self.dual.generation):
            return
        self.checkpoint()

    def _on_wal_event(self, ops: List[dict], generation: int) -> None:
        """Mutation listener: durably append one delta record.

        Failures are recorded (``wal_failures`` / :attr:`last_wal_error`)
        and close the log — the mutation itself already committed in memory,
        so raising here would poison it; restores stay anchored to the last
        complete record until the next snapshot commit rotates a fresh
        segment.  An empty ``ops`` list is a mutation the op vocabulary
        cannot represent (a re-``load``): the log closes for the same
        reason, loudly in the error slot.
        """
        log = self.delta_log
        if log is None or not log.is_open:
            return
        if not ops:
            log.close()
            self.last_wal_error = SnapshotError(
                f"generation {generation} carried no replayable ops (re-load?); "
                "delta log closed until the next snapshot commit"
            )
            with self._metrics_lock:
                self.metrics.counters.wal_failures += 1
            return
        try:
            nbytes = log.append(ops, generation)
        except Exception as exc:
            self.last_wal_error = exc
            with self._metrics_lock:
                self.metrics.counters.wal_failures += 1
            return
        with self._metrics_lock:
            self.metrics.counters.wal_records += 1
            self.metrics.counters.wal_bytes += nbytes

    def _maybe_rotate_log(self, path, manifest: SnapshotManifest) -> None:
        """Rotate the delta log after a successful snapshot commit on the
        policy path (ad-hoc side checkpoints leave the log anchored where it
        is).  Rotation failures are recorded, not raised — the snapshot
        itself committed."""
        log = self.delta_log
        policy = self._snapshot_policy
        if log is None or policy is None:
            return
        if Path(path).resolve() != Path(policy.path).resolve():
            return
        try:
            log.rotate(manifest.generation, snapshot_name=manifest.name)
        except Exception as exc:
            self.last_wal_error = exc
            with self._metrics_lock:
                self.metrics.counters.wal_failures += 1

    # ------------------------------------------------------------------ #
    # Durable checkpoints (ServiceConfig.snapshot)
    # ------------------------------------------------------------------ #
    def checkpoint(self, path=None, keep: Optional[int] = None) -> SnapshotManifest:
        """Snapshot the dual store (and adaptive state) right now.

        The in-memory capture happens under the writer gate (a consistent
        cut even with serves in flight); the disk write happens after the
        gate is released, so serving resumes while the fsyncs run.  ``path``
        defaults to the configured policy's path; without a policy it must
        be given explicitly.  ``keep`` overrides the retention for this
        call — important for ad-hoc backup roots, which otherwise rotate at
        the policy's (or the default) retention and would silently drop
        older manual backups.  Write failures propagate.
        """
        if path is None and self._snapshot_policy is None:
            raise RuntimeError(
                "no snapshot path: configure ServiceConfig(snapshot=SnapshotPolicy(...)) "
                "or pass checkpoint(path=...)"
            )
        with self._write_gated():
            pending = self._capture_locked(path)
        if keep is not None:
            captured, target, _default_keep = pending
            pending = (captured, target, keep)
        return self._commit_captured(pending, propagate=True)

    def _snapshot_due(self) -> bool:
        policy = self._snapshot_policy
        if policy is None:
            return False
        if policy.every_mutations:
            with self._metrics_lock:
                pending = self._mutations_since_snapshot
            if pending >= policy.every_mutations:
                return True
        if policy.interval_seconds:
            if time.monotonic() - self._last_snapshot_monotonic >= policy.interval_seconds:
                return True
        return False

    def _maybe_capture_locked(self):
        """Capture a checkpoint if the policy says one is due; caller holds
        the writer gate (or the store's usual mutation exclusivity when
        there is no gate).  Returns the pending capture or ``None``."""
        if not self._snapshot_due():
            return None
        return self._capture_locked(None)

    def _try_capture_locked(self):
        """:meth:`_maybe_capture_locked` for the mutation paths — never
        raises.  The mutation that triggered the capture already committed,
        so a capture failure (e.g. an unsupported backend) must be recorded,
        not thrown back at a caller whose operation succeeded.  The trigger
        is consumed like a commit failure's: the next policy window retries
        instead of every subsequent mutation re-raising."""
        try:
            return self._maybe_capture_locked()
        except Exception as exc:
            self.last_snapshot_error = exc
            with self._metrics_lock:
                self.metrics.counters.snapshot_failures += 1
                self._mutations_since_snapshot = 0
            self._last_snapshot_monotonic = time.monotonic()
            return None

    def _maybe_checkpoint_gated(self) -> Optional[SnapshotManifest]:
        """Policy checkpoint from outside the gate (the post-epoch path):
        due-ness is re-checked under the gate so concurrent serves race to
        at most one capture, and the commit runs after release."""
        if not self._snapshot_due():
            return None
        with self._write_gated():
            pending = self._try_capture_locked()
        return self._commit_captured(pending, propagate=False)

    def _capture_locked(self, path) -> Tuple[CapturedSnapshot, "Path", int]:
        """The consistency-critical half of a checkpoint (no I/O).

        Resets the policy triggers at capture time — the cut is taken; if
        the later commit fails, the failure is recorded and the *next*
        policy window retries, rather than every subsequent mutation
        re-attempting a doomed write.
        """
        policy = self._snapshot_policy
        on_policy_path = path is None
        if path is None:
            assert policy is not None  # guarded by checkpoint()/_snapshot_due()
            path = policy.path
        elif policy is not None:
            on_policy_path = Path(path).resolve() == Path(policy.path).resolve()
        extras = None
        if self.adaptive is not None:
            extras = {"adaptive": self.adaptive.snapshot_state()}
        captured = capture_snapshot(self.dual, extras=extras)
        if on_policy_path:
            # Only a checkpoint on the policy's own path satisfies the
            # policy: an explicit side checkpoint to an ad-hoc path must
            # not quench the triggers, or the configured path would fall
            # arbitrarily behind the state it is meant to protect.
            with self._metrics_lock:
                self._mutations_since_snapshot = 0
            self._last_snapshot_monotonic = time.monotonic()
        return (captured, path, policy.keep if policy else 2)

    def _commit_captured(
        self, pending: Optional[Tuple[CapturedSnapshot, "Path", int]], propagate: bool
    ) -> Optional[SnapshotManifest]:
        """The I/O half of a checkpoint, outside the writer gate.

        Policy-triggered commits (``propagate=False``) record failures in
        :attr:`last_snapshot_error` / ``snapshot_failures`` instead of
        raising — a full disk must not poison the mutation that triggered
        the checkpoint (the mutation itself already committed).  The
        explicit :meth:`checkpoint` path propagates.
        """
        if pending is None:
            return None
        captured, path, keep = pending
        try:
            with self._snapshot_io_lock:
                manifest = commit_snapshot(captured, path, keep=keep)
        except Exception as exc:
            with self._metrics_lock:
                self.metrics.counters.snapshot_failures += 1
            self.last_snapshot_error = exc
            if propagate:
                raise
            return None
        self.last_snapshot = manifest
        if manifest.generation == captured.generation:
            # A returned manifest with a *newer* generation means the commit
            # was a stale-capture no-op (another checkpoint already committed
            # a younger cut): nothing was written, so nothing is counted.
            with self._metrics_lock:
                self.metrics.counters.snapshots_taken += 1
            self._maybe_rotate_log(path, manifest)
        return manifest

    @classmethod
    def restore(
        cls,
        path,
        config: Optional[ServiceConfig] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        throttle: Optional[ResourceThrottle] = None,
    ) -> "QueryService":
        """Warm-restart a service from a committed snapshot.

        Rebuilds the dual store (placement, statistics, and generation
        intact) and — when ``config`` enables adaptive tuning and the
        snapshot carries adaptive state — the workload window and the
        tuner's learned Q-state, so the restored service serves at the
        snapshotted placement's modelled TTI immediately, with **zero**
        tuning epochs (``benchmarks/bench_warm_restart.py`` pins this).

        With ``SnapshotPolicy(log=True)`` in ``config``, the restore replays
        the delta-log tail on top of the snapshot
        (:func:`~repro.persist.wal.restore_with_log`), resuming at the exact
        pre-crash generation — a torn final record is truncated and the new
        service keeps appending where the log left off.  Adaptive Q-state
        restores to the last *full* snapshot (the log records store
        mutations, not tuner learning).
        """
        policy = config.snapshot if config is not None else None
        if policy is not None and policy.log:
            restored = restore_with_log(path, cost_model=cost_model, throttle=throttle)
        else:
            restored = load_snapshot(path, cost_model=cost_model, throttle=throttle)
        service = cls(restored.dual, config)
        if (
            service.adaptive is not None
            and restored.extras is not None
            and "adaptive" in restored.extras
        ):
            service.adaptive.restore_state(restored.extras["adaptive"])
        service.last_snapshot = restored.manifest
        return service

    # ------------------------------------------------------------------ #
    # Online adaptive tuning (ServiceConfig.adaptive)
    # ------------------------------------------------------------------ #
    def tune_now(self) -> EpochReport:
        """Run one tuning epoch synchronously (adaptive mode only)."""
        if self.adaptive is None:
            raise RuntimeError(
                "adaptive tuning is not enabled; construct the service with "
                "ServiceConfig(adaptive=AdaptiveConfig(...))"
            )
        epoch = self.adaptive.run_epoch()
        self._maybe_checkpoint_gated()
        return epoch

    def adaptive_metrics(self) -> Optional[Dict[str, float]]:
        """Cumulative epoch metrics, or ``None`` when adaptive tuning is off."""
        if self.adaptive is None:
            return None
        return self.adaptive.metrics_as_dict()

    # ------------------------------------------------------------------ #
    # Shard observability (sharded relational backends only)
    # ------------------------------------------------------------------ #
    def shard_metrics(self) -> Optional[List[Dict[str, float]]]:
        """Per-shard queue-depth/latency snapshot, or ``None`` when the dual
        store's relational master copy is not sharded.

        One dict per shard: probe counts, rows scanned, physical index
        lookups, modelled busy seconds (mean/max per probe), and
        current/peak in-flight probe depth.
        """
        backend = self.dual.relational
        if isinstance(backend, ShardedRelationalStore):
            return backend.shard_metrics.snapshot()
        return None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            # Re-checked under the lock: a close() racing an in-flight serve
            # must not get its freshly shut-down pool resurrected behind it.
            if self._closed:
                raise RuntimeError("QueryService is closed; create a new service to keep serving")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="repro-serve",
                )
            return self._pool

    def _ensure_scatter_pool(self) -> None:
        backend = self.dual.relational
        if not isinstance(backend, ShardedRelationalStore) or backend.shard_count <= 1:
            return
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("QueryService is closed; create a new service to keep serving")
            if self._scatter_pool is not None:
                return
            if self._scatter_pool_denied:
                if backend.has_scatter_pool:
                    return  # another service still provides the pool
                # The previous owner closed and detached; try owning it now.
                self._scatter_pool_denied = False
            # Shard probes get their own pool: probes submitted to the query
            # pool would deadlock once every query worker is blocked waiting
            # on its own probes.
            scatter_pool = ThreadPoolExecutor(
                max_workers=min(backend.shard_count, self.config.max_workers * 2),
                thread_name_prefix="repro-scatter",
            )
            if backend.attach_scatter_pool(scatter_pool):
                self._scatter_pool = scatter_pool
            else:
                # Another service already provides the store's pool; ours
                # would only be clobbering it.  Remembered so every later
                # batch doesn't churn a throwaway pool.
                self._scatter_pool_denied = True
                scatter_pool.shutdown(wait=False)
