"""SPARQL subset: tokenizer, parser, AST, and basic-graph-pattern algebra."""

from repro.sparql.algebra import (
    connected_components,
    is_connected,
    join_variables,
    merge_bindings,
    order_patterns_greedily,
    pattern_join_graph,
    pattern_selectivity_key,
    query_shape,
    shared_variables,
)
from repro.sparql.ast import Binding, Filter, SelectQuery, TriplePattern
from repro.sparql.parser import QueryParser, canonical_query_text, parse_query
from repro.sparql.tokenizer import Token, tokenize

__all__ = [
    "Binding",
    "Filter",
    "SelectQuery",
    "TriplePattern",
    "QueryParser",
    "parse_query",
    "canonical_query_text",
    "Token",
    "tokenize",
    "join_variables",
    "pattern_join_graph",
    "connected_components",
    "is_connected",
    "shared_variables",
    "merge_bindings",
    "pattern_selectivity_key",
    "order_patterns_greedily",
    "query_shape",
]
