"""Tokenizer for the SPARQL subset accepted by :mod:`repro.sparql.parser`.

The tokenizer converts query text into a flat list of typed tokens with
line/column positions so the parser can report precise errors.  Supported
lexical forms: keywords, variables (``?x`` / ``$x``), IRIs in angle brackets,
prefixed names (``y:wasBornIn``), string literals with optional language tag
or datatype, numbers, booleans, punctuation, and comparison operators.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "WHERE",
    "FILTER",
    "LIMIT",
    "PREFIX",
    "ASK",
    "OPTIONAL",
    "UNION",
    "ORDER",
    "BY",
    "A",
}

_TOKEN_SPEC = [
    ("WHITESPACE", r"[ \t\r\n]+"),
    ("COMMENT", r"#[^\n]*"),
    ("IRI", r"<[^<>\s]*>"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("LANGTAG", r"@[a-zA-Z][a-zA-Z0-9-]*"),
    ("DOUBLE_CARET", r"\^\^"),
    ("VAR", r"[?$][A-Za-z_][A-Za-z0-9_]*"),
    ("NUMBER", r"[+-]?\d+(?:\.\d+)?"),
    ("PNAME", r"[A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z_][A-Za-z0-9_.-]*"),
    ("KEYWORD_OR_NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("OP", r"!=|<=|>=|=|<|>"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("DOT", r"\."),
    ("COLON", r":"),
    ("SEMICOLON", r";"),
    ("COMMA", r","),
    ("STAR", r"\*"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: str
    value: str
    line: int
    column: int

    def is_keyword(self, keyword: str) -> bool:
        return self.type == "KEYWORD" and self.value.upper() == keyword.upper()


def _iter_tokens(text: str) -> Iterator[Token]:
    line = 1
    line_start = 0
    position = 0
    length = len(text)
    while position < length:
        match = _MASTER_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {text[position]!r}", line=line, column=column)
        kind = match.lastgroup or ""
        value = match.group()
        column = position - line_start + 1
        if kind in ("WHITESPACE", "COMMENT"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = position + value.rfind("\n") + 1
        elif kind == "KEYWORD_OR_NAME":
            token_type = "KEYWORD" if value.upper() in KEYWORDS else "NAME"
            yield Token(token_type, value, line, column)
        elif kind == "IRI":
            yield Token("IRI", value[1:-1], line, column)
        elif kind == "VAR":
            yield Token("VAR", value[1:], line, column)
        else:
            yield Token(kind, value, line, column)
        position = match.end()


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list of :class:`Token` objects.

    Raises
    ------
    ParseError
        If an unrecognised character is encountered.
    """
    return list(_iter_tokens(text))
