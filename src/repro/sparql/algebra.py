"""Algebra helpers over basic graph patterns.

These utilities analyse the structure of a query independent of any store:
which variables join which patterns, whether the pattern graph is connected,
and how patterns can be grouped into connected components.  The complex
subquery identifier, both query planners, and the view manager all build on
them.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.ast import Binding, SelectQuery, TriplePattern

__all__ = [
    "join_variables",
    "pattern_join_graph",
    "connected_components",
    "is_connected",
    "shared_variables",
    "merge_bindings",
    "pattern_selectivity_key",
    "order_patterns_greedily",
    "query_shape",
]


def join_variables(patterns: Sequence[TriplePattern]) -> Set[str]:
    """Variables that occur in more than one pattern (the join variables)."""
    counts: Dict[str, int] = defaultdict(int)
    for pattern in patterns:
        for name in pattern.variable_names():
            counts[name] += 1
    return {name for name, count in counts.items() if count > 1}


def pattern_join_graph(patterns: Sequence[TriplePattern]) -> Dict[int, Set[int]]:
    """Adjacency between pattern indexes that share at least one variable."""
    var_to_patterns: Dict[str, List[int]] = defaultdict(list)
    for index, pattern in enumerate(patterns):
        for name in pattern.variable_names():
            var_to_patterns[name].append(index)
    adjacency: Dict[int, Set[int]] = {index: set() for index in range(len(patterns))}
    for indexes in var_to_patterns.values():
        for i in indexes:
            for j in indexes:
                if i != j:
                    adjacency[i].add(j)
    return adjacency


def connected_components(patterns: Sequence[TriplePattern]) -> List[List[int]]:
    """Group pattern indexes into variable-connected components."""
    adjacency = pattern_join_graph(patterns)
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in range(len(patterns)):
        if start in seen:
            continue
        component: List[int] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        components.append(sorted(component))
    return components


def is_connected(patterns: Sequence[TriplePattern]) -> bool:
    """True when every pattern is reachable from every other via shared variables."""
    if not patterns:
        return True
    return len(connected_components(patterns)) == 1


def shared_variables(
    left: Iterable[TriplePattern], right: Iterable[TriplePattern]
) -> FrozenSet[str]:
    """Variables that appear on both sides; the join attributes of a split plan."""
    left_names: Set[str] = set()
    for pattern in left:
        left_names.update(pattern.variable_names())
    right_names: Set[str] = set()
    for pattern in right:
        right_names.update(pattern.variable_names())
    return frozenset(left_names & right_names)


def merge_bindings(left: Binding, right: Binding) -> Binding | None:
    """Merge two solution mappings; return ``None`` when they conflict."""
    merged = dict(left)
    for name, term in right.items():
        existing = merged.get(name)
        if existing is not None and existing != term:
            return None
        merged[name] = term
    return merged


def pattern_selectivity_key(pattern: TriplePattern) -> Tuple[int, int]:
    """A heuristic ordering key: more concrete positions first.

    Patterns with constants (especially a constant subject or object) are
    likely to be more selective, so evaluating them first shrinks the
    intermediate result.  The key is ``(-bound_positions, -has_literal)``.
    """
    bound = sum(
        1
        for term in (pattern.subject, pattern.predicate, pattern.object)
        if not isinstance(term, Variable)
    )
    has_literal = int(isinstance(pattern.object, Literal) or isinstance(pattern.subject, Literal))
    return (-bound, -has_literal)


def order_patterns_greedily(
    patterns: Sequence[TriplePattern],
    cardinality: Dict[IRI, int] | None = None,
    estimate: "Callable[[TriplePattern], int] | None" = None,
) -> List[TriplePattern]:
    """Order patterns so each one (after the first) joins with prior ones.

    The first pattern is the one with the best selectivity key (optionally
    refined by per-predicate cardinalities); each subsequent pattern is the
    connected pattern with the best key.  Disconnected patterns are appended
    at the end in key order (they form a cartesian product regardless of
    order, so the ordering only needs to be deterministic).

    ``estimate`` (a per-*pattern* row estimator, e.g. the relational
    planner's point-lookup-aware cardinality estimate) refines the tiebreak
    within each bound-position class: two index-path patterns are then
    ordered by how many rows the lookup is expected to touch rather than by
    their predicates' whole-partition cardinality.
    """

    def key(pattern: TriplePattern) -> Tuple:
        base = pattern_selectivity_key(pattern)
        if estimate is not None:
            return (*base, estimate(pattern), pattern.n3())
        if cardinality is not None and isinstance(pattern.predicate, IRI):
            return (*base, cardinality.get(pattern.predicate, 1 << 30), pattern.n3())
        return (*base, 0, pattern.n3())

    remaining = list(patterns)
    if not remaining:
        return []
    ordered: List[TriplePattern] = []
    bound_vars: Set[str] = set()

    first = min(remaining, key=key)
    ordered.append(first)
    remaining.remove(first)
    bound_vars.update(first.variable_names())

    while remaining:
        connected = [p for p in remaining if p.variable_names() & bound_vars]
        candidates = connected if connected else remaining
        chosen = min(candidates, key=key)
        ordered.append(chosen)
        remaining.remove(chosen)
        bound_vars.update(chosen.variable_names())
    return ordered


def query_shape(query: SelectQuery) -> str:
    """Classify a query as ``linear``, ``star``, ``snowflake``, or ``complex``.

    The classification mirrors the WatDiv template families used in the
    paper's evaluation:

    * ``star`` — every pattern shares one central join variable.
    * ``linear`` — patterns form a path (each join variable links exactly two
      patterns and no pattern has more than two join variables).
    * ``snowflake`` — a small number of star centres connected to each other.
    * ``complex`` — anything else (cycles, many hubs, ...).
    """
    patterns = query.patterns
    if len(patterns) <= 1:
        return "linear"
    occurrences = query.variable_occurrences()
    join_vars = {name for name, count in occurrences.items() if count > 1}
    if not join_vars:
        return "complex"  # disconnected product
    if len(join_vars) == 1 and occurrences[next(iter(join_vars))] == len(patterns):
        return "star"

    # Count how many patterns each join variable touches.
    hub_vars = [name for name in join_vars if occurrences[name] >= 3]
    if not hub_vars:
        # every join variable links exactly two patterns -> path or cycle
        return "linear" if len(join_vars) == len(patterns) - 1 else "complex"
    if len(hub_vars) <= 2 and is_connected(patterns):
        return "snowflake"
    return "complex"
