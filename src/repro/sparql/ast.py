"""Abstract syntax tree for the SPARQL subset used by the dual store.

The paper's workloads are basic-graph-pattern SELECT queries (optionally with
DISTINCT, LIMIT, and simple FILTER constraints).  The AST mirrors that:

* :class:`TriplePattern` — one ``subject predicate object`` pattern where any
  position may be a variable.
* :class:`Filter` — a simple comparison between a variable and a constant or
  between two variables.
* :class:`SelectQuery` — projection + basic graph pattern + filters.

Every node is immutable and hashable so that queries can serve as dictionary
keys (the materialized-view manager and the workload generators rely on
this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.errors import ParseError
from repro.rdf.terms import IRI, Literal, TermLike, Variable

__all__ = [
    "TriplePattern",
    "Filter",
    "SelectQuery",
    "Binding",
    "COMPARISON_OPERATORS",
    "compare_terms",
]

#: A solution mapping from variable name to a concrete term.
Binding = Dict[str, TermLike]

COMPARISON_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


def compare_terms(operator: str, left: TermLike, right: TermLike) -> bool:
    """Evaluate one FILTER comparison between two concrete terms.

    This is the single source of the subset's comparison semantics: typed
    literals coerce to their Python values (so ``"30"^^xsd:integer`` compares
    numerically, not lexicographically), everything else compares on its
    string form, and an incomparable pair (``TypeError``) is ``False``.  Both
    the Python executors (via :meth:`Filter.evaluate`) and the SQLite
    backend's filter function delegate here, which is what keeps the SQL path
    answer-identical to the work-accounted engines.
    """
    left_value = left.to_python() if isinstance(left, Literal) else str(left)
    right_value = right.to_python() if isinstance(right, Literal) else str(right)
    try:
        if operator == "=":
            return left_value == right_value
        if operator == "!=":
            return left_value != right_value
        if operator == "<":
            return left_value < right_value
        if operator == "<=":
            return left_value <= right_value
        if operator == ">":
            return left_value > right_value
        return left_value >= right_value
    except TypeError:
        return False


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern; any of the three positions may be a variable."""

    subject: TermLike
    predicate: TermLike
    object: TermLike

    def variables(self) -> Tuple[Variable, ...]:
        """Variables in this pattern, in subject/predicate/object order."""
        return tuple(t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable))

    def variable_names(self) -> FrozenSet[str]:
        return frozenset(v.name for v in self.variables())

    @property
    def has_concrete_predicate(self) -> bool:
        return isinstance(self.predicate, IRI)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.n3()


@dataclass(frozen=True, slots=True)
class Filter:
    """A simple comparison filter, e.g. ``FILTER(?age >= 30)``."""

    left: TermLike
    operator: str
    right: TermLike

    def __post_init__(self) -> None:
        if self.operator not in COMPARISON_OPERATORS:
            raise ParseError(f"unsupported filter operator {self.operator!r}")

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(t for t in (self.left, self.right) if isinstance(t, Variable))

    def evaluate(self, binding: Binding) -> bool:
        """Evaluate the filter against a solution mapping.

        Unbound variables make the filter fail (an error in full SPARQL; a
        plain ``False`` here keeps execution total).
        """
        left = self._resolve(self.left, binding)
        right = self._resolve(self.right, binding)
        if left is None or right is None:
            return False
        return compare_terms(self.operator, left, right)

    @staticmethod
    def _resolve(term: TermLike, binding: Binding) -> Optional[TermLike]:
        if isinstance(term, Variable):
            return binding.get(term.name)
        return term

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"FILTER({self.left.n3()} {self.operator} {self.right.n3()})"


@dataclass(frozen=True, slots=True)
class SelectQuery:
    """A SELECT query over a basic graph pattern.

    Attributes
    ----------
    projection:
        Variables to return.  An empty tuple means ``SELECT *``.
    patterns:
        The triple patterns of the WHERE clause, in source order.
    filters:
        FILTER constraints applied to complete solutions.
    distinct:
        Whether duplicate solutions are removed.
    limit:
        Optional cap on the number of returned solutions.
    """

    projection: Tuple[Variable, ...]
    patterns: Tuple[TriplePattern, ...]
    filters: Tuple[Filter, ...] = field(default_factory=tuple)
    distinct: bool = False
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ParseError("a SELECT query must contain at least one triple pattern")
        if self.limit is not None and self.limit < 0:
            raise ParseError("LIMIT must be non-negative")

    # ------------------------------------------------------------------ #
    # Introspection used by the identifier, planner, and tuner
    # ------------------------------------------------------------------ #
    def variables(self) -> FrozenSet[str]:
        """Names of every variable mentioned in the WHERE clause."""
        names: set[str] = set()
        for pattern in self.patterns:
            names.update(pattern.variable_names())
        for flt in self.filters:
            names.update(v.name for v in flt.variables())
        return frozenset(names)

    def projected_names(self) -> Tuple[str, ...]:
        if self.projection:
            return tuple(v.name for v in self.projection)
        return tuple(sorted(self.variables()))

    def predicates(self) -> FrozenSet[IRI]:
        """The concrete predicates used by the WHERE clause.

        This is ``getPredicateSet()`` from the paper's Table 2 and drives
        both the query processor's routing cases and the tuner's partition
        selection.
        """
        return frozenset(p.predicate for p in self.patterns if isinstance(p.predicate, IRI))

    def variable_occurrences(self) -> Dict[str, int]:
        """How many triple patterns mention each variable."""
        counts: Dict[str, int] = {}
        for pattern in self.patterns:
            for name in pattern.variable_names():
                counts[name] = counts.get(name, 0) + 1
        return counts

    def with_patterns(
        self,
        patterns: Sequence[TriplePattern],
        projection: Sequence[Variable] | None = None,
    ) -> "SelectQuery":
        """Derive a new query that keeps this query's modifiers."""
        return SelectQuery(
            projection=tuple(projection) if projection is not None else self.projection,
            patterns=tuple(patterns),
            filters=tuple(f for f in self.filters if set(n.name for n in f.variables()) <= _pattern_vars(patterns)),
            distinct=self.distinct,
            limit=self.limit,
        )

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.patterns)

    def __len__(self) -> int:
        return len(self.patterns)

    def to_sparql(self) -> str:
        """Render the query back to SPARQL surface syntax."""
        if self.projection:
            head = " ".join(v.n3() for v in self.projection)
        else:
            head = "*"
        distinct = "DISTINCT " if self.distinct else ""
        lines = [f"SELECT {distinct}{head} WHERE {{"]
        for pattern in self.patterns:
            lines.append(f"  {pattern.n3()}")
        for flt in self.filters:
            lines.append(f"  {flt}")
        lines.append("}")
        if self.limit is not None:
            lines.append(f"LIMIT {self.limit}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.to_sparql()


def _pattern_vars(patterns: Sequence[TriplePattern]) -> set[str]:
    names: set[str] = set()
    for pattern in patterns:
        names.update(pattern.variable_names())
    return names
