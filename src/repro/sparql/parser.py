"""Recursive-descent parser for the SPARQL subset used in the evaluation.

Grammar (informal)::

    query      := prefix* "SELECT" ("DISTINCT")? projection "WHERE" group limit?
    prefix     := "PREFIX" NAME ":" IRI          # also accepts PNAME-style "y:"
    projection := "*" | VAR+
    group      := "{" (triple | filter)* "}"
    triple     := term term term "."?
    filter     := "FILTER" "(" term OP term ")"
    limit      := "LIMIT" NUMBER

Everything the paper's workloads need (Example 1, the WatDiv template
families, the YAGO/Bio2RDF templates from the referenced benchmark suites) is
expressible in this subset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ParseError
from repro.rdf.namespace import DEFAULT_PREFIXES, PrefixMap, RDF
from repro.rdf.terms import IRI, Literal, TermLike, Variable, XSD_DOUBLE, XSD_INTEGER
from repro.sparql.ast import Filter, SelectQuery, TriplePattern
from repro.sparql.tokenizer import Token, tokenize

__all__ = ["parse_query", "canonical_query_text", "QueryParser"]


class QueryParser:
    """Parses one SELECT query; construct a new instance per parse."""

    def __init__(self, text: str, prefixes: PrefixMap | None = None):
        self._tokens: List[Token] = tokenize(text)
        self._position = 0
        self._prefixes = (prefixes or DEFAULT_PREFIXES).copy()

    # ------------------------------------------------------------------ #
    # Token stream helpers
    # ------------------------------------------------------------------ #
    def _peek(self) -> Optional[Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._position += 1
        return token

    def _expect(self, token_type: str, value: str | None = None) -> Token:
        token = self._next()
        if token.type != token_type or (value is not None and token.value.upper() != value.upper()):
            expectation = value or token_type
            raise ParseError(
                f"expected {expectation}, found {token.value!r}", line=token.line, column=token.column
            )
        return token

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.is_keyword(keyword)

    # ------------------------------------------------------------------ #
    # Grammar productions
    # ------------------------------------------------------------------ #
    def parse(self) -> SelectQuery:
        self._parse_prologue()
        self._expect("KEYWORD", "SELECT")
        distinct = False
        if self._at_keyword("DISTINCT"):
            self._next()
            distinct = True
        projection = self._parse_projection()
        self._expect("KEYWORD", "WHERE")
        patterns, filters = self._parse_group()
        limit = self._parse_limit()
        if self._peek() is not None:
            token = self._peek()
            assert token is not None
            raise ParseError(f"unexpected trailing token {token.value!r}", line=token.line, column=token.column)
        return SelectQuery(
            projection=tuple(projection),
            patterns=tuple(patterns),
            filters=tuple(filters),
            distinct=distinct,
            limit=limit,
        )

    def _parse_prologue(self) -> None:
        """Consume zero or more ``PREFIX label: <iri>`` declarations."""
        while self._at_keyword("PREFIX"):
            self._next()
            label_token = self._next()
            if label_token.type not in ("NAME", "KEYWORD"):
                raise ParseError(
                    "PREFIX requires a prefix label", line=label_token.line, column=label_token.column
                )
            self._expect("COLON")
            iri_token = self._next()
            if iri_token.type != "IRI":
                raise ParseError("PREFIX requires an IRI", line=iri_token.line, column=iri_token.column)
            self._prefixes.bind(label_token.value, iri_token.value)

    def _parse_projection(self) -> List[Variable]:
        projection: List[Variable] = []
        token = self._peek()
        if token is not None and token.type == "STAR":
            self._next()
            return projection
        while True:
            token = self._peek()
            if token is None or token.type != "VAR":
                break
            projection.append(Variable(self._next().value))
        if not projection:
            token = self._peek()
            raise ParseError(
                "SELECT requires '*' or at least one variable",
                line=token.line if token else None,
                column=token.column if token else None,
            )
        return projection

    def _parse_group(self) -> tuple[List[TriplePattern], List[Filter]]:
        self._expect("LBRACE")
        patterns: List[TriplePattern] = []
        filters: List[Filter] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unterminated group pattern: missing '}'")
            if token.type == "RBRACE":
                self._next()
                break
            if token.is_keyword("FILTER"):
                filters.append(self._parse_filter())
                continue
            patterns.append(self._parse_triple_pattern())
        return patterns, filters

    def _parse_triple_pattern(self) -> TriplePattern:
        subject = self._parse_term(position="subject")
        predicate = self._parse_term(position="predicate")
        obj = self._parse_term(position="object")
        token = self._peek()
        if token is not None and token.type == "DOT":
            self._next()
        return TriplePattern(subject, predicate, obj)

    def _parse_filter(self) -> Filter:
        self._expect("KEYWORD", "FILTER")
        self._expect("LPAREN")
        left = self._parse_term(position="filter operand")
        op_token = self._next()
        if op_token.type != "OP":
            raise ParseError(
                f"expected a comparison operator, found {op_token.value!r}",
                line=op_token.line,
                column=op_token.column,
            )
        right = self._parse_term(position="filter operand")
        self._expect("RPAREN")
        return Filter(left, op_token.value, right)

    def _parse_limit(self) -> Optional[int]:
        if not self._at_keyword("LIMIT"):
            return None
        self._next()
        token = self._expect("NUMBER")
        return int(float(token.value))

    def _parse_term(self, position: str) -> TermLike:
        token = self._next()
        if token.type == "VAR":
            return Variable(token.value)
        if token.type == "IRI":
            return IRI(token.value)
        if token.type == "PNAME":
            return self._prefixes.expand(token.value)
        if token.type == "STRING":
            return self._parse_literal(token)
        if token.type == "NUMBER":
            if "." in token.value:
                return Literal(token.value, XSD_DOUBLE)
            return Literal(token.value, XSD_INTEGER)
        if token.type == "KEYWORD" and token.value.upper() == "A":
            return RDF.term("type")
        raise ParseError(
            f"cannot use {token.value!r} as a {position}", line=token.line, column=token.column
        )

    def _parse_literal(self, token: Token) -> Literal:
        lexical = token.value[1:-1].replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        nxt = self._peek()
        if nxt is not None and nxt.type == "LANGTAG":
            self._next()
            return Literal(lexical, language=nxt.value[1:])
        if nxt is not None and nxt.type == "DOUBLE_CARET":
            self._next()
            datatype_token = self._next()
            if datatype_token.type == "IRI":
                return Literal(lexical, datatype_token.value)
            if datatype_token.type == "PNAME":
                return Literal(lexical, self._prefixes.expand(datatype_token.value).value)
            raise ParseError(
                "datatype must be an IRI", line=datatype_token.line, column=datatype_token.column
            )
        return Literal(lexical)


def canonical_query_text(text: str) -> str:
    """Canonical form of a query text, suitable as a cache key.

    Two texts that differ only in whitespace, comments, or keyword case map to
    the same canonical string, while any lexical difference (a different
    constant, variable, operator, ...) yields a different one.  This is the
    serving layer's cache key: it only requires tokenization, so repeated
    template instantiations skip the full parser and the complex-subquery
    identifier on a plan-cache hit.

    Tokens are re-rendered unambiguously (IRIs re-bracketed, variables with a
    leading ``?``) so that, e.g., an IRI and a same-spelled prefixed name can
    never collide.
    """
    parts: List[str] = []
    for token in tokenize(text):
        if token.type == "KEYWORD":
            parts.append(token.value.upper())
        elif token.type == "IRI":
            parts.append(f"<{token.value}>")
        elif token.type == "VAR":
            parts.append(f"?{token.value}")
        else:
            parts.append(token.value)
    return " ".join(parts)


def parse_query(text: str, prefixes: PrefixMap | None = None) -> SelectQuery:
    """Parse SPARQL text into a :class:`~repro.sparql.ast.SelectQuery`.

    Parameters
    ----------
    text:
        The query text.  ``PREFIX`` declarations are honoured; the default
        prefix map (``y:``, ``wsdbm:``, ``bio:``...) is always available.
    prefixes:
        Optional additional prefix bindings.
    """
    return QueryParser(text, prefixes=prefixes).parse()
