"""Shared machinery for synthetic knowledge-graph generation.

The paper evaluates on YAGO, WatDiv, and Bio2RDF — datasets of 14M to 60M
triples that cannot be shipped or loaded in this environment.  Each dataset
module builds a *shape-preserving* synthetic stand-in instead: the same kind
of entities, the same predicate-partitioned structure, skewed degree
distributions, and enough distinct predicates that the graph-store budget
(``r_BG`` of the total size) forces the tuner to choose.

:class:`SyntheticGraphBuilder` is the common toolkit those modules use:
deterministic entity minting, Zipf-skewed choice, and fact emission with
per-predicate bookkeeping.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.rdf.graph import TripleSet
from repro.rdf.namespace import Namespace
from repro.rdf.terms import IRI, Literal, Triple

__all__ = ["SyntheticGraphBuilder", "zipf_weights"]


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights for ``count`` ranks (rank 1 most popular)."""
    if count <= 0:
        raise WorkloadError("cannot build a Zipf distribution over zero items")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class SyntheticGraphBuilder:
    """Deterministic builder for synthetic knowledge graphs.

    Parameters
    ----------
    namespace:
        Namespace used for all minted entities and predicates.
    seed:
        Seed for the internal random generator; the same seed always produces
        the same graph.
    """

    def __init__(self, namespace: Namespace, seed: int = 7):
        self.namespace = namespace
        self.rng = random.Random(seed)
        self.triples = TripleSet()
        self._entity_registry: Dict[str, List[IRI]] = {}

    # ------------------------------------------------------------------ #
    # Entities
    # ------------------------------------------------------------------ #
    def mint_entities(self, kind: str, count: int) -> List[IRI]:
        """Create ``count`` entities named ``<kind>_<index>`` and remember them."""
        if count < 0:
            raise WorkloadError("entity count must be non-negative")
        entities = [self.namespace.term(f"{kind}_{index}") for index in range(count)]
        self._entity_registry[kind] = entities
        return entities

    def entities(self, kind: str) -> List[IRI]:
        try:
            return self._entity_registry[kind]
        except KeyError:
            raise WorkloadError(f"no entities of kind {kind!r} were minted") from None

    # ------------------------------------------------------------------ #
    # Random choice helpers
    # ------------------------------------------------------------------ #
    def choose(self, items: Sequence, skew: float = 0.0):
        """Choose one item, uniformly or with Zipf skew over item order."""
        if not items:
            raise WorkloadError("cannot choose from an empty sequence")
        if skew <= 0.0:
            return items[self.rng.randrange(len(items))]
        weights = zipf_weights(len(items), exponent=skew)
        # random.Random has no weighted choice over numpy weights; use cumsum.
        threshold = self.rng.random()
        cumulative = np.cumsum(weights)
        index = int(np.searchsorted(cumulative, threshold))
        return items[min(index, len(items) - 1)]

    def coin(self, probability: float) -> bool:
        return self.rng.random() < probability

    def sample(self, items: Sequence, count: int) -> List:
        count = min(count, len(items))
        return self.rng.sample(list(items), count)

    # ------------------------------------------------------------------ #
    # Fact emission
    # ------------------------------------------------------------------ #
    def add_fact(self, subject: IRI, predicate: IRI, obj) -> bool:
        """Add one triple; plain Python values become typed literals."""
        if not isinstance(obj, (IRI, Literal)):
            obj = Literal.from_python(obj)
        return self.triples.add(Triple(subject, predicate, obj))

    def add_facts(self, facts) -> int:
        return sum(1 for subject, predicate, obj in facts if self.add_fact(subject, predicate, obj))

    # ------------------------------------------------------------------ #
    # Result
    # ------------------------------------------------------------------ #
    def build(self) -> TripleSet:
        return self.triples

    def predicate_histogram(self) -> Dict[IRI, int]:
        return self.triples.predicate_histogram()

    def scale_report(self) -> Dict[str, int]:
        """Summary comparable to the paper's Table 3 (triples, entities, predicates)."""
        return {
            "triples": len(self.triples),
            "entities": self.triples.entity_count(),
            "predicates": len(self.triples.predicates),
        }
