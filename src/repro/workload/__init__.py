"""Synthetic datasets (YAGO/WatDiv/Bio2RDF stand-ins), templates, and workloads."""

from repro.workload.bio2rdf import Bio2RDFDataset, bio2rdf_templates, bio2rdf_workload, generate_bio2rdf
from repro.workload.generator import SyntheticGraphBuilder, zipf_weights
from repro.workload.templates import QueryTemplate, Workload, WorkloadQuery, split_batches
from repro.workload.watdiv import (
    WATDIV_FAMILY_SIZES,
    WatDivDataset,
    generate_watdiv,
    watdiv_templates,
    watdiv_workload,
)
from repro.workload.yago import YAGO_PREDICATES, YagoDataset, generate_yago, yago_templates, yago_workload

__all__ = [
    "SyntheticGraphBuilder",
    "zipf_weights",
    "QueryTemplate",
    "Workload",
    "WorkloadQuery",
    "split_batches",
    "YagoDataset",
    "generate_yago",
    "yago_templates",
    "yago_workload",
    "YAGO_PREDICATES",
    "WatDivDataset",
    "generate_watdiv",
    "watdiv_templates",
    "watdiv_workload",
    "WATDIV_FAMILY_SIZES",
    "Bio2RDFDataset",
    "generate_bio2rdf",
    "bio2rdf_templates",
    "bio2rdf_workload",
]
