"""Synthetic Bio2RDF-like knowledge graph and workload.

The paper's Bio2RDF slice combines iRefIndex (protein interactions), OMIM
(gene–disease), PharmGKB (drug–gene pharmacogenomics), and PubMed (articles):
60M triples, 161 predicates, 25 workload queries.  This module generates a
shape-preserving stand-in with genes, proteins, drugs, diseases, pathways,
and articles connected by the corresponding biomedical predicates, plus a
25-query workload (5 templates × 5 instantiations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.rdf.graph import TripleSet
from repro.rdf.namespace import BIO2RDF
from repro.rdf.terms import IRI

from repro.workload.generator import SyntheticGraphBuilder
from repro.workload.templates import QueryTemplate, Workload, WorkloadQuery

__all__ = ["Bio2RDFDataset", "generate_bio2rdf", "bio2rdf_workload"]

_PREDICATES = [
    "encodes",
    "interactsWith",
    "targets",
    "treats",
    "causes",
    "associatedWith",
    "mentionsGene",
    "mentionsDrug",
    "publishedIn",
    "partOfPathway",
    "hasSideEffect",
    "expressedIn",
    "xref",
    "hasSymbol",
    "yearPublished",
    "dosage",
    "hasTitle",
    "hasAbstract",
    "hasDOI",
    "hasLabel",
]


@dataclass
class Bio2RDFDataset:
    """Synthetic Bio2RDF triples plus the entity pools for query slots."""

    triples: TripleSet
    entities: Dict[str, List[IRI]]

    def __len__(self) -> int:
        return len(self.triples)


def generate_bio2rdf(target_triples: int = 8000, seed: int = 23) -> Bio2RDFDataset:
    """Generate a Bio2RDF-like graph of roughly ``target_triples`` triples."""
    if target_triples < 200:
        raise WorkloadError("target_triples must be at least 200")
    builder = SyntheticGraphBuilder(BIO2RDF, seed=seed)
    # Articles contribute the bulk of the triples (as PubMed does in the real
    # Bio2RDF slice), so the gene/protein/drug relations the complex queries
    # traverse stay well inside the default 25% graph-store budget.
    gene_count = max(30, target_triples // 22)
    genes = builder.mint_entities("gene", gene_count)
    proteins = builder.mint_entities("protein", gene_count)
    drugs = builder.mint_entities("drug", max(15, gene_count // 3))
    diseases = builder.mint_entities("disease", max(10, gene_count // 6))
    pathways = builder.mint_entities("pathway", max(8, gene_count // 15))
    tissues = builder.mint_entities("tissue", 20)
    journals = builder.mint_entities("journal", 15)
    articles = builder.mint_entities("article", max(20, target_triples // 7))
    side_effects = builder.mint_entities("side_effect", 25)

    p = {name: BIO2RDF.term(name) for name in _PREDICATES}

    for index, gene in enumerate(genes):
        builder.add_fact(gene, p["hasSymbol"], f"SYM{index}")
        builder.add_fact(gene, p["encodes"], proteins[index])
        if builder.coin(0.5):
            builder.add_fact(gene, p["associatedWith"], builder.choose(diseases, skew=1.2))
        if builder.coin(0.3):
            builder.add_fact(gene, p["xref"], f"xref_{index % 777}")

    for index, protein in enumerate(proteins):
        builder.add_fact(protein, p["hasLabel"], f"protein_label_{index}")
        if builder.coin(0.8):
            partner = builder.choose(proteins, skew=1.2)
            if partner != protein:
                builder.add_fact(protein, p["interactsWith"], partner)
        if builder.coin(0.5):
            builder.add_fact(protein, p["partOfPathway"], builder.choose(pathways, skew=1.1))
        if builder.coin(0.4):
            builder.add_fact(protein, p["expressedIn"], builder.choose(tissues, skew=1.1))

    for index, drug in enumerate(drugs):
        builder.add_fact(drug, p["targets"], builder.choose(proteins, skew=1.2))
        if builder.coin(0.7):
            builder.add_fact(drug, p["treats"], builder.choose(diseases, skew=1.1))
        if builder.coin(0.5):
            builder.add_fact(drug, p["hasSideEffect"], builder.choose(side_effects, skew=1.2))
        if builder.coin(0.4):
            builder.add_fact(drug, p["dosage"], 10 + (index * 11) % 490)

    for index, disease in enumerate(diseases):
        if builder.coin(0.3):
            builder.add_fact(builder.choose(genes, skew=1.1), p["causes"], disease)

    for index, article in enumerate(articles):
        builder.add_fact(article, p["publishedIn"], builder.choose(journals, skew=1.2))
        builder.add_fact(article, p["yearPublished"], 1995 + index % 28)
        builder.add_fact(article, p["hasTitle"], f"title_{index}")
        builder.add_fact(article, p["hasAbstract"], f"abstract_{index}")
        builder.add_fact(article, p["hasDOI"], f"10.1000/article.{index}")
        if builder.coin(0.25):
            builder.add_fact(article, p["mentionsGene"], builder.choose(genes, skew=1.3))
        if builder.coin(0.15):
            builder.add_fact(article, p["mentionsDrug"], builder.choose(drugs, skew=1.2))

    return Bio2RDFDataset(
        triples=builder.build(),
        entities={
            "gene": genes,
            "protein": proteins,
            "drug": drugs,
            "disease": diseases,
            "pathway": pathways,
            "tissue": tissues,
            "journal": journals,
            "article": articles,
            "side_effect": side_effects,
        },
    )


def _values(entities: List[IRI], count: int) -> List[str]:
    if not entities:
        raise WorkloadError("empty entity pool for template slot")
    return [entities[i % len(entities)].n3() for i in range(count)]


def bio2rdf_templates(dataset: Bio2RDFDataset) -> List[QueryTemplate]:
    diseases = _values(dataset.entities["disease"], 5)
    pathways = _values(dataset.entities["pathway"], 5)
    tissues = _values(dataset.entities["tissue"], 5)
    side_effects = _values(dataset.entities["side_effect"], 5)

    return [
        QueryTemplate(
            name="bio-drug-gene-disease",
            family="complex",
            text=(
                "SELECT ?drug ?gene WHERE { ?drug bio:targets ?protein . "
                "?gene bio:encodes ?protein . ?gene bio:associatedWith ?disease . "
                "?drug bio:treats ?disease . ?drug bio:hasSideEffect {side_effect} . }"
            ),
            slots={"side_effect": side_effects},
        ),
        QueryTemplate(
            name="bio-interaction-pathway",
            family="complex",
            text=(
                "SELECT ?p1 ?p2 WHERE { ?p1 bio:interactsWith ?p2 . "
                "?p1 bio:partOfPathway ?path . ?p2 bio:partOfPathway ?path . "
                "?p1 bio:expressedIn {tissue} . }"
            ),
            slots={"tissue": tissues},
        ),
        QueryTemplate(
            name="bio-literature-gene",
            family="snowflake",
            text=(
                "SELECT ?article ?gene WHERE { ?article bio:mentionsGene ?gene . "
                "?article bio:mentionsDrug ?drug . ?drug bio:targets ?protein . "
                "?gene bio:encodes ?protein . ?drug bio:hasSideEffect {side_effect} . "
                "?article bio:yearPublished ?year . }"
            ),
            slots={"side_effect": side_effects},
        ),
        QueryTemplate(
            name="bio-disease-pathway",
            family="complex",
            text=(
                "SELECT ?gene ?protein WHERE { ?gene bio:associatedWith {disease} . "
                "?gene bio:encodes ?protein . ?protein bio:partOfPathway {pathway} . }"
            ),
            slots={"disease": diseases, "pathway": pathways},
        ),
        QueryTemplate(
            name="bio-symbol-lookup",
            family="star",
            text=(
                "SELECT ?gene ?symbol ?disease WHERE { ?gene bio:hasSymbol ?symbol . "
                "?gene bio:associatedWith ?disease . ?gene bio:encodes ?protein . "
                "?protein bio:expressedIn {tissue} . }"
            ),
            slots={"tissue": tissues},
        ),
    ]


def bio2rdf_workload(dataset: Bio2RDFDataset, mutations: int = 4, seed: int = 29) -> Workload:
    """The 25-query Bio2RDF workload (5 templates × (1 + ``mutations``))."""
    rng = random.Random(seed)
    entries: List[WorkloadQuery] = []
    for template in bio2rdf_templates(dataset):
        for mutation_index, query in enumerate(template.mutations(mutations, rng)):
            entries.append(
                WorkloadQuery(
                    template=template.name,
                    family=template.family,
                    mutation_index=mutation_index,
                    query=query,
                )
            )
    return Workload(name="Bio2RDF", queries=entries)
