"""Query templates, mutations, and workload assembly.

The paper builds every workload from *query templates* plus four *mutations*
per template; workloads come in an *ordered* version (a template and its
mutations are clustered) and a *random* version (all queries shuffled), and
are processed in batches of one fifth of the workload (Section 6.1).

A :class:`QueryTemplate` holds the template SPARQL text with ``{placeholder}``
slots; mutations substitute different constants into the slots (and may tweak
the projection), which keeps the *complex* part of the query stable across
mutations while varying the selective, simple part — the property that makes
materialized views occasionally useful and partition-level tuning robust.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import WorkloadError
from repro.sparql.ast import SelectQuery
from repro.sparql.parser import parse_query

__all__ = ["QueryTemplate", "WorkloadQuery", "Workload"]


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterised SPARQL template.

    Attributes
    ----------
    name:
        Template identifier, e.g. ``"yago-advisor-birthplace"``.
    family:
        Query-shape family (``"linear"``, ``"star"``, ``"snowflake"``,
        ``"complex"``, or a dataset-specific tag).
    text:
        SPARQL text with ``{slot}`` placeholders.
    slots:
        For every placeholder, the list of values mutations may choose from.
    """

    name: str
    family: str
    text: str
    slots: Dict[str, Sequence[str]] = field(default_factory=dict)

    def instantiate(self, values: Dict[str, str] | None = None) -> SelectQuery:
        """Parse the template with the given (or default) slot values."""
        bindings = {slot: choices[0] for slot, choices in self.slots.items()}
        if values:
            unknown = set(values) - set(self.slots)
            if unknown:
                raise WorkloadError(f"unknown template slots: {sorted(unknown)}")
            bindings.update(values)
        # Plain token replacement (not str.format) because SPARQL's own braces
        # would otherwise need escaping in every template.
        text = self.text
        for slot, value in bindings.items():
            text = text.replace("{" + slot + "}", value)
        return parse_query(text)

    def mutations(self, count: int, rng: random.Random) -> List[SelectQuery]:
        """The original instantiation plus ``count`` mutated instantiations."""
        queries = [self.instantiate()]
        for _ in range(count):
            values = {
                slot: choices[rng.randrange(len(choices))]
                for slot, choices in self.slots.items()
                if len(choices) > 1
            }
            queries.append(self.instantiate(values))
        return queries


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload entry: the query plus its provenance."""

    template: str
    family: str
    mutation_index: int
    query: SelectQuery


@dataclass
class Workload:
    """A named list of workload queries with ordered/random/batch views."""

    name: str
    queries: List[WorkloadQuery]
    batch_count: int = 5

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError(f"workload {self.name!r} has no queries")
        if self.batch_count < 1:
            raise WorkloadError("batch_count must be at least 1")

    def __len__(self) -> int:
        return len(self.queries)

    # ------------------------------------------------------------------ #
    # Ordered and random versions
    # ------------------------------------------------------------------ #
    def ordered(self) -> List[SelectQuery]:
        """Template-and-mutations clustered order (the generation order)."""
        return [entry.query for entry in self.queries]

    def randomized(self, seed: int = 11) -> List[SelectQuery]:
        """All queries shuffled deterministically by ``seed``."""
        shuffled = list(self.queries)
        random.Random(seed).shuffle(shuffled)
        return [entry.query for entry in shuffled]

    # ------------------------------------------------------------------ #
    # Batching (one fifth of the workload per batch by default)
    # ------------------------------------------------------------------ #
    def batches(self, order: str = "ordered", seed: int = 11) -> List[List[SelectQuery]]:
        """Split the workload into ``batch_count`` near-equal batches."""
        if order == "ordered":
            queries = self.ordered()
        elif order == "random":
            queries = self.randomized(seed)
        else:
            raise WorkloadError(f"unknown order {order!r}; use 'ordered' or 'random'")
        return split_batches(queries, self.batch_count)

    def families(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.queries:
            counts[entry.family] = counts.get(entry.family, 0) + 1
        return counts

    def stream(self, order: str = "ordered", repeats: int = 2, seed: int = 11) -> List[SelectQuery]:
        """The workload repeated ``repeats`` times — a serving trace.

        Serving benchmarks (``benchmarks/bench_serving_cache.py``) model
        steady traffic where the same template instantiations keep arriving;
        this is the pass structure the serving layer's caches exploit.
        """
        if repeats < 1:
            raise WorkloadError("repeats must be at least 1")
        if order == "ordered":
            queries = self.ordered()
        elif order == "random":
            queries = self.randomized(seed)
        else:
            raise WorkloadError(f"unknown order {order!r}; use 'ordered' or 'random'")
        return [query for _ in range(repeats) for query in queries]

    def subset(self, fraction: float, order: str = "ordered", seed: int = 11) -> List[SelectQuery]:
        """The first ``fraction`` of the workload (used by the Table 5 sweep,
        which runs on half of the random YAGO workload)."""
        if not 0.0 < fraction <= 1.0:
            raise WorkloadError("fraction must be in (0, 1]")
        queries = self.ordered() if order == "ordered" else self.randomized(seed)
        keep = max(1, int(round(len(queries) * fraction)))
        return queries[:keep]


def split_batches(queries: Sequence[SelectQuery], batch_count: int) -> List[List[SelectQuery]]:
    """Split ``queries`` into ``batch_count`` contiguous, near-equal batches."""
    if batch_count < 1:
        raise WorkloadError("batch_count must be at least 1")
    total = len(queries)
    if total == 0:
        raise WorkloadError("cannot batch an empty query list")
    batch_count = min(batch_count, total)
    base, remainder = divmod(total, batch_count)
    batches: List[List[SelectQuery]] = []
    start = 0
    for index in range(batch_count):
        size = base + (1 if index < remainder else 0)
        batches.append(list(queries[start : start + size]))
        start += size
    return batches
