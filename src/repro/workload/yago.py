"""Synthetic YAGO-like knowledge graph and workload.

The paper's YAGO slice contains the YagoFacts relations plus the
``hasGivenName`` / ``hasFamilyName`` literals (Table 3: 16.4M triples, 39
predicates, 20 workload queries).  This module builds a shape-preserving
stand-in: people with names, birthplaces, advisors, spouses, employers,
citizenships and prizes, over Zipf-skewed cities so that "born in the same
city" joins have non-trivial answers.

The workload contains four templates (the paper's Example 1 among them), each
with four mutations, for a total of 20 queries — matching the paper's YAGO
workload size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.rdf.graph import TripleSet
from repro.rdf.namespace import YAGO
from repro.rdf.terms import IRI

from repro.workload.generator import SyntheticGraphBuilder
from repro.workload.templates import QueryTemplate, Workload, WorkloadQuery

__all__ = ["YagoDataset", "generate_yago", "yago_workload", "YAGO_PREDICATES"]

#: The predicates the synthetic YAGO slice uses (a subset of real YAGO's 39).
YAGO_PREDICATES = [
    "hasGivenName",
    "hasFamilyName",
    "hasLabel",
    "hasBirthDate",
    "hasGender",
    "wasBornIn",
    "hasAcademicAdvisor",
    "isMarriedTo",
    "livesIn",
    "diedIn",
    "graduatedFrom",
    "worksAt",
    "isCitizenOf",
    "hasWonPrize",
    "hasChild",
    "actedIn",
    "directed",
    "influences",
    "isLocatedIn",
]


@dataclass
class YagoDataset:
    """The generated triples plus the entity pools used to fill query slots."""

    triples: TripleSet
    entities: Dict[str, List[IRI]]

    def __len__(self) -> int:
        return len(self.triples)


def generate_yago(target_triples: int = 5000, seed: int = 7) -> YagoDataset:
    """Generate a YAGO-like knowledge graph of roughly ``target_triples``."""
    if target_triples < 100:
        raise WorkloadError("target_triples must be at least 100")
    builder = SyntheticGraphBuilder(YAGO, seed=seed)
    # Roughly 9 facts are emitted per person (see the emission probabilities
    # below).  The proportions are chosen so that the union of the partitions
    # the workload's complex subqueries touch fits inside the default
    # graph-store budget (r_BG = 25% of the knowledge graph) — the same
    # property the paper's YAGO slice has, where name/date literals dominate
    # the triple count while the relations the complex queries traverse are
    # comparatively small.
    person_count = max(20, target_triples // 9)
    persons = builder.mint_entities("person", person_count)
    cities = builder.mint_entities("city", max(5, person_count // 40))
    countries = builder.mint_entities("country", max(5, person_count // 200 + 5))
    universities = builder.mint_entities("university", max(4, person_count // 80))
    organizations = builder.mint_entities("organization", max(4, person_count // 60))
    prizes = builder.mint_entities("prize", 12)
    movies = builder.mint_entities("movie", max(5, person_count // 25))

    p = {name: YAGO.term(name) for name in YAGO_PREDICATES}

    birth_city: Dict[IRI, IRI] = {}
    for index, person in enumerate(persons):
        builder.add_fact(person, p["hasGivenName"], f"given_{index % 997}")
        builder.add_fact(person, p["hasFamilyName"], f"family_{index % 499}")
        builder.add_fact(person, p["hasLabel"], f"person_label_{index}")
        builder.add_fact(person, p["hasBirthDate"], f"19{index % 90 + 10}-01-{index % 28 + 1:02d}")
        builder.add_fact(person, p["hasGender"], "female" if index % 2 else "male")

        city = builder.choose(cities, skew=1.1)
        birth_city[person] = city
        builder.add_fact(person, p["wasBornIn"], city)

        if builder.coin(0.5):
            builder.add_fact(person, p["livesIn"], builder.choose(cities, skew=1.1))
        if builder.coin(0.4):
            builder.add_fact(person, p["isCitizenOf"], builder.choose(countries, skew=1.05))

        if builder.coin(0.25):
            advisor = builder.choose(persons)
            if advisor != person:
                builder.add_fact(person, p["hasAcademicAdvisor"], advisor)

        if builder.coin(0.15):
            spouse = builder.choose(persons)
            if spouse != person:
                builder.add_fact(person, p["isMarriedTo"], spouse)
                builder.add_fact(spouse, p["isMarriedTo"], person)

        if builder.coin(0.4):
            builder.add_fact(person, p["graduatedFrom"], builder.choose(universities, skew=1.0))
        if builder.coin(0.4):
            builder.add_fact(person, p["worksAt"], builder.choose(organizations, skew=1.0))
        if builder.coin(0.08):
            builder.add_fact(person, p["hasWonPrize"], builder.choose(prizes, skew=1.2))
        if builder.coin(0.2):
            child = builder.choose(persons)
            if child != person:
                builder.add_fact(person, p["hasChild"], child)
        if builder.coin(0.18):
            builder.add_fact(person, p["actedIn"], builder.choose(movies, skew=1.1))
        if builder.coin(0.05):
            builder.add_fact(person, p["directed"], builder.choose(movies, skew=1.1))
        if builder.coin(0.1):
            other = builder.choose(persons)
            if other != person:
                builder.add_fact(person, p["influences"], other)
        if builder.coin(0.1):
            builder.add_fact(person, p["diedIn"], builder.choose(cities, skew=1.1))

    # Entity metadata that no complex query traverses (bulk facts, like the
    # long tail of YAGO predicates the evaluation never touches).
    for index, city in enumerate(cities):
        builder.add_fact(city, p["hasLabel"], f"city_label_{index}")
        builder.add_fact(city, p["isLocatedIn"], builder.choose(countries, skew=1.0))
    for kind in ("university", "organization", "movie"):
        for index, entity in enumerate(builder.entities(kind)):
            builder.add_fact(entity, p["hasLabel"], f"{kind}_label_{index}")

    return YagoDataset(
        triples=builder.build(),
        entities={
            "person": persons,
            "city": cities,
            "country": countries,
            "university": universities,
            "organization": organizations,
            "prize": prizes,
            "movie": movies,
        },
    )


def _slot_values(entities: List[IRI], count: int) -> List[str]:
    """N3 forms of the first ``count`` entities, cycled if necessary."""
    if not entities:
        raise WorkloadError("cannot build slot values from an empty entity pool")
    values = []
    for index in range(count):
        values.append(entities[index % len(entities)].n3())
    return values


def yago_templates(dataset: YagoDataset) -> List[QueryTemplate]:
    """The four YAGO query templates (Example 1 included)."""
    prizes = _slot_values(dataset.entities["prize"], 5)
    cities = _slot_values(dataset.entities["city"], 5)

    return [
        QueryTemplate(
            name="yago-advisor-birthplace",
            family="complex",
            text=(
                "SELECT ?GivenName ?FamilyName WHERE { "
                "?p y:hasGivenName ?GivenName . "
                "?p y:hasFamilyName ?FamilyName . "
                "?p y:wasBornIn ?city . "
                "?p y:hasAcademicAdvisor ?a . "
                "?a y:wasBornIn ?city . "
                "?p y:diedIn {city_constant} . }"
            ),
            slots={"city_constant": cities},
        ),
        QueryTemplate(
            name="yago-example1",
            family="complex",
            text=(
                "SELECT ?GivenName ?FamilyName WHERE { "
                "?p y:hasGivenName ?GivenName . "
                "?p y:hasFamilyName ?FamilyName . "
                "?p y:wasBornIn ?city . "
                "?p y:hasAcademicAdvisor ?a . "
                "?a y:wasBornIn ?city . "
                "?p y:isMarriedTo ?p2 . "
                "?p2 y:wasBornIn ?city . "
                "?p y:hasWonPrize {prize} . }"
            ),
            slots={"prize": prizes},
        ),
        QueryTemplate(
            name="yago-couple-same-birthplace",
            family="complex",
            text=(
                "SELECT ?GivenName WHERE { "
                "?p y:hasGivenName ?GivenName . "
                "?p y:isMarriedTo ?q . "
                "?p y:wasBornIn ?c . "
                "?q y:wasBornIn ?c . "
                "?p y:hasWonPrize {prize} . }"
            ),
            slots={"prize": prizes},
        ),
        QueryTemplate(
            name="yago-parent-child-birthplace",
            family="complex",
            text=(
                "SELECT ?FamilyName WHERE { "
                "?p y:hasFamilyName ?FamilyName . "
                "?p y:hasChild ?ch . "
                "?p y:wasBornIn ?c . "
                "?ch y:wasBornIn ?c . "
                "?p y:diedIn {city_constant} . }"
            ),
            slots={"city_constant": cities},
        ),
    ]


def yago_workload(dataset: YagoDataset, mutations: int = 4, seed: int = 13) -> Workload:
    """The 20-query YAGO workload (4 templates × (1 + ``mutations``))."""
    rng = random.Random(seed)
    entries: List[WorkloadQuery] = []
    for template in yago_templates(dataset):
        for mutation_index, query in enumerate(template.mutations(mutations, rng)):
            entries.append(
                WorkloadQuery(
                    template=template.name,
                    family=template.family,
                    mutation_index=mutation_index,
                    query=query,
                )
            )
    return Workload(name="YAGO", queries=entries)
