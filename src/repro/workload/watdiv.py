"""Synthetic WatDiv-like knowledge graph and workloads.

WatDiv models an e-commerce / social domain (users, products, retailers,
reviews) and ships four query-template families: linear (L), star (S),
snowflake-shaped (F), and complex (C).  The paper's WatDiv workload has 100
queries: 35 L, 25 S, 25 F, and 15 C (templates plus four mutations each).

This module generates a shape-preserving synthetic WatDiv graph (same entity
kinds, ~18 predicates, Zipf-skewed popularity) and the same four workload
families with the same query counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.rdf.graph import TripleSet
from repro.rdf.namespace import WATDIV
from repro.rdf.terms import IRI

from repro.workload.generator import SyntheticGraphBuilder
from repro.workload.templates import QueryTemplate, Workload, WorkloadQuery

__all__ = ["WatDivDataset", "generate_watdiv", "watdiv_workload", "WATDIV_FAMILY_SIZES"]

#: Number of queries per family in the paper's WatDiv workload.
WATDIV_FAMILY_SIZES = {"linear": 35, "star": 25, "snowflake": 25, "complex": 15}

_PREDICATES = [
    "follows",
    "friendOf",
    "likes",
    "purchased",
    "subscribes",
    "hasReview",
    "reviewer",
    "rating",
    "hasGenre",
    "soldBy",
    "locatedIn",
    "price",
    "caption",
    "hits",
    "homepage",
    "age",
    "gender",
    "title",
    "userName",
    "description",
    "email",
    "birthday",
    "imageUrl",
    "brand",
]


@dataclass
class WatDivDataset:
    """Synthetic WatDiv triples plus the entity pools for query slots."""

    triples: TripleSet
    entities: Dict[str, List[IRI]]

    def __len__(self) -> int:
        return len(self.triples)


def generate_watdiv(target_triples: int = 8000, seed: int = 17) -> WatDivDataset:
    """Generate a WatDiv-like graph of roughly ``target_triples`` triples."""
    if target_triples < 200:
        raise WorkloadError("target_triples must be at least 200")
    builder = SyntheticGraphBuilder(WATDIV, seed=seed)
    # Users dominate; every user contributes ~4.5 facts, every product ~6, and
    # the relation predicates the complex templates traverse are kept small
    # enough that each template's partition set fits the default 25% budget.
    user_count = max(40, target_triples // 8)
    product_count = max(20, int(user_count * 0.4))
    users = builder.mint_entities("user", user_count)
    products = builder.mint_entities("product", product_count)
    retailers = builder.mint_entities("retailer", max(5, product_count // 20))
    cities = builder.mint_entities("city", max(5, user_count // 100 + 5))
    genres = builder.mint_entities("genre", 15)
    websites = builder.mint_entities("website", max(5, user_count // 50))
    reviews = builder.mint_entities("review", max(10, product_count // 3))

    p = {name: WATDIV.term(name) for name in _PREDICATES}

    for index, user in enumerate(users):
        builder.add_fact(user, p["age"], 18 + (index * 7) % 60)
        builder.add_fact(user, p["userName"], f"user_name_{index}")
        builder.add_fact(user, p["email"], f"user_{index}@example.org")
        builder.add_fact(user, p["birthday"], f"19{index % 80 + 20}-0{index % 9 + 1}-15")
        if builder.coin(0.5):
            builder.add_fact(user, p["gender"], "female" if index % 2 else "male")
        if builder.coin(0.3):
            other = builder.choose(users, skew=1.2)
            if other != user:
                builder.add_fact(user, p["follows"], other)
        if builder.coin(0.2):
            friend = builder.choose(users, skew=1.0)
            if friend != user:
                builder.add_fact(user, p["friendOf"], friend)
        if builder.coin(0.4):
            builder.add_fact(user, p["likes"], builder.choose(products, skew=1.3))
        if builder.coin(0.3):
            builder.add_fact(user, p["purchased"], builder.choose(products, skew=1.3))
        if builder.coin(0.2):
            builder.add_fact(user, p["subscribes"], builder.choose(websites, skew=1.1))

    for index, product in enumerate(products):
        builder.add_fact(product, p["hasGenre"], builder.choose(genres, skew=1.2))
        builder.add_fact(product, p["soldBy"], builder.choose(retailers, skew=1.1))
        builder.add_fact(product, p["price"], 5 + (index * 13) % 500)
        builder.add_fact(product, p["description"], f"description_{index}")
        builder.add_fact(product, p["imageUrl"], f"http://img.example.org/{index}.png")
        builder.add_fact(product, p["brand"], f"brand_{index % 40}")
        if builder.coin(0.6):
            builder.add_fact(product, p["caption"], f"caption_{index % 211}")
        if builder.coin(0.5):
            builder.add_fact(product, p["title"], f"title_{index % 307}")

    for index, review in enumerate(reviews):
        product = builder.choose(products, skew=1.3)
        builder.add_fact(product, p["hasReview"], review)
        builder.add_fact(review, p["reviewer"], builder.choose(users, skew=1.2))
        builder.add_fact(review, p["rating"], 1 + index % 5)

    for retailer in retailers:
        builder.add_fact(retailer, p["locatedIn"], builder.choose(cities, skew=1.0))
        if builder.coin(0.7):
            builder.add_fact(retailer, p["homepage"], builder.choose(websites, skew=1.0))

    for index, website in enumerate(websites):
        builder.add_fact(website, p["hits"], (index * 37) % 10_000)

    return WatDivDataset(
        triples=builder.build(),
        entities={
            "user": users,
            "product": products,
            "retailer": retailers,
            "city": cities,
            "genre": genres,
            "website": websites,
            "review": reviews,
        },
    )


def _values(entities: List[IRI], count: int) -> List[str]:
    if not entities:
        raise WorkloadError("empty entity pool for template slot")
    return [entities[i % len(entities)].n3() for i in range(count)]


def watdiv_templates(dataset: WatDivDataset) -> Dict[str, List[QueryTemplate]]:
    """Template definitions per family (7 L, 5 S, 5 F, 3 C)."""
    genres = _values(dataset.entities["genre"], 5)
    cities = _values(dataset.entities["city"], 5)
    retailers = _values(dataset.entities["retailer"], 5)
    websites = _values(dataset.entities["website"], 5)
    products_slot = _values(dataset.entities["product"], 5)

    linear = [
        QueryTemplate(
            name="watdiv-L1",
            family="linear",
            text=(
                "SELECT ?u ?p WHERE { ?u wsdbm:follows ?v . ?v wsdbm:likes ?p . "
                "?p wsdbm:hasGenre {genre} . }"
            ),
            slots={"genre": genres},
        ),
        QueryTemplate(
            name="watdiv-L2",
            family="linear",
            text=(
                "SELECT ?u WHERE { ?u wsdbm:purchased ?p . ?p wsdbm:soldBy ?r . "
                "?r wsdbm:locatedIn {city} . }"
            ),
            slots={"city": cities},
        ),
        QueryTemplate(
            name="watdiv-L3",
            family="linear",
            text=(
                "SELECT ?u ?r WHERE { ?u wsdbm:likes ?p . ?p wsdbm:hasReview ?rev . "
                "?rev wsdbm:reviewer ?r . }"
            ),
        ),
        QueryTemplate(
            name="watdiv-L4",
            family="linear",
            text=(
                "SELECT ?v WHERE { ?u wsdbm:friendOf ?v . ?v wsdbm:subscribes {website} . }"
            ),
            slots={"website": websites},
        ),
        QueryTemplate(
            name="watdiv-L5",
            family="linear",
            text=(
                "SELECT ?u ?city WHERE { ?u wsdbm:purchased ?p . ?p wsdbm:soldBy {retailer} . "
                "{retailer} wsdbm:locatedIn ?city . }"
            ),
            slots={"retailer": retailers},
        ),
        QueryTemplate(
            name="watdiv-L6",
            family="linear",
            text=(
                "SELECT ?a ?c WHERE { ?a wsdbm:follows ?b . ?b wsdbm:follows ?c . "
                "?c wsdbm:likes ?p . ?p wsdbm:hasGenre {genre} . }"
            ),
            slots={"genre": genres},
        ),
        QueryTemplate(
            name="watdiv-L7",
            family="linear",
            text=(
                "SELECT ?rev ?rating WHERE { ?u wsdbm:subscribes {website} . "
                "?u wsdbm:purchased ?p . ?p wsdbm:hasReview ?rev . ?rev wsdbm:rating ?rating . }"
            ),
            slots={"website": websites},
        ),
    ]

    star = [
        QueryTemplate(
            name="watdiv-S1",
            family="star",
            text=(
                "SELECT ?p ?price ?caption WHERE { ?p wsdbm:hasGenre {genre} . "
                "?p wsdbm:soldBy {retailer} . "
                "?p wsdbm:price ?price . ?p wsdbm:caption ?caption . }"
            ),
            slots={"genre": genres, "retailer": retailers},
        ),
        QueryTemplate(
            name="watdiv-S2",
            family="star",
            text=(
                "SELECT ?u ?age WHERE { ?u wsdbm:age ?age . ?u wsdbm:gender ?g . "
                "?u wsdbm:subscribes {website} . ?u wsdbm:likes {product} . }"
            ),
            slots={"website": websites, "product": products_slot},
        ),
        QueryTemplate(
            name="watdiv-S3",
            family="star",
            text=(
                "SELECT ?r ?site WHERE { ?r wsdbm:locatedIn {city} . "
                "?r wsdbm:homepage ?site . ?p wsdbm:soldBy ?r . ?p wsdbm:hasGenre {genre} . }"
            ),
            slots={"city": cities, "genre": genres},
        ),
        QueryTemplate(
            name="watdiv-S4",
            family="star",
            text=(
                "SELECT ?rev ?rating ?who WHERE { ?rev wsdbm:rating ?rating . "
                "?rev wsdbm:reviewer ?who . FILTER(?rating >= 4) }"
            ),
        ),
        QueryTemplate(
            name="watdiv-S5",
            family="star",
            text=(
                "SELECT ?p ?title WHERE { ?p wsdbm:title ?title . ?p wsdbm:price ?price . "
                "?p wsdbm:soldBy {retailer} . ?p wsdbm:hasGenre {genre} . "
                "FILTER(?price <= 250) }"
            ),
            slots={"retailer": retailers, "genre": genres},
        ),
    ]

    snowflake = [
        QueryTemplate(
            name="watdiv-F1",
            family="snowflake",
            text=(
                "SELECT ?u ?r WHERE { ?u wsdbm:purchased ?p . ?u wsdbm:age ?age . "
                "?p wsdbm:hasGenre {genre} . ?p wsdbm:soldBy ?r . ?r wsdbm:locatedIn ?city . }"
            ),
            slots={"genre": genres},
        ),
        QueryTemplate(
            name="watdiv-F2",
            family="snowflake",
            text=(
                "SELECT ?p ?who WHERE { ?p wsdbm:hasReview ?rev . ?rev wsdbm:reviewer ?who . "
                "?rev wsdbm:rating ?rating . ?p wsdbm:soldBy {retailer} . ?who wsdbm:age ?age . }"
            ),
            slots={"retailer": retailers},
        ),
        QueryTemplate(
            name="watdiv-F3",
            family="snowflake",
            text=(
                "SELECT ?u ?v WHERE { ?u wsdbm:follows ?v . ?u wsdbm:likes ?p1 . "
                "?v wsdbm:likes ?p2 . ?p1 wsdbm:hasGenre {genre} . ?p2 wsdbm:hasGenre {genre} . }"
            ),
            slots={"genre": genres},
        ),
        QueryTemplate(
            name="watdiv-F4",
            family="snowflake",
            text=(
                "SELECT ?u WHERE { ?u wsdbm:subscribes ?site . ?site wsdbm:hits ?hits . "
                "?u wsdbm:purchased ?p . ?p wsdbm:price ?price . FILTER(?price <= 100) }"
            ),
        ),
        QueryTemplate(
            name="watdiv-F5",
            family="snowflake",
            text=(
                "SELECT ?who ?city WHERE { ?rev wsdbm:reviewer ?who . ?rev wsdbm:rating ?rating . "
                "?p wsdbm:hasReview ?rev . ?p wsdbm:soldBy ?r . ?r wsdbm:locatedIn ?city . "
                "FILTER(?rating >= 3) }"
            ),
        ),
    ]

    complex_family = [
        QueryTemplate(
            name="watdiv-C1",
            family="complex",
            text=(
                "SELECT ?u ?v ?p WHERE { ?u wsdbm:follows ?v . ?v wsdbm:friendOf ?u . "
                "?u wsdbm:likes ?p . ?v wsdbm:likes ?p . ?p wsdbm:hasGenre {genre} . }"
            ),
            slots={"genre": genres},
        ),
        QueryTemplate(
            name="watdiv-C2",
            family="complex",
            text=(
                "SELECT ?u ?r WHERE { ?u wsdbm:purchased ?p . ?p wsdbm:hasReview ?rev . "
                "?rev wsdbm:reviewer ?u . ?p wsdbm:soldBy ?r . ?r wsdbm:locatedIn {city} . }"
            ),
            slots={"city": cities},
        ),
        QueryTemplate(
            name="watdiv-C3",
            family="complex",
            text=(
                "SELECT ?a ?b WHERE { ?a wsdbm:follows ?b . ?b wsdbm:follows ?c . "
                "?c wsdbm:follows ?a . ?a wsdbm:likes ?p . ?b wsdbm:likes ?p . "
                "?p wsdbm:soldBy {retailer} . }"
            ),
            slots={"retailer": retailers},
        ),
    ]

    return {
        "linear": linear,
        "star": star,
        "snowflake": snowflake,
        "complex": complex_family,
    }


def watdiv_workload(
    dataset: WatDivDataset,
    family: str | None = None,
    mutations: int = 4,
    seed: int = 19,
) -> Workload:
    """Build the WatDiv workload (all families) or one family's sub-workload.

    ``family`` may be ``"linear"``, ``"star"``, ``"snowflake"``, ``"complex"``
    (the paper's WatDiv-L/S/F/C), or ``None`` for the full 100-query workload.
    """
    all_templates = watdiv_templates(dataset)
    if family is not None:
        if family not in all_templates:
            raise WorkloadError(f"unknown WatDiv family {family!r}")
        selected = {family: all_templates[family]}
        name = f"WatDiv-{family[0].upper()}"
    else:
        selected = all_templates
        name = "WatDiv"

    rng = random.Random(seed)
    entries: List[WorkloadQuery] = []
    for family_name, templates in selected.items():
        for template in templates:
            for mutation_index, query in enumerate(template.mutations(mutations, rng)):
                entries.append(
                    WorkloadQuery(
                        template=template.name,
                        family=family_name,
                        mutation_index=mutation_index,
                        query=query,
                    )
                )
    return Workload(name=name, queries=entries)
