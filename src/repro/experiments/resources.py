"""Experiments E7 and E8 — Table 6 and Figure 7: limited spare resources.

DOTIL's counterfactual scenario runs complex queries in the relational store
in parallel with the graph store, so the graph store has to share IO and CPU.
Section 6.3.3 throttles spare IO/CPU to 40% and 20% and reports:

* Table 6 — the graph store's slowdown under each budget (tiny for IO,
  noticeable for tight CPU),
* Figure 7 — the percentage of spare IO and CPU the graph store consumes over
  time while the workload runs (fluctuating early, stabilising low).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cost.resources import ResourceSample, ResourceThrottle, SlowdownReport
from repro.core.runner import run_workload
from repro.core.variants import RDBGDB
from repro.workload.yago import generate_yago, yago_workload

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

__all__ = [
    "ResourceSlowdownRow",
    "run_resource_slowdown",
    "format_resource_slowdown",
    "run_resource_timeline",
    "format_resource_timeline",
]

#: The budgets of Table 6: (resource, spare fraction).
TABLE6_BUDGETS = [("io", 0.4), ("io", 0.2), ("cpu", 0.4), ("cpu", 0.2)]


@dataclass(frozen=True)
class ResourceSlowdownRow:
    """One row of Table 6."""

    resource: str
    spare_fraction: float
    slowdown_percent: float
    tti_with_throttle: float
    tti_unthrottled: float


def run_resource_slowdown(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> List[ResourceSlowdownRow]:
    """Measure the graph store's slowdown under each Table 6 budget."""
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    workload = yago_workload(dataset, seed=settings.seed + 1)
    batches = workload.batches("ordered", seed=settings.seed)

    baseline = RDBGDB().load(dataset.triples)
    baseline_result = run_workload(baseline, batches, label="resources-baseline")
    baseline_graph_seconds = sum(b.graph_seconds for b in baseline_result.batches)

    rows: List[ResourceSlowdownRow] = []
    for resource, spare in TABLE6_BUDGETS:
        throttle = (
            ResourceThrottle(spare_io=spare) if resource == "io" else ResourceThrottle(spare_cpu=spare)
        )
        variant = RDBGDB(throttle=throttle).load(dataset.triples)
        result = run_workload(variant, batches, label=f"resources-{resource}-{spare}")
        graph_seconds = sum(b.graph_seconds for b in result.batches)
        if baseline_graph_seconds > 0:
            slowdown = (graph_seconds - baseline_graph_seconds) / baseline_graph_seconds * 100.0
        else:
            slowdown = throttle.slowdown_percent()
        rows.append(
            ResourceSlowdownRow(
                resource=resource,
                spare_fraction=spare,
                slowdown_percent=max(slowdown, 0.0),
                tti_with_throttle=result.total_tti,
                tti_unthrottled=baseline_result.total_tti,
            )
        )
    return rows


def format_resource_slowdown(rows: List[ResourceSlowdownRow]) -> str:
    lines = ["Table 6 — graph-store slowdown with limited spare resources"]
    for row in rows:
        lines.append(
            f"  {row.resource.upper():>3} {int(row.spare_fraction * 100):>3}% spare: "
            f"slowdown {row.slowdown_percent:6.2f}%  "
            f"(TTI {row.tti_with_throttle:.3f}s vs {row.tti_unthrottled:.3f}s)"
        )
    return "\n".join(lines)


def run_resource_timeline(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    spare_io: float = 0.4,
) -> List[ResourceSample]:
    """Record the Figure 7 time series of IO/CPU consumed by the graph store."""
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    workload = yago_workload(dataset, seed=settings.seed + 1)
    batches = workload.batches("ordered", seed=settings.seed)

    throttle = ResourceThrottle(spare_io=spare_io)
    variant = RDBGDB(throttle=throttle).load(dataset.triples)

    elapsed = 0.0
    for index, batch in enumerate(batches):
        batch_result = variant.run_batch(batch, batch_index=index)
        report = variant.offline_phase(batch, upcoming=batches[index + 1] if index + 1 < len(batches) else None)
        elapsed += batch_result.tti
        migrated = 0
        if report is not None:
            migrated = sum(
                variant.dual.design.partition_sizes.get(p, 0) for p in report.transferred
            ) if variant.dual.design else 0
        graph_work = sum(
            r.counters.edges_traversed + r.counters.nodes_expanded for r in batch_result.records
        )
        throttle.record_activity(time=elapsed, migrated_triples=migrated, graph_work_units=graph_work)
    return throttle.timeline()


def format_resource_timeline(samples: List[ResourceSample]) -> str:
    lines = ["Figure 7 — IO/CPU consumed by the graph store over time (40% spare IO)"]
    for sample in samples:
        lines.append(
            f"  t={sample.time:7.3f}s  IO {sample.io_percent:5.1f}%  CPU {sample.cpu_percent:5.1f}%"
        )
    return "\n".join(lines)
