"""Workload construction shared by the evaluation experiments.

The paper's Section 6 evaluates six workload groups: YAGO, WatDiv-L/S/F/C,
and Bio2RDF, each in an ordered and a random version, processed in batches of
one fifth of the workload.  This module builds all of them from the synthetic
datasets so every experiment driver (store variants, tuner comparison, cold
start, parameter sweep) works from the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.rdf.graph import TripleSet
from repro.workload.bio2rdf import generate_bio2rdf, bio2rdf_workload
from repro.workload.templates import Workload
from repro.workload.watdiv import generate_watdiv, watdiv_workload
from repro.workload.yago import generate_yago, yago_workload

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

__all__ = ["WorkloadSuite", "build_suite", "WORKLOAD_GROUPS"]

#: The six workload groups of the paper's evaluation, in presentation order.
WORKLOAD_GROUPS = ["YAGO", "WatDiv-L", "WatDiv-S", "WatDiv-F", "WatDiv-C", "Bio2RDF"]


@dataclass
class WorkloadSuite:
    """All datasets and workloads the evaluation needs, built once."""

    settings: ExperimentSettings
    datasets: Dict[str, TripleSet] = field(default_factory=dict)
    workloads: Dict[str, Workload] = field(default_factory=dict)

    def dataset_for(self, group: str) -> TripleSet:
        """The knowledge graph a workload group runs against."""
        if group.startswith("WatDiv"):
            return self.datasets["WatDiv"]
        if group in self.datasets:
            return self.datasets[group]
        raise KeyError(f"unknown workload group {group!r}")

    def workload_for(self, group: str) -> Workload:
        return self.workloads[group]

    def groups(self) -> List[str]:
        return [g for g in WORKLOAD_GROUPS if g in self.workloads]


def build_suite(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    groups: List[str] | None = None,
) -> WorkloadSuite:
    """Generate the datasets and workloads for the requested groups.

    ``groups`` defaults to all six; restricting it keeps test runs fast.
    """
    wanted = groups if groups is not None else list(WORKLOAD_GROUPS)
    suite = WorkloadSuite(settings=settings)

    if "YAGO" in wanted:
        yago = generate_yago(settings.yago_triples, seed=settings.seed)
        suite.datasets["YAGO"] = yago.triples
        suite.workloads["YAGO"] = yago_workload(yago, seed=settings.seed + 1)

    watdiv_groups = [g for g in wanted if g.startswith("WatDiv")]
    if watdiv_groups:
        watdiv = generate_watdiv(settings.watdiv_triples, seed=settings.seed + 2)
        suite.datasets["WatDiv"] = watdiv.triples
        family_by_group = {
            "WatDiv-L": "linear",
            "WatDiv-S": "star",
            "WatDiv-F": "snowflake",
            "WatDiv-C": "complex",
        }
        for group in watdiv_groups:
            family = family_by_group[group]
            suite.workloads[group] = watdiv_workload(watdiv, family=family, seed=settings.seed + 3)

    if "Bio2RDF" in wanted:
        bio = generate_bio2rdf(settings.bio2rdf_triples, seed=settings.seed + 4)
        suite.datasets["Bio2RDF"] = bio.triples
        suite.workloads["Bio2RDF"] = bio2rdf_workload(bio, seed=settings.seed + 5)

    return suite
