"""Ablation studies of DOTIL's design choices (beyond the paper's tables).

DESIGN.md calls out three design decisions worth isolating:

* **Reward amortisation** — the paper splits a subquery's reward across its
  partitions by predicate proportion (``δ(Pi)``); the ablation replaces this
  with a uniform split.
* **Counterfactual cap λ** — rewards are computed against a relational run
  capped at ``λ·c₁``; the ablation removes the cap (full relational cost).
* **Graph traversal planning** — the graph matcher orders patterns greedily
  by selectivity; the ablation keeps the query's source order.

Each ablation returns paired measurements so the benchmarks (and tests) can
assert the direction of the effect rather than absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import DEFAULT_CONFIG
from repro.core.runner import run_workload
from repro.core.tuner import Dotil
from repro.core.variants import RDBGDB
from repro.graphstore.store import GraphStore
from repro.relstore.store import RelationalStore
from repro.sparql.parser import parse_query
from repro.workload.yago import generate_yago, yago_workload

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.experiments.table1 import TABLE1_QUERY

__all__ = [
    "AblationResult",
    "run_reward_split_ablation",
    "run_counterfactual_cap_ablation",
    "run_planner_ablation",
]


@dataclass(frozen=True)
class AblationResult:
    """A named pair of measurements: the paper's choice vs the ablated one."""

    name: str
    paper_choice: float
    ablated: float
    unit: str = "seconds"

    @property
    def delta_percent(self) -> float:
        if self.paper_choice == 0:
            return 0.0
        return (self.ablated - self.paper_choice) / self.paper_choice * 100.0


class _UniformRewardDotil(Dotil):
    """DOTIL variant that splits rewards uniformly across partitions."""

    @staticmethod
    def _predicate_proportions(subquery) -> Dict:
        concrete = [p.predicate for p in subquery.patterns if p.has_concrete_predicate]
        unique = list(dict.fromkeys(concrete))
        if not unique:
            return {}
        share = 1.0 / len(unique)
        return {predicate: share for predicate in unique}


def run_reward_split_ablation(settings: ExperimentSettings = DEFAULT_SETTINGS) -> AblationResult:
    """Proportional (paper) vs uniform reward amortisation, compared by TTI."""
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    workload = yago_workload(dataset, seed=settings.seed + 1)
    batches = workload.batches("ordered", seed=settings.seed)

    proportional = RDBGDB().load(dataset.triples)
    proportional_result = run_workload(proportional, batches, label="reward-proportional")

    uniform = RDBGDB(tuner_factory=lambda dual: _UniformRewardDotil(dual)).load(dataset.triples)
    uniform_result = run_workload(uniform, batches, label="reward-uniform")

    return AblationResult(
        name="reward amortisation (proportional vs uniform)",
        paper_choice=proportional_result.total_tti,
        ablated=uniform_result.total_tti,
    )


def run_counterfactual_cap_ablation(settings: ExperimentSettings = DEFAULT_SETTINGS) -> AblationResult:
    """λ-capped counterfactual (paper) vs uncapped, compared by offline tuning cost.

    The online TTI is similar either way; the point of the cap is to bound the
    offline counterfactual work, so the ablation reports the relational work
    charged during tuning.
    """
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    workload = yago_workload(dataset, seed=settings.seed + 1)
    batches = workload.batches("ordered", seed=settings.seed)

    def measure(lam: float) -> float:
        config = DEFAULT_CONFIG.with_overrides(lam=lam)
        variant = RDBGDB(config=config).load(dataset.triples)
        offline_seconds = 0.0
        original = variant.dual.counterfactual_relational_cost

        def tracking(subquery, cap_seconds):
            nonlocal offline_seconds
            cost = original(subquery, cap_seconds)
            offline_seconds += cost
            return cost

        variant.dual.counterfactual_relational_cost = tracking  # type: ignore[method-assign]
        run_workload(variant, batches, label=f"cap-{lam}")
        return offline_seconds

    capped = measure(DEFAULT_CONFIG.lam)
    uncapped = measure(1e9)
    return AblationResult(
        name="counterfactual cap (lambda vs uncapped)",
        paper_choice=capped,
        ablated=uncapped,
        unit="offline counterfactual seconds",
    )


def run_planner_ablation(settings: ExperimentSettings = DEFAULT_SETTINGS) -> AblationResult:
    """Selectivity-ordered graph traversal vs source-order traversal."""
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    relational = RelationalStore()
    relational.load(dataset.triples)
    query = parse_query(TABLE1_QUERY)

    graph = GraphStore(storage_budget=None)
    for predicate in query.predicates():
        graph.load_partition(predicate, relational.partition(predicate))

    planned = graph.execute(query)
    naive = graph.execute(query, pattern_order=list(query.patterns))
    return AblationResult(
        name="graph traversal order (greedy vs source order)",
        paper_choice=planned.seconds,
        ablated=naive.seconds,
    )
