"""Experiment E5 — Table 5: DOTIL parameter sweep.

Section 6.3.1 sweeps DOTIL's five parameters one at a time (the others held
at their Table 4 defaults) on half of the random YAGO workload, reporting TTI
and the summed Q-matrix for every value.  The qualitative findings:

* ``r_BG`` has an interior optimum around 25%,
* TTI is largely insensitive to ``prob`` (it only changes training volume),
* ``alpha`` has an interior optimum around 0.5,
* ``gamma`` has an interior optimum around 0.7,
* larger ``lambda`` increases the Q-values (bigger counterfactual gap) at the
  price of longer offline training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import DEFAULT_CONFIG, DotilConfig
from repro.core.runner import run_workload
from repro.core.variants import RDBGDB
from repro.workload.templates import split_batches
from repro.workload.yago import generate_yago, yago_workload

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

__all__ = ["ParameterSweepRow", "PARAMETER_GRID", "run_parameter_sweep", "format_parameter_sweep"]

#: The paper's Table 5 value grid for every parameter.
PARAMETER_GRID: Dict[str, Sequence[float]] = {
    "r_bg": (0.20, 0.25, 0.30, 0.35, 0.40),
    "prob": (0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    "alpha": (0.3, 0.4, 0.5, 0.6, 0.7),
    "gamma": (0.5, 0.6, 0.7, 0.8, 0.9),
    "lam": (3.0, 3.5, 4.0, 4.5, 5.0),
}


@dataclass(frozen=True)
class ParameterSweepRow:
    """One row of Table 5: a parameter value, its TTI, and the Q-matrix sum."""

    parameter: str
    value: float
    tti: float
    qmatrix: Tuple[float, float, float, float]

    @property
    def qmatrix_total(self) -> float:
        return sum(self.qmatrix)


def _config_with(parameter: str, value: float, base: DotilConfig) -> DotilConfig:
    mapping = {"r_bg": "r_bg", "prob": "prob", "alpha": "alpha", "gamma": "gamma", "lam": "lam"}
    return base.with_overrides(**{mapping[parameter]: value})


def run_parameter_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    parameters: Sequence[str] | None = None,
    base_config: DotilConfig = DEFAULT_CONFIG,
    workload_fraction: float = 0.5,
    batch_count: int = 5,
) -> List[ParameterSweepRow]:
    """Sweep each parameter on half of the random YAGO workload (Table 5)."""
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    workload = yago_workload(dataset, seed=settings.seed + 1)
    queries = workload.subset(workload_fraction, order="random", seed=settings.seed)
    batches = split_batches(queries, batch_count)

    rows: List[ParameterSweepRow] = []
    for parameter in parameters or PARAMETER_GRID:
        for value in PARAMETER_GRID[parameter]:
            config = _config_with(parameter, value, base_config)
            variant = RDBGDB(config=config).load(dataset.triples)
            result = run_workload(variant, batches, label=f"table5-{parameter}-{value}")
            rows.append(
                ParameterSweepRow(
                    parameter=parameter,
                    value=value,
                    tti=result.total_tti,
                    qmatrix=variant.qmatrix_sum(),
                )
            )
    return rows


def format_parameter_sweep(rows: List[ParameterSweepRow]) -> str:
    """Render the sweep in the layout of the paper's Table 5."""
    lines = ["Table 5 — parameter tuning (TTI seconds, summed Q-matrix)"]
    current = None
    for row in rows:
        if row.parameter != current:
            current = row.parameter
            lines.append(f"-- {current}")
        q = ", ".join(f"{v:.4f}" for v in row.qmatrix)
        lines.append(f"   {row.value:<6g} TTI {row.tti:8.3f}   Q-matrix [{q}]")
    return "\n".join(lines)


def best_value(rows: List[ParameterSweepRow], parameter: str) -> float:
    """The parameter value with the lowest TTI (ties broken by Q-matrix sum)."""
    candidates = [row for row in rows if row.parameter == parameter]
    if not candidates:
        raise KeyError(f"no sweep rows for parameter {parameter!r}")
    return min(candidates, key=lambda row: (row.tti, -row.qmatrix_total)).value
