"""Experiment E1 — Table 1: MySQL vs Neo4j latency as the data size grows.

The paper answers the complex SPARQL query

    SELECT ?p WHERE { ?p y:wasBornIn ?city .
                      ?p y:hasAcademicAdvisor ?a .
                      ?a y:wasBornIn ?city . }

in MySQL and Neo4j while varying the triple count from 500k to 5M and reports
that MySQL's latency grows from ~11 s to ~99 s while Neo4j stays under 4 s.

The reproduction runs the same query over the relational and graph engines on
synthetic YAGO slices whose sizes follow the same 1×..10× progression
(scaled down to laptop size).  The expectation is the same *shape*: relational
latency grows roughly linearly with the triple count, graph latency stays
nearly flat, and the gap widens with scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graphstore.store import GraphStore
from repro.relstore.store import RelationalStore
from repro.sparql.parser import parse_query
from repro.workload.yago import generate_yago

__all__ = ["Table1Row", "TABLE1_QUERY", "run_table1", "format_table1"]

#: The paper's Table 1 query (its motivating complex query).
TABLE1_QUERY = (
    "SELECT ?p WHERE { "
    "?p y:wasBornIn ?city . "
    "?p y:hasAcademicAdvisor ?a . "
    "?a y:wasBornIn ?city . }"
)

#: The paper sweeps 500k..5M in steps of 500k — a 1×..10× progression.
PAPER_SCALE_STEPS = 10


@dataclass(frozen=True)
class Table1Row:
    """One column of Table 1: a triple count and both engines' latencies."""

    triples: int
    relational_seconds: float
    graph_seconds: float

    @property
    def speedup(self) -> float:
        if self.graph_seconds <= 0:
            return float("inf")
        return self.relational_seconds / self.graph_seconds


def run_table1(base_triples: int = 1000, steps: int = PAPER_SCALE_STEPS, seed: int = 7) -> List[Table1Row]:
    """Measure both engines on ``steps`` dataset sizes (1×..steps× the base)."""
    query = parse_query(TABLE1_QUERY)
    rows: List[Table1Row] = []
    for step in range(1, steps + 1):
        dataset = generate_yago(base_triples * step, seed=seed)
        relational = RelationalStore()
        relational.load(dataset.triples)
        graph = GraphStore(storage_budget=None)
        for predicate in query.predicates():
            graph.load_partition(predicate, relational.partition(predicate))

        relational_result = relational.execute(query)
        graph_result = graph.execute(query)
        if relational_result.distinct_rows() != graph_result.distinct_rows():
            raise AssertionError("relational and graph answers diverged in Table 1 experiment")
        rows.append(
            Table1Row(
                triples=len(dataset.triples),
                relational_seconds=relational_result.seconds,
                graph_seconds=graph_result.seconds,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the rows in the layout of the paper's Table 1."""
    lines = ["Table 1 — query latency varying #triples (seconds)"]
    header = "  ".join(f"{row.triples:>9d}" for row in rows)
    relational = "  ".join(f"{row.relational_seconds:>9.4f}" for row in rows)
    graph = "  ".join(f"{row.graph_seconds:>9.4f}" for row in rows)
    lines.append(f"#triples    {header}")
    lines.append(f"relational  {relational}")
    lines.append(f"graph       {graph}")
    return "\n".join(lines)
