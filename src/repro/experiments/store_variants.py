"""Experiments E2–E4 — Figures 3, 4, and 5: store-variant comparison.

Section 6.2 compares RDB-only, RDB-views, and RDB-GDB on every workload group
in both ordered and random versions:

* Figure 3 — per-batch TTI on ordered workloads,
* Figure 4 — per-batch TTI on random workloads,
* Figure 5 — total TTI per workload group, from which the headline numbers
  (up to average 43.72% improvement over RDB-only, 63.01% over RDB-views)
  are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.metrics import WorkloadResult, improvement_percent
from repro.core.runner import run_workload_repeated
from repro.core.variants import RDBGDB, RDBOnly, RDBViews

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.experiments.workloads import WorkloadSuite, build_suite

__all__ = ["VariantComparison", "StoreVariantReport", "run_store_variants", "format_store_variants"]

VARIANT_NAMES = ["RDB-only", "RDB-views", "RDB-GDB"]


@dataclass
class VariantComparison:
    """Results of the three variants on one workload group and order."""

    group: str
    order: str
    results: Dict[str, WorkloadResult] = field(default_factory=dict)

    def batch_ttis(self, variant: str) -> List[float]:
        return self.results[variant].batch_ttis()

    def total_tti(self, variant: str) -> float:
        return self.results[variant].total_tti

    def improvement_over(self, baseline: str, variant: str = "RDB-GDB") -> float:
        return improvement_percent(self.total_tti(baseline), self.total_tti(variant))


@dataclass
class StoreVariantReport:
    """All comparisons (Figure 3 + Figure 4 + Figure 5 totals)."""

    comparisons: List[VariantComparison] = field(default_factory=list)

    def find(self, group: str, order: str) -> VariantComparison:
        for comparison in self.comparisons:
            if comparison.group == group and comparison.order == order:
                return comparison
        raise KeyError(f"no comparison for {group!r} / {order!r}")

    def average_improvement(self, baseline: str) -> float:
        """Average of RDB-GDB's total-TTI improvement over ``baseline``."""
        values = [c.improvement_over(baseline) for c in self.comparisons]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def max_improvement(self, baseline: str) -> float:
        values = [c.improvement_over(baseline) for c in self.comparisons]
        return max(values) if values else 0.0


def _variant_factories():
    return {
        "RDB-only": lambda: RDBOnly(),
        "RDB-views": lambda: RDBViews(),
        "RDB-GDB": lambda: RDBGDB(),
    }


def run_store_variants(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    groups: List[str] | None = None,
    orders: List[str] | None = None,
    suite: WorkloadSuite | None = None,
) -> StoreVariantReport:
    """Run the Figure 3/4/5 comparison for the requested groups and orders."""
    if suite is None:
        suite = build_suite(settings, groups=groups)
    orders = orders or ["ordered", "random"]
    report = StoreVariantReport()

    for group in suite.groups():
        dataset = suite.dataset_for(group)
        workload = suite.workload_for(group)
        for order in orders:
            batches = workload.batches(order, seed=settings.seed)
            comparison = VariantComparison(group=group, order=order)
            for name, factory in _variant_factories().items():
                variant = factory().load(dataset)
                comparison.results[name] = run_workload_repeated(
                    variant,
                    batches,
                    repetitions=settings.repetitions,
                    discard=settings.discard,
                    label=f"{group}-{order}-{name}",
                )
            report.comparisons.append(comparison)
    return report


def format_store_variants(report: StoreVariantReport) -> str:
    """Figure 3/4 per-batch series plus Figure 5 totals, as text."""
    lines: List[str] = []
    for comparison in report.comparisons:
        lines.append(f"[{comparison.group} / {comparison.order}] per-batch TTI (s)")
        for name in VARIANT_NAMES:
            series = "  ".join(f"{tti:7.3f}" for tti in comparison.batch_ttis(name))
            lines.append(f"  {name:<10} {series}   total {comparison.total_tti(name):7.3f}")
        lines.append(
            "  improvement of RDB-GDB: "
            f"{comparison.improvement_over('RDB-only'):5.1f}% vs RDB-only, "
            f"{comparison.improvement_over('RDB-views'):5.1f}% vs RDB-views"
        )
    lines.append(
        "Average improvement of RDB-GDB: "
        f"{report.average_improvement('RDB-only'):5.1f}% vs RDB-only (paper: 43.72%), "
        f"{report.average_improvement('RDB-views'):5.1f}% vs RDB-views (paper: 63.01%)"
    )
    return "\n".join(lines)
