"""Shared experiment settings: dataset scales and run protocol.

Every experiment accepts an :class:`ExperimentSettings` so the same driver
can run at test scale (seconds), benchmark scale (the default), or a larger
"paper-shaped" scale when more time is available.  The paper's datasets are
14M–60M triples; the synthetic stand-ins default to a few thousand triples,
which is enough to reproduce every qualitative result deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["ExperimentSettings", "TEST_SETTINGS", "DEFAULT_SETTINGS", "LARGE_SETTINGS"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and protocol knobs shared by every experiment driver.

    Attributes
    ----------
    yago_triples, watdiv_triples, bio2rdf_triples:
        Approximate synthetic dataset sizes.
    repetitions, discard:
        The warm-up protocol: each test runs ``repetitions`` times and the
        first ``discard`` runs are dropped before averaging (the paper runs 6
        and keeps the last 5).
    seed:
        Seed used for dataset generation and workload shuffling.
    """

    yago_triples: int = 6000
    watdiv_triples: int = 8000
    bio2rdf_triples: int = 8000
    repetitions: int = 3
    discard: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if min(self.yago_triples, self.watdiv_triples, self.bio2rdf_triples) < 200:
            raise ConfigError("dataset sizes must be at least 200 triples")
        if self.repetitions < 1 or not 0 <= self.discard < self.repetitions:
            raise ConfigError("invalid repetition/discard protocol")

    def scaled(self, factor: float) -> "ExperimentSettings":
        """Return a copy with all dataset sizes multiplied by ``factor``."""
        return replace(
            self,
            yago_triples=max(200, int(self.yago_triples * factor)),
            watdiv_triples=max(200, int(self.watdiv_triples * factor)),
            bio2rdf_triples=max(200, int(self.bio2rdf_triples * factor)),
        )


#: Tiny scale used by the unit/integration tests.
TEST_SETTINGS = ExperimentSettings(
    yago_triples=2500, watdiv_triples=3000, bio2rdf_triples=3000, repetitions=2, discard=0
)

#: The default benchmark scale (seconds per experiment).
DEFAULT_SETTINGS = ExperimentSettings()

#: A larger scale with the paper's full warm-up protocol.
LARGE_SETTINGS = ExperimentSettings(
    yago_triples=20000, watdiv_triples=24000, bio2rdf_triples=24000, repetitions=6, discard=1
)
