"""Experiment E9 — Figure 8: DOTIL versus other tuning policies.

Section 6.4 compares DOTIL with one-off mode (tunes once, knowing the whole
workload), the LRU policy (most frequent partitions transferred after each
batch, least-recently-used evicted), and ideal mode (tunes for the *next*
batch in advance — DOTIL's unreachable upper bound), on four workload groups:
YAGO, ordered WatDiv, random WatDiv, and Bio2RDF.

Expected shape: DOTIL clearly beats one-off and LRU, and sits close to ideal —
closer on ordered workloads than on random ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.baseline_tuners import IdealTuner, LRUTuner, OneOffTuner
from repro.core.config import PAPER_TUNED_CONFIG
from repro.core.metrics import WorkloadResult
from repro.core.runner import run_workload_repeated
from repro.core.tuner import Dotil
from repro.core.variants import RDBGDB

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.experiments.workloads import WorkloadSuite, build_suite

__all__ = ["TunerComparison", "run_tuner_comparison", "format_tuner_comparison", "TUNER_NAMES"]

TUNER_NAMES = ["DOTIL", "one-off", "LRU", "ideal"]

#: The four workload groups of Figure 8 as (label, suite group, order) triples.
FIGURE8_GROUPS = [
    ("YAGO", "YAGO", "ordered"),
    ("ordered WatDiv", "WatDiv-C", "ordered"),
    ("random WatDiv", "WatDiv-C", "random"),
    ("Bio2RDF", "Bio2RDF", "ordered"),
]


@dataclass
class TunerComparison:
    """Per-batch TTI of every tuning policy on one workload group."""

    label: str
    results: Dict[str, WorkloadResult] = field(default_factory=dict)

    def total_tti(self, tuner: str) -> float:
        return self.results[tuner].total_tti

    def batch_ttis(self, tuner: str) -> List[float]:
        return self.results[tuner].batch_ttis()

    def gap_to_ideal(self, tuner: str = "DOTIL") -> float:
        """Relative distance of ``tuner`` above the ideal mode's total TTI."""
        ideal = self.total_tti("ideal")
        if ideal <= 0:
            return 0.0
        return (self.total_tti(tuner) - ideal) / ideal


def _tuner_factories() -> Dict[str, Callable]:
    # DOTIL runs with the parameter values Section 6.3.1 settles on (the
    # tuner comparison in the paper happens after the parameter study).
    return {
        "DOTIL": lambda dual: Dotil(dual, PAPER_TUNED_CONFIG),
        "one-off": lambda dual: OneOffTuner(dual),
        "LRU": lambda dual: LRUTuner(dual),
        "ideal": lambda dual: IdealTuner(dual),
    }


def run_tuner_comparison(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    suite: WorkloadSuite | None = None,
    groups: List[tuple] | None = None,
) -> List[TunerComparison]:
    """Run Figure 8's tuner comparison."""
    wanted = groups or FIGURE8_GROUPS
    if suite is None:
        suite = build_suite(settings, groups=sorted({g for _, g, _ in wanted}))

    comparisons: List[TunerComparison] = []
    for label, group, order in wanted:
        dataset = suite.dataset_for(group)
        workload = suite.workload_for(group)
        batches = workload.batches(order, seed=settings.seed)
        comparison = TunerComparison(label=label)
        for tuner_name, factory in _tuner_factories().items():
            variant = RDBGDB(tuner_factory=factory).load(dataset)
            comparison.results[tuner_name] = run_workload_repeated(
                variant,
                batches,
                repetitions=settings.repetitions,
                discard=settings.discard,
                label=f"{label}-{tuner_name}",
            )
        comparisons.append(comparison)
    return comparisons


def format_tuner_comparison(comparisons: List[TunerComparison]) -> str:
    lines = ["Figure 8 — TTI of DOTIL vs one-off, LRU, and ideal tuning"]
    for comparison in comparisons:
        lines.append(f"  [{comparison.label}]")
        for tuner in TUNER_NAMES:
            series = "  ".join(f"{tti:7.3f}" for tti in comparison.batch_ttis(tuner))
            lines.append(f"    {tuner:<8} {series}   total {comparison.total_tti(tuner):7.3f}")
        lines.append(f"    DOTIL gap to ideal: {100.0 * comparison.gap_to_ideal():5.1f}%")
    return "\n".join(lines)
