"""Experiment drivers — one module per table/figure of the paper's evaluation."""

from repro.experiments.ablations import (
    AblationResult,
    run_counterfactual_cap_ablation,
    run_planner_ablation,
    run_reward_split_ablation,
)
from repro.experiments.cold_start import ColdStartPoint, format_cold_start, run_cold_start
from repro.experiments.param_tuning import (
    PARAMETER_GRID,
    ParameterSweepRow,
    best_value,
    format_parameter_sweep,
    run_parameter_sweep,
)
from repro.experiments.resources import (
    ResourceSlowdownRow,
    format_resource_slowdown,
    format_resource_timeline,
    run_resource_slowdown,
    run_resource_timeline,
)
from repro.experiments.settings import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    LARGE_SETTINGS,
    TEST_SETTINGS,
)
from repro.experiments.store_variants import (
    StoreVariantReport,
    VariantComparison,
    format_store_variants,
    run_store_variants,
)
from repro.experiments.table1 import TABLE1_QUERY, Table1Row, format_table1, run_table1
from repro.experiments.tuner_comparison import (
    TUNER_NAMES,
    TunerComparison,
    format_tuner_comparison,
    run_tuner_comparison,
)
from repro.experiments.workloads import WORKLOAD_GROUPS, WorkloadSuite, build_suite

__all__ = [
    "ExperimentSettings",
    "TEST_SETTINGS",
    "DEFAULT_SETTINGS",
    "LARGE_SETTINGS",
    "WorkloadSuite",
    "build_suite",
    "WORKLOAD_GROUPS",
    "Table1Row",
    "TABLE1_QUERY",
    "run_table1",
    "format_table1",
    "StoreVariantReport",
    "VariantComparison",
    "run_store_variants",
    "format_store_variants",
    "ParameterSweepRow",
    "PARAMETER_GRID",
    "run_parameter_sweep",
    "format_parameter_sweep",
    "best_value",
    "ColdStartPoint",
    "run_cold_start",
    "format_cold_start",
    "ResourceSlowdownRow",
    "run_resource_slowdown",
    "format_resource_slowdown",
    "run_resource_timeline",
    "format_resource_timeline",
    "TunerComparison",
    "TUNER_NAMES",
    "run_tuner_comparison",
    "format_tuner_comparison",
    "AblationResult",
    "run_reward_split_ablation",
    "run_counterfactual_cap_ablation",
    "run_planner_ablation",
]
