"""Experiment E6 — Figure 6: cold start of the graph store.

The graph store begins empty; Section 6.3.2 measures, per batch, how much of
the total cost is served by the graph store as DOTIL gradually fills it.  The
paper observes a small graph-store share in the first one or two batches and
a rapid rise from the third batch on, concluding that the cold start barely
hurts overall performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.runner import run_workload
from repro.core.variants import RDBGDB
from repro.workload.yago import generate_yago, yago_workload

from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

__all__ = ["ColdStartPoint", "run_cold_start", "format_cold_start"]


@dataclass(frozen=True)
class ColdStartPoint:
    """One bar of Figure 6: a batch's total cost and its graph-store share."""

    order: str
    batch_index: int
    total_tti: float
    graph_seconds: float

    @property
    def graph_share(self) -> float:
        if self.total_tti <= 0:
            return 0.0
        return self.graph_seconds / self.total_tti


def run_cold_start(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    orders: List[str] | None = None,
) -> List[ColdStartPoint]:
    """Run the YAGO workload from a cold graph store and track its cost share."""
    dataset = generate_yago(settings.yago_triples, seed=settings.seed)
    workload = yago_workload(dataset, seed=settings.seed + 1)
    points: List[ColdStartPoint] = []
    for order in orders or ["ordered", "random"]:
        variant = RDBGDB().load(dataset.triples)
        batches = workload.batches(order, seed=settings.seed)
        result = run_workload(variant, batches, label=f"cold-start-{order}")
        for batch in result.batches:
            points.append(
                ColdStartPoint(
                    order=order,
                    batch_index=batch.index,
                    total_tti=batch.tti,
                    graph_seconds=batch.graph_seconds,
                )
            )
    return points


def format_cold_start(points: List[ColdStartPoint]) -> str:
    lines = ["Figure 6 — cost proportion served by the graph store (cold start)"]
    for order in sorted({p.order for p in points}):
        lines.append(f"  {order} YAGO workload")
        for point in (p for p in points if p.order == order):
            lines.append(
                f"    batch {point.batch_index + 1}: total {point.total_tti:7.3f}s, "
                f"graph share {100.0 * point.graph_share:5.1f}%"
            )
    return "\n".join(lines)
