"""CLI for the invariant linter: ``python -m repro.analysis [paths...]``.

Prints one ``path:line:col: RULE message`` finding per line and exits
``1`` when there are findings, ``0`` on a clean tree, ``2`` on usage
errors.  ``--output FILE`` additionally writes the report to ``FILE`` so
CI can upload it as an artifact whether or not the gate fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.lint import lint_paths
from repro.analysis.rules import DEFAULT_RULES


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint the repro source tree against the project invariants (REP001-REP006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the findings report to FILE",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.name}: {rule.description}")
        return 0

    rules = list(DEFAULT_RULES)
    if args.select:
        wanted = {part.strip().upper() for part in args.select.split(",") if part.strip()}
        known = {rule.name for rule in rules}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown rule(s) {', '.join(sorted(unknown))}; known: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.name in wanted]

    findings = lint_paths(args.paths, rules)
    lines = [finding.format() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("clean: no findings")
    report = "\n".join(lines)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
