"""Project-invariant static analysis and dynamic lock-order checking.

Eight PRs of growth turned this reproduction into a heavily concurrent
serving system whose correctness rests on a handful of conventions: clocks
are injected, background threads are named, durable renames are fsynced,
swallowed exceptions leave evidence, mirrored gauges are assigned (never
accumulated), and every :class:`~repro.core.dualstore.DualStore` mutation
fires the listener hook.  This package enforces those conventions
mechanically:

* :mod:`repro.analysis.lint` + :mod:`repro.analysis.rules` — an ``ast``
  based invariant linter (rules ``REP001``–``REP006``) with ``file:line``
  findings, inline ``# repro: allow[RULE]`` suppressions and a CLI
  (``python -m repro.analysis src/``) that exits non-zero on findings.
* :mod:`repro.analysis.lockgraph` — a runtime lock-order race detector:
  instruments the project's lock classes, records per-thread held-sets,
  builds the directed acquisition-order graph and reports cycles as
  potential deadlocks with both witness stacks.

See ``docs/architecture.md`` §11 for the catalogue of enforced invariants.
"""

from repro.analysis.lint import Finding, LintModule, Rule, lint_paths, lint_source
from repro.analysis.lockgraph import LockGraph, LockOrderError, instrument
from repro.analysis.rules import DEFAULT_RULES

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "lint_paths",
    "lint_source",
    "DEFAULT_RULES",
    "LockGraph",
    "LockOrderError",
    "instrument",
]
