"""``ast``-based invariant-lint framework.

The framework is deliberately small: a :class:`Rule` visits one parsed
module and yields :class:`Finding`\\ s; :func:`lint_source` /
:func:`lint_paths` run a rule set over source text or a file tree and
filter findings through the inline suppression table.  The project rules
themselves live in :mod:`repro.analysis.rules`; the CLI in
``repro/analysis/__main__.py``.

Suppressions
------------
A finding is suppressed by a ``# repro: allow[RULE]`` comment on the
flagged line or on the line directly above it::

    thread = threading.Thread(target=loop)  # repro: allow[REP002]

    # repro: allow[REP001]
    now = time.monotonic()

Several rules may be listed (``allow[REP001,REP004]``); ``allow[ALL]``
suppresses every rule on that line.  Parse failures are reported as rule
``REP000`` and cannot be suppressed — a file the linter cannot read is a
finding in itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["Finding", "LintModule", "Rule", "lint_source", "lint_paths", "iter_python_files"]

#: Rule name reserved for files the linter cannot parse (unsuppressable).
PARSE_ERROR_RULE = "REP000"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def module_subpath(path: str) -> str:
    """The path below the last ``repro`` package directory, POSIX-style.

    Rules scope themselves to package-relative locations
    (``resilience/fleet.py``, ``persist/snapshot.py``) so the linter gives
    the same answer for ``src/repro/persist/wal.py``, an installed
    ``.../site-packages/repro/persist/wal.py``, and a test fixture passing
    a synthetic path.  A path with no ``repro`` component is returned
    as-is.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        below = parts[index + 1 :]
        if below:
            return "/".join(below)
    return "/".join(parts)


def _scan_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip().upper() for part in match.group(1).split(",") if part.strip()}
        if rules:
            table[number] = rules
    return table


class LintModule:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.subpath = module_subpath(path)
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._suppressions = _scan_suppressions(self.lines)

    def suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is allowed on ``line`` (same line or the one above)."""
        if rule == PARSE_ERROR_RULE:
            return False
        for probe in (line, line - 1):
            allowed = self._suppressions.get(probe)
            if allowed is not None and (rule in allowed or "ALL" in allowed):
                return True
        return False


class Rule:
    """Base class for invariant rules.

    Subclasses set :attr:`name` (``REPnnn``) and :attr:`description`,
    optionally narrow :meth:`applies_to`, and implement :meth:`check`.
    """

    name: str = ""
    description: str = ""

    def applies_to(self, module: LintModule) -> bool:
        return True

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _sort_key(finding: Finding):
    return (finding.path, finding.line, finding.col, finding.rule)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source text under ``path`` (which drives rule scoping)."""
    if rules is None:
        from repro.analysis.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    try:
        module = LintModule(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    findings = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for found in rule.check(module):
            if not module.suppressed(found.rule, found.line):
                findings.append(found)
    return sorted(findings, key=_sort_key)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directory trees)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), rules))
    return sorted(findings, key=_sort_key)
