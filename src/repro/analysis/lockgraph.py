"""Dynamic lock-order (deadlock) race detector.

ThreadSanitizer-style lock-order checking for the project's own locks:
while instrumentation is installed, every instrumented lock acquisition
records the acquiring thread's *held-set* and adds directed edges
``held -> acquired`` to an acquisition-order graph.  A cycle in that graph
is a potential deadlock — two code paths take the same locks in opposite
orders — even if the test run never actually interleaved badly enough to
wedge.  Each edge keeps its first witness: the thread name plus **both**
stacks (where the already-held lock was acquired, and where the new lock
was acquired on top of it), so a reported cycle is actionable without
re-running anything.

What gets instrumented under :func:`instrument`:

* ``threading.Lock()`` / ``threading.RLock()`` constructed *by project
  code* (the creation site's file path contains ``repro/``) — stdlib
  internals (``Condition``, ``Event``, executors, ``http.server``) keep
  raw locks, which keeps the graph readable and avoids re-entrancy
  surprises inside ``threading`` itself.
* :class:`repro.serve.adaptive.ReadWriteLock` — both sides map to one
  graph node (the serving gate); read and write acquisitions order
  identically for deadlock purposes.

Locks are tracked per *instance* (two caches built at the same source line
are distinct nodes) and named by creation site, so reports read as
``Lock@serve/service.py:244``.  Tests can also wrap locks explicitly with
:meth:`LockGraph.wrap` and a chosen name — that is how the seeded AB/BA
regression test drives the detector.

Re-entrant acquisition of the *same* lock by one thread only bumps a
hold-count (no self-edge); cross-thread waits (``Future.result`` and
friends) are invisible here by design — this is a lock-*order* detector,
not a general wait-for-graph.
"""

from __future__ import annotations

import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["LockGraph", "LockOrderError", "instrument"]

#: Raw factories captured before any instrumentation can patch them.
_RAW_LOCK = threading.Lock
_RAW_RLOCK = threading.RLock

#: Frames kept per witness stack (innermost last).
_STACK_LIMIT = 12


class LockOrderError(AssertionError):
    """Raised by :meth:`LockGraph.assert_acyclic` when cycles exist."""


def _capture_stack(skip: int) -> Tuple[str, ...]:
    frames = traceback.extract_stack()[: -skip if skip else None]
    own = __file__.replace("\\", "/")
    kept = [frame for frame in frames if frame.filename.replace("\\", "/") != own]
    return tuple(
        f"{frame.filename}:{frame.lineno} in {frame.name}"
        for frame in kept[-_STACK_LIMIT:]
    )


def _caller_site(depth: int = 2) -> Tuple[str, str]:
    """(filename, short ``path:line`` site) of the frame ``depth`` up."""
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename.replace("\\", "/")
    short = filename
    if "/repro/" in filename:
        short = filename.rsplit("/repro/", 1)[1]
    return filename, f"{short}:{frame.f_lineno}"


def _is_project_file(filename: str) -> bool:
    normalized = filename.replace("\\", "/")
    return "/repro/" in normalized and "/repro/analysis/" not in normalized


@dataclass
class LockInfo:
    """One tracked lock instance."""

    lock_id: int
    name: str
    kind: str  # "lock" | "rlock" | "rwlock" | "wrapped"


@dataclass
class EdgeWitness:
    """First observation of one ``held -> acquired`` ordering."""

    thread: str
    holding_stack: Tuple[str, ...]
    acquire_stack: Tuple[str, ...]


@dataclass
class _Held:
    lock_id: int
    count: int
    stack: Tuple[str, ...]


class LockGraph:
    """The acquisition-order graph plus per-thread held-set bookkeeping.

    Thread-safe; one graph instance is active per :func:`instrument`
    scope.  All bookkeeping uses raw (uninstrumented) locks internally.
    """

    def __init__(self) -> None:
        self._mutex = _RAW_LOCK()
        self.locks: Dict[int, LockInfo] = {}
        #: (held lock id, acquired lock id) -> first witness.
        self.edges: Dict[Tuple[int, int], EdgeWitness] = {}
        self._held: Dict[int, List[_Held]] = {}

    # ------------------------------------------------------------------ #
    # Registration and event intake
    # ------------------------------------------------------------------ #
    def register(self, lock_id: int, name: str, kind: str) -> None:
        with self._mutex:
            self.locks[lock_id] = LockInfo(lock_id, name, kind)

    def wrap(self, lock, name: str, kind: str = "wrapped"):
        """Wrap an existing lock object for explicit tracking (tests)."""
        wrapper = _InstrumentedLock(self, lock)
        self.register(id(wrapper), name, kind)
        return wrapper

    def note_acquire(self, lock_id: int, *, fallback_name: Optional[str] = None) -> None:
        """Record that the current thread now holds ``lock_id``."""
        stack = _capture_stack(skip=2)
        ident = threading.get_ident()
        thread_name = threading.current_thread().name
        with self._mutex:
            if lock_id not in self.locks and fallback_name is not None:
                self.locks[lock_id] = LockInfo(lock_id, fallback_name, "rwlock")
            held = self._held.setdefault(ident, [])
            for entry in held:
                if entry.lock_id == lock_id:
                    entry.count += 1  # re-entrant: no new edges, no self-edge
                    return
            for entry in held:
                key = (entry.lock_id, lock_id)
                if key not in self.edges:
                    self.edges[key] = EdgeWitness(thread_name, entry.stack, stack)
            held.append(_Held(lock_id, 1, stack))

    def note_release(self, lock_id: int) -> None:
        with self._mutex:
            held = self._held.get(threading.get_ident())
            if not held:
                return
            for index in range(len(held) - 1, -1, -1):
                if held[index].lock_id == lock_id:
                    held[index].count -= 1
                    if held[index].count == 0:
                        del held[index]
                    return

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def name_of(self, lock_id: int) -> str:
        info = self.locks.get(lock_id)
        return info.name if info is not None else f"lock<{lock_id:#x}>"

    def edge_names(self) -> Set[Tuple[str, str]]:
        """The observed orderings as ``(held name, acquired name)`` pairs."""
        with self._mutex:
            return {(self.name_of(a), self.name_of(b)) for (a, b) in self.edges}

    def cycles(self) -> List[List[int]]:
        """Every distinct acquisition-order cycle, as lock-id paths.

        Each returned list is one cycle ``[a, b, ..., z]`` meaning edges
        ``a->b->...->z->a`` were all observed.  Cycles that visit the same
        set of locks are reported once.
        """
        with self._mutex:
            adjacency: Dict[int, List[int]] = {}
            for a, b in self.edges:
                adjacency.setdefault(a, []).append(b)
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in adjacency}
        found: List[List[int]] = []
        seen_sets: Set[frozenset] = set()
        path: List[int] = []

        def visit(node: int) -> None:
            color[node] = GREY
            path.append(node)
            for neighbour in adjacency.get(node, ()):
                if neighbour not in adjacency:
                    continue  # sink: cannot be on a cycle through adjacency
                if color[neighbour] == GREY:
                    cycle = path[path.index(neighbour) :]
                    key = frozenset(cycle)
                    if key not in seen_sets:
                        seen_sets.add(key)
                        found.append(list(cycle))
                elif color[neighbour] == WHITE:
                    visit(neighbour)
            path.pop()
            color[node] = BLACK

        for node in list(adjacency):
            if color[node] == WHITE:
                visit(node)
        return found

    def report_cycles(self, cycles: Optional[Sequence[Sequence[int]]] = None) -> str:
        """Human-readable potential-deadlock report with both witness stacks."""
        if cycles is None:
            cycles = self.cycles()
        if not cycles:
            return "lock-order graph is acyclic"
        lines: List[str] = []
        with self._mutex:
            edges = dict(self.edges)
        for cycle in cycles:
            names = " -> ".join(self.name_of(node) for node in cycle)
            lines.append(f"potential deadlock: {names} -> {self.name_of(cycle[0])}")
            for position, node in enumerate(cycle):
                successor = cycle[(position + 1) % len(cycle)]
                witness = edges.get((node, successor))
                if witness is None:
                    continue
                lines.append(
                    f"  edge {self.name_of(node)} -> {self.name_of(successor)} "
                    f"(thread {witness.thread!r}):"
                )
                lines.append(f"    {self.name_of(node)} was acquired at:")
                lines.extend(f"      {frame}" for frame in witness.holding_stack[-6:])
                lines.append(f"    then {self.name_of(successor)} was acquired at:")
                lines.extend(f"      {frame}" for frame in witness.acquire_stack[-6:])
        return "\n".join(lines)

    def assert_acyclic(self) -> None:
        cycles = self.cycles()
        if cycles:
            raise LockOrderError(
                "lock-order cycles detected (potential deadlocks):\n" + self.report_cycles(cycles)
            )


class _InstrumentedLock:
    """Records acquire/release events around a real ``Lock``/``RLock``.

    Re-entrancy is the real lock's business; the graph only counts.  The
    ``_is_owned``/``_release_save``/``_acquire_restore`` delegates keep a
    wrapped ``RLock`` usable as a ``Condition`` lock.
    """

    def __init__(self, graph: LockGraph, real) -> None:
        self._graph = graph
        self._real = real

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._graph.note_acquire(id(self))
        return acquired

    def release(self) -> None:
        self._graph.note_release(id(self))
        self._real.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def _is_owned(self):
        return self._real._is_owned()

    def _release_save(self):
        return self._real._release_save()

    def _acquire_restore(self, state):
        return self._real._acquire_restore(state)


# --------------------------------------------------------------------- #
# Installation: patch the project's lock construction sites
# --------------------------------------------------------------------- #
_install_mutex = _RAW_LOCK()
_active: Optional[LockGraph] = None


def _make_factory(raw_factory, kind: str):
    def factory(*args, **kwargs):
        real = raw_factory(*args, **kwargs)
        graph = _active
        if graph is None:
            return real
        filename, site = _caller_site(depth=2)
        if not _is_project_file(filename):
            return real
        wrapper = _InstrumentedLock(graph, real)
        graph.register(id(wrapper), f"{kind.capitalize()}@{site}", kind)
        return wrapper

    return factory


class instrument:
    """Context manager activating lock instrumentation for ``graph``.

    While entered, ``threading.Lock``/``threading.RLock`` constructed from
    project files return instrumented wrappers, and ``ReadWriteLock``
    acquisitions feed the graph.  Locks created *before* entry stay raw —
    build the objects under test inside the scope (the conftest fixture
    wraps each test, so per-test construction is already inside).
    """

    def __init__(self, graph: LockGraph) -> None:
        self.graph = graph
        self._saved: Dict[str, object] = {}

    def __enter__(self) -> LockGraph:
        global _active
        with _install_mutex:
            if _active is not None:
                raise RuntimeError("lockgraph instrumentation is already installed")
            _active = self.graph
        threading.Lock = _make_factory(_RAW_LOCK, "lock")
        threading.RLock = _make_factory(_RAW_RLOCK, "rlock")
        self._patch_rwlock()
        return self.graph

    def __exit__(self, *exc_info) -> None:
        global _active
        threading.Lock = _RAW_LOCK
        threading.RLock = _RAW_RLOCK
        self._unpatch_rwlock()
        with _install_mutex:
            _active = None

    # -- ReadWriteLock -------------------------------------------------- #
    def _patch_rwlock(self) -> None:
        from repro.serve import adaptive

        cls = adaptive.ReadWriteLock
        self._saved = {
            "cls": cls,
            "__init__": cls.__init__,
            "acquire_read": cls.acquire_read,
            "release_read": cls.release_read,
            "acquire_write": cls.acquire_write,
            "release_write": cls.release_write,
        }
        graph = self.graph
        original_init = cls.__init__
        original = {
            name: self._saved[name]
            for name in ("acquire_read", "release_read", "acquire_write", "release_write")
        }

        def patched_init(rw, *args, **kwargs):
            original_init(rw, *args, **kwargs)
            if _active is graph:
                _filename, site = _caller_site(depth=2)
                graph.register(id(rw), f"ReadWriteLock@{site}", "rwlock")

        def patched_acquire(name):
            orig = original[name]

            def method(rw, *args, **kwargs):
                result = orig(rw, *args, **kwargs)
                if _active is graph:
                    graph.note_acquire(id(rw), fallback_name=f"ReadWriteLock<{id(rw):#x}>")
                return result

            return method

        def patched_release(name):
            orig = original[name]

            def method(rw, *args, **kwargs):
                if _active is graph:
                    graph.note_release(id(rw))
                return orig(rw, *args, **kwargs)

            return method

        cls.__init__ = patched_init
        cls.acquire_read = patched_acquire("acquire_read")
        cls.acquire_write = patched_acquire("acquire_write")
        cls.release_read = patched_release("release_read")
        cls.release_write = patched_release("release_write")

    def _unpatch_rwlock(self) -> None:
        cls = self._saved.get("cls")
        if cls is None:
            return
        cls.__init__ = self._saved["__init__"]
        cls.acquire_read = self._saved["acquire_read"]
        cls.release_read = self._saved["release_read"]
        cls.acquire_write = self._saved["acquire_write"]
        cls.release_write = self._saved["release_write"]
        self._saved = {}
